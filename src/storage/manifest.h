#ifndef SAMA_STORAGE_MANIFEST_H_
#define SAMA_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/result.h"

namespace sama {

// Sidecar manifest files: small varint-encoded id tables that map the
// dense ids of a PathStore / HypergraphStore back to record ids after a
// reopen, and arbitrary serialized blobs (the PathIndex metadata).
//
// Format v2 envelope: magic(8) | payload | crc32c(payload) as fixed32.
// Readers verify the trailing checksum, so a torn manifest write or bit
// rot surfaces as kCorruption; a v1 (pre-checksum) magic is rejected
// with kInvalidArgument naming the version. Writers go through an Env
// (write temp + fsync + atomic rename) so fault-injection tests can cut
// the power at any point. `env` = nullptr uses Env::Default().

// Writes `ids` to `path` atomically (write + fsync + rename).
Status WriteIdManifest(const std::string& path,
                       const std::vector<uint64_t>& ids, Env* env = nullptr);

Result<std::vector<uint64_t>> ReadIdManifest(const std::string& path,
                                             Env* env = nullptr);

// Writes an opaque blob with a magic/size/checksum envelope.
Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& blob, Env* env = nullptr);

Result<std::vector<uint8_t>> ReadBlobFile(const std::string& path,
                                          Env* env = nullptr);

}  // namespace sama

#endif  // SAMA_STORAGE_MANIFEST_H_

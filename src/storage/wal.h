#ifndef SAMA_STORAGE_WAL_H_
#define SAMA_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace sama {

// A record-framed write-ahead log (DESIGN.md §12). Every mutation is
// journalled here and fsynced BEFORE it touches the in-memory index,
// so a crash at any point leaves either a fully durable record or a
// torn tail that recovery detects by CRC and discards — never a
// half-applied update.
//
// On-disk layout: a directory of segment files named
// wal-<first_lsn:016x>.log. Each segment is a dense sequence of
// records:
//
//   +---------+---------+---------+------+-----------------+
//   | crc32c  | len     | lsn     | type | payload         |
//   | 4B LE   | 4B LE   | 8B LE   | 1B   | len bytes       |
//   +---------+---------+---------+------+-----------------+
//
// The CRC covers len..payload (everything after itself), folding the
// LSN in so a record misdirected to the wrong offset cannot validate.
// LSNs are assigned densely (1, 2, 3, ...) across segments; a
// segment's name is the LSN of its first record.
//
// Appends go through Env so fault injection covers every byte; a
// failed or torn append does NOT advance the tail, and the next append
// overwrites the garbage (positional writes, not O_APPEND). Sync() is
// group commit: one fsync covers every record appended since the last,
// and callers whose LSN is already durable return without syncing.
class Wal {
 public:
  // Record types are opaque to the WAL itself; these are the values the
  // engine journals.
  static constexpr uint8_t kInsertTriple = 1;
  static constexpr uint8_t kDeleteTriple = 2;

  static constexpr size_t kRecordHeaderSize = 17;  // crc + len + lsn + type.

  struct Options {
    std::string dir;  // Required. Created when missing.
    // Rotate to a fresh segment once the active one reaches this size.
    uint64_t segment_bytes = 4 * 1024 * 1024;
    // First LSN to assign when the directory holds no segments yet:
    // checkpoint_lsn + 1 for an index that checkpointed and truncated
    // its whole log. Appending an update as LSN 1 under a checkpoint at
    // 100 would make it invisible to replay forever.
    uint64_t start_lsn = 1;
    Env* env = nullptr;                 // Env::Default() when null.
    MetricsRegistry* registry = nullptr;  // Global() when null.
  };

  struct Record {
    uint64_t lsn = 0;
    uint8_t type = 0;
    std::vector<uint8_t> payload;
  };

  // One segment's offline scan result (ScanDir / sama_cli verify).
  struct SegmentScan {
    std::string name;
    uint64_t first_lsn = 0;   // From the file name.
    uint64_t records = 0;     // Valid records found.
    uint64_t last_lsn = 0;    // 0 when the segment is empty.
    uint64_t valid_bytes = 0;
    // True when the segment ends in a partial/corrupt record — legal
    // only at the very tail of the LAST segment (a torn append the
    // next Open truncates).
    bool torn_tail = false;
    std::vector<std::string> errors;
  };

  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (or creates) the log, recovering the active tail: the last
  // segment is scanned, and a torn/corrupt tail is physically truncated
  // and fsynced away so verify sees a byte-clean log. Records before
  // the damage are preserved.
  Status Open(const Options& options);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  // Appends one record WITHOUT syncing; returns its LSN. On failure the
  // tail does not advance — the append is retryable and any torn bytes
  // are overwritten by the next attempt.
  Result<uint64_t> Append(uint8_t type, const std::vector<uint8_t>& payload);

  // Makes every record up to `lsn` durable. Group commit: returns
  // without an fsync when a previous call already covered `lsn`.
  Status Sync(uint64_t lsn);

  // Streams every record with lsn > from_lsn, in LSN order, into `fn`.
  // A torn tail on the LAST segment is tolerated (replay stops there);
  // damage anywhere else is kCorruption. LSNs must be dense and
  // contiguous across segments.
  Status Replay(uint64_t from_lsn,
                const std::function<Status(const Record&)>& fn);

  // Deletes segments made obsolete by a checkpoint at `lsn`: a segment
  // whose SUCCESSOR starts at or below lsn+1 holds only applied
  // records. The active segment is always kept so the LSN sequence
  // survives restarts.
  Status TruncateThrough(uint64_t lsn);

  // Next LSN Append will assign / highest LSN known durable.
  uint64_t next_lsn() const;
  uint64_t synced_lsn() const;
  const std::string& dir() const { return options_.dir; }

  // Replay statistics of the LAST Replay() call (recovery metrics).
  uint64_t replayed_records() const { return replayed_records_; }
  uint64_t replayed_bytes() const { return replayed_bytes_; }

  // Failpoints the WAL triggers, for crash-at-every-point suites.
  static std::vector<std::string> CrashPoints();

  static std::string SegmentFileName(uint64_t first_lsn);
  static bool ParseSegmentFileName(const std::string& name,
                                   uint64_t* first_lsn);

  // Offline integrity scan of a WAL directory (no Wal instance needed):
  // per-record CRCs, dense LSNs within and across segments. Segments
  // are returned sorted by first LSN. A missing directory yields an
  // empty list (an index without updates has no WAL).
  static Result<std::vector<SegmentScan>> ScanDir(const std::string& dir,
                                                  Env* env = nullptr);

 private:
  Status OpenActiveSegment(uint64_t first_lsn, bool create);
  Status RotateLocked();
  Status SyncLocked(uint64_t lsn);

  Options options_;
  Env* env_ = nullptr;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::string active_path_;
  uint64_t active_first_lsn_ = 0;
  uint64_t tail_offset_ = 0;  // End of valid records in the active segment.
  uint64_t next_lsn_ = 1;
  uint64_t synced_lsn_ = 0;
  uint64_t replayed_records_ = 0;
  uint64_t replayed_bytes_ = 0;

  // sama_wal_* instruments; null when metrics resolution was skipped.
  Counter* appends_ = nullptr;
  Counter* appended_bytes_ = nullptr;
  Counter* fsyncs_ = nullptr;
  Counter* rotations_ = nullptr;
  Counter* replayed_total_ = nullptr;
  Counter* truncated_tail_bytes_ = nullptr;
  Counter* segments_deleted_ = nullptr;
};

}  // namespace sama

#endif  // SAMA_STORAGE_WAL_H_

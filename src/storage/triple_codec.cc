#include "storage/triple_codec.h"

#include "storage/coding.h"

namespace sama {

void PutLengthPrefixedString(std::vector<uint8_t>* blob,
                             const std::string& s) {
  PutVarint64(blob, s.size());
  blob->insert(blob->end(), s.begin(), s.end());
}

bool GetLengthPrefixedString(const std::vector<uint8_t>& blob, size_t* pos,
                             std::string* out) {
  uint64_t size = 0;
  if (!GetVarint64(blob, pos, &size)) return false;
  if (blob.size() - *pos < size) return false;
  out->assign(blob.begin() + static_cast<long>(*pos),
              blob.begin() + static_cast<long>(*pos + size));
  *pos += size;
  return true;
}

void PutTerm(std::vector<uint8_t>* blob, const Term& t) {
  PutVarint64(blob, static_cast<uint64_t>(t.kind()));
  PutLengthPrefixedString(blob, t.value());
  PutLengthPrefixedString(blob, t.datatype());
  PutLengthPrefixedString(blob, t.language());
}

bool GetTerm(const std::vector<uint8_t>& blob, size_t* pos, Term* out) {
  uint64_t kind = 0;
  std::string value, datatype, language;
  if (!GetVarint64(blob, pos, &kind) || kind > 3 ||
      !GetLengthPrefixedString(blob, pos, &value) ||
      !GetLengthPrefixedString(blob, pos, &datatype) ||
      !GetLengthPrefixedString(blob, pos, &language)) {
    return false;
  }
  switch (static_cast<Term::Kind>(kind)) {
    case Term::Kind::kIri:
      *out = Term::Iri(std::move(value));
      return true;
    case Term::Kind::kLiteral:
      if (!language.empty()) {
        *out = Term::LangLiteral(std::move(value), std::move(language));
      } else if (!datatype.empty()) {
        *out = Term::TypedLiteral(std::move(value), std::move(datatype));
      } else {
        *out = Term::Literal(std::move(value));
      }
      return true;
    case Term::Kind::kBlank:
      *out = Term::Blank(std::move(value));
      return true;
    case Term::Kind::kVariable:
      *out = Term::Variable(std::move(value));
      return true;
  }
  return false;
}

void PutTriple(std::vector<uint8_t>* blob, const Triple& t) {
  PutTerm(blob, t.subject);
  PutTerm(blob, t.predicate);
  PutTerm(blob, t.object);
}

bool GetTriple(const std::vector<uint8_t>& blob, size_t* pos, Triple* out) {
  return GetTerm(blob, pos, &out->subject) &&
         GetTerm(blob, pos, &out->predicate) &&
         GetTerm(blob, pos, &out->object);
}

}  // namespace sama

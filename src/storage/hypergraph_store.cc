#include "storage/hypergraph_store.h"

#include "storage/coding.h"
#include "storage/manifest.h"

namespace sama {

Status HypergraphStore::Open(const Options& options) {
  env_ = options.env;
  RecordStore::Options ro;
  ro.path = options.path;
  ro.truncate = options.truncate;
  ro.buffer_pool_pages = options.buffer_pool_pages;
  ro.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(ro));
  if (!options.path.empty()) {
    manifest_base_ = options.path;
    if (!options.truncate) {
      auto vertices = ReadIdManifest(manifest_base_ + ".vertices", env_);
      if (!vertices.ok()) return vertices.status();
      auto edges = ReadIdManifest(manifest_base_ + ".hyperedges", env_);
      if (!edges.ok()) return edges.status();
      vertex_records_ = std::move(*vertices);
      edge_records_ = std::move(*edges);
      if (vertex_records_.size() + edge_records_.size() !=
          store_.record_count()) {
        return Status::Corruption(
            "hypergraph manifests out of sync with record store");
      }
    }
  }
  return Status::Ok();
}

Status HypergraphStore::WriteManifests() {
  if (manifest_base_.empty()) return Status::Ok();
  SAMA_RETURN_IF_ERROR(
      WriteIdManifest(manifest_base_ + ".vertices", vertex_records_, env_));
  return WriteIdManifest(manifest_base_ + ".hyperedges", edge_records_,
                         env_);
}

Status HypergraphStore::Close() {
  SAMA_RETURN_IF_ERROR(WriteManifests());
  return store_.Close();
}

Result<VertexId> HypergraphStore::AddVertex(const std::string& label) {
  std::vector<uint8_t> buf(label.begin(), label.end());
  auto rid = store_.Append(buf);
  if (!rid.ok()) return rid.status();
  VertexId id = vertex_records_.size();
  vertex_records_.push_back(*rid);
  return id;
}

Result<HyperedgeId> HypergraphStore::AddHyperedge(
    const std::vector<VertexId>& vertices) {
  if (vertices.empty()) {
    return Status::InvalidArgument("hyperedge must be a non-empty set");
  }
  for (VertexId v : vertices) {
    if (v >= vertex_records_.size()) {
      return Status::InvalidArgument("unknown vertex " + std::to_string(v));
    }
  }
  std::vector<uint8_t> buf;
  PutVarint64(&buf, vertices.size());
  for (VertexId v : vertices) PutVarint64(&buf, v);
  auto rid = store_.Append(buf);
  if (!rid.ok()) return rid.status();
  HyperedgeId id = edge_records_.size();
  edge_records_.push_back(*rid);
  return id;
}

Status HypergraphStore::GetVertex(VertexId id, std::string* label) const {
  if (id >= vertex_records_.size()) {
    return Status::OutOfRange("vertex " + std::to_string(id));
  }
  std::vector<uint8_t> buf;
  SAMA_RETURN_IF_ERROR(store_.Read(vertex_records_[id], &buf));
  label->assign(buf.begin(), buf.end());
  return Status::Ok();
}

Status HypergraphStore::GetHyperedge(HyperedgeId id,
                                     std::vector<VertexId>* out) const {
  if (id >= edge_records_.size()) {
    return Status::OutOfRange("hyperedge " + std::to_string(id));
  }
  std::vector<uint8_t> buf;
  SAMA_RETURN_IF_ERROR(store_.Read(edge_records_[id], &buf));
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint64(buf, &pos, &count)) {
    return Status::Corruption("hyperedge header");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetVarint64(buf, &pos, &(*out)[i])) {
      return Status::Corruption("hyperedge members");
    }
  }
  return Status::Ok();
}

Status HypergraphStore::Flush() {
  SAMA_RETURN_IF_ERROR(WriteManifests());
  return store_.Flush();
}

Status HypergraphStore::DropCaches() { return store_.DropCaches(); }

}  // namespace sama

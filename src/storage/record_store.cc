#include "storage/record_store.h"

#include <cstring>

namespace sama {
namespace {

// Per-record page header: a 2-byte little-endian length.
constexpr size_t kHeaderBytes = 2;
constexpr size_t kMaxRecordBytes = kPageDataSize - kHeaderBytes;

// Page 0 is the store header: magic, version, record count and tail
// position, refreshed on every Flush() so a clean shutdown can reopen.
constexpr char kMagic[8] = {'S', 'A', 'M', 'A', 'R', 'E', 'C', '1'};

RecordId MakeRecordId(PageId page, size_t offset) {
  return (static_cast<uint64_t>(page) << 16) | static_cast<uint64_t>(offset);
}

PageId RecordPage(RecordId id) { return static_cast<PageId>(id >> 16); }
size_t RecordOffset(RecordId id) { return static_cast<size_t>(id & 0xffff); }

void PutU64(uint8_t* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetU64(const uint8_t* buf) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

Status RecordStore::Open(const Options& options) {
  if (options.path.empty()) return Status::Ok();  // Memory backend.
  file_ = std::make_unique<PageFile>();
  SAMA_RETURN_IF_ERROR(
      file_->Open(options.path, options.truncate, options.env));
  pool_ = std::make_unique<BufferPool>(file_.get(),
                                       options.buffer_pool_pages);
  if (file_->page_count() == 0) {
    // Fresh store: header page + first data page.
    auto header = file_->AllocatePage();
    if (!header.ok()) return header.status();
    auto page = file_->AllocatePage();
    if (!page.ok()) return page.status();
    tail_page_ = *page;
    tail_offset_ = 0;
    return WriteStoreHeader();
  }
  return ReadStoreHeader();
}

Status RecordStore::WriteStoreHeader() {
  if (pool_ == nullptr) return Status::Ok();
  auto buf_or = pool_->MutablePage(0);
  if (!buf_or.ok()) return buf_or.status();
  uint8_t* buf = buf_or->mutable_data();
  std::memcpy(buf, kMagic, sizeof(kMagic));
  PutU64(buf + 8, record_count_);
  PutU64(buf + 16, tail_page_);
  PutU64(buf + 24, tail_offset_);
  return Status::Ok();
}

Status RecordStore::ReadStoreHeader() {
  auto buf_or = pool_->Fetch(0);
  if (!buf_or.ok()) return buf_or.status();
  const uint8_t* buf = buf_or->data();
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("record store header magic mismatch");
  }
  record_count_ = GetU64(buf + 8);
  tail_page_ = static_cast<PageId>(GetU64(buf + 16));
  tail_offset_ = static_cast<size_t>(GetU64(buf + 24));
  if (tail_page_ >= file_->page_count() || tail_offset_ > kPageDataSize) {
    return Status::Corruption("record store tail out of range");
  }
  return Status::Ok();
}

Status RecordStore::Close() {
  if (file_ == nullptr) return Status::Ok();
  SAMA_RETURN_IF_ERROR(WriteStoreHeader());
  SAMA_RETURN_IF_ERROR(pool_->Flush());
  // A closed store must be durable: the index commit protocol renames
  // this file right after Close(), and rename-before-sync would let a
  // crash commit unsynced pages.
  SAMA_RETURN_IF_ERROR(file_->Sync());
  pool_.reset();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Result<RecordId> RecordStore::Append(const std::vector<uint8_t>& data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (file_ == nullptr) {
    RecordId id = mem_records_.size();
    mem_records_.push_back(data);
    ++record_count_;
    return id;
  }
  if (data.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("record exceeds page capacity (" +
                                   std::to_string(data.size()) + " bytes)");
  }
  if (tail_offset_ + kHeaderBytes + data.size() > kPageDataSize) {
    auto page = file_->AllocatePage();
    if (!page.ok()) return page.status();
    tail_page_ = *page;
    tail_offset_ = 0;
  }
  auto buf_or = pool_->MutablePage(tail_page_);
  if (!buf_or.ok()) return buf_or.status();
  uint8_t* buf = buf_or->mutable_data();
  size_t offset = tail_offset_;
  buf[offset] = static_cast<uint8_t>(data.size());
  buf[offset + 1] = static_cast<uint8_t>(data.size() >> 8);
  std::memcpy(buf + offset + kHeaderBytes, data.data(), data.size());
  tail_offset_ = offset + kHeaderBytes + data.size();
  ++record_count_;
  return MakeRecordId(tail_page_, offset);
}

Status RecordStore::Read(RecordId id, std::vector<uint8_t>* out) const {
  if (file_ == nullptr) {
    // The memory backend's vector reallocates on Append, so reads must
    // exclude writers — but not each other: the shared side lets any
    // number of readers copy records concurrently.
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (id >= mem_records_.size()) {
      return Status::OutOfRange("record " + std::to_string(id));
    }
    *out = mem_records_[id];
    return Status::Ok();
  }
  // Disk backend: no store-level lock. The buffer pool's latch+pin
  // protocol makes Fetch safe, and the guard keeps the frame resident
  // while we copy out of it — parallel query workers read concurrently.
  if (RecordPage(id) == 0) {
    return Status::InvalidArgument("record id points at the header page");
  }
  auto buf_or = pool_->Fetch(RecordPage(id));
  if (!buf_or.ok()) return buf_or.status();
  const uint8_t* buf = buf_or->data();
  size_t offset = RecordOffset(id);
  if (offset + kHeaderBytes > kPageDataSize) {
    return Status::Corruption("record offset out of page");
  }
  size_t length = static_cast<size_t>(buf[offset]) |
                  (static_cast<size_t>(buf[offset + 1]) << 8);
  if (offset + kHeaderBytes + length > kPageDataSize) {
    return Status::Corruption("record length out of page");
  }
  out->assign(buf + offset + kHeaderBytes,
              buf + offset + kHeaderBytes + length);
  return Status::Ok();
}

Status RecordStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pool_ == nullptr) return Status::Ok();
  SAMA_RETURN_IF_ERROR(WriteStoreHeader());
  SAMA_RETURN_IF_ERROR(pool_->Flush());
  return file_->Sync();
}

Status RecordStore::DropCaches() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pool_ == nullptr) return Status::Ok();
  SAMA_RETURN_IF_ERROR(WriteStoreHeader());
  return pool_->DropAll();
}

uint64_t RecordStore::size_bytes() const {
  if (file_ != nullptr) return file_->size_bytes();
  uint64_t bytes = 0;
  for (const auto& r : mem_records_) bytes += r.size() + sizeof(r);
  return bytes;
}

BufferPool::Stats RecordStore::cache_stats() const {
  if (pool_ == nullptr) return BufferPool::Stats();
  return pool_->stats();
}

}  // namespace sama

#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "storage/coding.h"

namespace sama {
namespace {

Env* OrDefault(Env* env) { return env == nullptr ? Env::Default() : env; }

// Parses one record from buf[pos...]. Returns:
//   kOk         — *record filled, *pos advanced past it;
//   kNotFound   — clean end of buffer (pos == buf.size());
//   kCorruption — torn or damaged record at pos (pos NOT advanced).
Status ParseRecord(const std::vector<uint8_t>& buf, size_t* pos,
                   Wal::Record* record) {
  if (*pos == buf.size()) return Status::NotFound("end of segment");
  if (buf.size() - *pos < Wal::kRecordHeaderSize) {
    return Status::Corruption("truncated record header");
  }
  size_t p = *pos;
  uint32_t crc = 0, len = 0;
  (void)GetFixed32(buf, &p, &crc);
  (void)GetFixed32(buf, &p, &len);
  uint64_t lsn = 0;
  for (int i = 0; i < 8; ++i) {
    lsn |= static_cast<uint64_t>(buf[p + static_cast<size_t>(i)]) << (8 * i);
  }
  p += 8;
  uint8_t type = buf[p++];
  if (buf.size() - p < len) {
    return Status::Corruption("truncated record payload");
  }
  // CRC covers everything after itself: len, lsn, type, payload.
  uint32_t actual =
      Crc32c(buf.data() + *pos + 4, Wal::kRecordHeaderSize - 4 + len);
  if (actual != crc) {
    return Status::Corruption("record checksum mismatch");
  }
  record->lsn = lsn;
  record->type = type;
  record->payload.assign(buf.begin() + static_cast<long>(p),
                         buf.begin() + static_cast<long>(p + len));
  *pos = p + len;
  return Status::Ok();
}

void EncodeRecord(uint64_t lsn, uint8_t type,
                  const std::vector<uint8_t>& payload,
                  std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(Wal::kRecordHeaderSize + payload.size());
  PutFixed32(out, 0);  // CRC placeholder.
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(lsn >> (8 * i)));
  }
  out->push_back(type);
  out->insert(out->end(), payload.begin(), payload.end());
  uint32_t crc = Crc32c(out->data() + 4, out->size() - 4);
  (*out)[0] = static_cast<uint8_t>(crc);
  (*out)[1] = static_cast<uint8_t>(crc >> 8);
  (*out)[2] = static_cast<uint8_t>(crc >> 16);
  (*out)[3] = static_cast<uint8_t>(crc >> 24);
}

// Sorted (first_lsn, file name) pairs of the WAL segments in `dir`.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir, Env* env) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  if (!env->FileExists(dir)) return segments;
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : *entries) {
    uint64_t first_lsn = 0;
    if (Wal::ParseSegmentFileName(name, &first_lsn)) {
      segments.emplace_back(first_lsn, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

Wal::~Wal() { (void)Close(); }

std::string Wal::SegmentFileName(uint64_t first_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", first_lsn);
  return buf;
}

bool Wal::ParseSegmentFileName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 24 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t lsn = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    lsn = lsn << 4 | digit;
  }
  *first_lsn = lsn;
  return true;
}

std::vector<std::string> Wal::CrashPoints() {
  return {"wal.append", "wal.sync", "wal.rotate", "wal.truncate",
          "wal.replay"};
}

Status Wal::OpenActiveSegment(uint64_t first_lsn, bool create) {
  active_first_lsn_ = first_lsn;
  active_path_ = options_.dir + "/" + SegmentFileName(first_lsn);
  auto fd = env_->OpenFile(active_path_, /*truncate=*/create);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  if (create) {
    tail_offset_ = 0;
    SAMA_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  }
  return Status::Ok();
}

Status Wal::Open(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("WAL is already open");
  options_ = options;
  env_ = OrDefault(options.env);
  if (options_.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir is required");
  }
  MetricsRegistry* reg = options.registry != nullptr
                             ? options.registry
                             : MetricsRegistry::Global();
  appends_ = reg->GetCounter("sama_wal_appends_total",
                             "WAL records appended.");
  appended_bytes_ = reg->GetCounter("sama_wal_appended_bytes_total",
                                    "WAL bytes appended.");
  fsyncs_ = reg->GetCounter("sama_wal_fsyncs_total",
                            "WAL fsync calls (group commit batches).");
  rotations_ = reg->GetCounter("sama_wal_rotations_total",
                               "WAL segment rotations.");
  replayed_total_ = reg->GetCounter("sama_wal_replayed_records_total",
                                    "WAL records replayed at recovery.");
  truncated_tail_bytes_ =
      reg->GetCounter("sama_wal_truncated_tail_bytes_total",
                      "Torn WAL tail bytes discarded at recovery.");
  segments_deleted_ = reg->GetCounter(
      "sama_wal_segments_deleted_total",
      "WAL segments deleted by checkpoint truncation.");

  SAMA_RETURN_IF_ERROR(env_->CreateDir(options_.dir));
  auto segments_or = ListSegments(options_.dir, env_);
  if (!segments_or.ok()) return segments_or.status();
  const auto& segments = *segments_or;

  if (segments.empty()) {
    next_lsn_ = options_.start_lsn;
    synced_lsn_ = next_lsn_ - 1;
    return OpenActiveSegment(next_lsn_, /*create=*/true);
  }

  // Recover the tail of the LAST segment: scan to the first damage,
  // truncate it away durably, resume appending after the last valid
  // record. Older segments are only read by Replay.
  uint64_t first_lsn = segments.back().first;
  std::string path = options_.dir + "/" + segments.back().second;
  auto bytes_or = env_->ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = *bytes_or;
  size_t pos = 0;
  uint64_t last_lsn = first_lsn - 1;
  for (;;) {
    Record record;
    size_t before = pos;
    Status s = ParseRecord(bytes, &pos, &record);
    if (s.code() == Status::Code::kNotFound) break;  // Clean end.
    if (!s.ok()) {
      // Torn tail: everything from `before` on is a partial append
      // that was never acknowledged. Discard it durably so the log is
      // byte-clean for verify and the next append.
      SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.truncate"));
      SAMA_RETURN_IF_ERROR(env_->TruncateFile(path, before));
      if (truncated_tail_bytes_ != nullptr) {
        truncated_tail_bytes_->Increment(bytes.size() - before);
      }
      pos = before;
      break;
    }
    last_lsn = record.lsn;
  }
  tail_offset_ = pos;
  next_lsn_ = last_lsn + 1;
  SAMA_RETURN_IF_ERROR(OpenActiveSegment(first_lsn, /*create=*/false));
  // One fsync after recovery so the (possibly truncated) tail state is
  // durable before anything is appended after it.
  SAMA_RETURN_IF_ERROR(env_->SyncFile(fd_, active_path_));
  synced_lsn_ = next_lsn_ - 1;
  return Status::Ok();
}

Status Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Ok();
  Status s = env_->CloseFile(fd_, active_path_);
  fd_ = -1;
  return s;
}

Status Wal::RotateLocked() {
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.rotate"));
  // Everything in the old segment becomes durable before we stop
  // writing to it, so Sync() only ever needs to fsync the active one.
  SAMA_RETURN_IF_ERROR(env_->SyncFile(fd_, active_path_));
  synced_lsn_ = next_lsn_ - 1;
  SAMA_RETURN_IF_ERROR(env_->CloseFile(fd_, active_path_));
  fd_ = -1;
  if (rotations_ != nullptr) rotations_->Increment();
  return OpenActiveSegment(next_lsn_, /*create=*/true);
}

Result<uint64_t> Wal::Append(uint8_t type,
                             const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("WAL is not open");
  if (tail_offset_ >= options_.segment_bytes) {
    SAMA_RETURN_IF_ERROR(RotateLocked());
  }
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.append"));
  std::vector<uint8_t> record;
  EncodeRecord(next_lsn_, type, payload, &record);
  // Positional write at the tracked tail: a failed or torn append does
  // not advance it, so the next append overwrites the garbage.
  SAMA_RETURN_IF_ERROR(
      env_->PWrite(fd_, active_path_, tail_offset_, record.data(),
                   record.size()));
  tail_offset_ += record.size();
  uint64_t lsn = next_lsn_++;
  if (appends_ != nullptr) appends_->Increment();
  if (appended_bytes_ != nullptr) appended_bytes_->Increment(record.size());
  return lsn;
}

Status Wal::SyncLocked(uint64_t lsn) {
  if (synced_lsn_ >= lsn) return Status::Ok();  // A prior batch covered it.
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.sync"));
  SAMA_RETURN_IF_ERROR(env_->SyncFile(fd_, active_path_));
  synced_lsn_ = next_lsn_ - 1;
  if (fsyncs_ != nullptr) fsyncs_->Increment();
  return Status::Ok();
}

Status Wal::Sync(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("WAL is not open");
  return SyncLocked(lsn);
}

Status Wal::Replay(uint64_t from_lsn,
                   const std::function<Status(const Record&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("WAL is not open");
  replayed_records_ = 0;
  replayed_bytes_ = 0;
  auto segments_or = ListSegments(options_.dir, env_);
  if (!segments_or.ok()) return segments_or.status();
  const auto& segments = *segments_or;
  uint64_t expected_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_lsn, name] = segments[i];
    if (expected_lsn != 0 && first_lsn != expected_lsn) {
      return Status::Corruption(
          "WAL segment " + name + " does not continue LSN " +
          std::to_string(expected_lsn) + " (a segment is missing)");
    }
    // Skip segments entirely below the checkpoint ONLY when the next
    // segment proves they end there; the last segment is always read.
    if (i + 1 < segments.size() && segments[i + 1].first <= from_lsn + 1) {
      expected_lsn = segments[i + 1].first;
      continue;
    }
    std::string path = options_.dir + "/" + name;
    auto bytes_or = env_->ReadFileBytes(path);
    if (!bytes_or.ok()) return bytes_or.status();
    const std::vector<uint8_t>& bytes = *bytes_or;
    size_t pos = 0;
    uint64_t lsn_cursor = first_lsn;
    for (;;) {
      Record record;
      Status s = ParseRecord(bytes, &pos, &record);
      if (s.code() == Status::Code::kNotFound) break;
      if (!s.ok()) {
        if (i + 1 == segments.size()) break;  // Torn tail: Open truncates.
        return Status::Corruption("WAL segment " + name + ": " +
                                  s.message());
      }
      if (record.lsn != lsn_cursor) {
        return Status::Corruption(
            "WAL segment " + name + " skips from LSN " +
            std::to_string(lsn_cursor) + " to " +
            std::to_string(record.lsn));
      }
      ++lsn_cursor;
      if (record.lsn <= from_lsn) continue;  // Already checkpointed.
      SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.replay"));
      SAMA_RETURN_IF_ERROR(fn(record));
      ++replayed_records_;
      replayed_bytes_ += kRecordHeaderSize + record.payload.size();
    }
    expected_lsn = lsn_cursor;
  }
  if (replayed_total_ != nullptr && replayed_records_ > 0) {
    replayed_total_->Increment(replayed_records_);
  }
  return Status::Ok();
}

Status Wal::TruncateThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("WAL is not open");
  auto segments_or = ListSegments(options_.dir, env_);
  if (!segments_or.ok()) return segments_or.status();
  const auto& segments = *segments_or;
  bool deleted = false;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i holds LSNs [first_i, first_{i+1}); all applied iff the
    // successor starts at or below lsn + 1. The active (last) segment
    // is never deleted — the LSN sequence lives in its name.
    if (segments[i + 1].first > lsn + 1) break;
    SAMA_RETURN_IF_ERROR(FailPoints::Trigger("wal.truncate"));
    SAMA_RETURN_IF_ERROR(
        env_->RemoveFile(options_.dir + "/" + segments[i].second));
    if (segments_deleted_ != nullptr) segments_deleted_->Increment();
    deleted = true;
  }
  if (deleted) SAMA_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  return Status::Ok();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Wal::synced_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_lsn_;
}

Result<std::vector<Wal::SegmentScan>> Wal::ScanDir(const std::string& dir,
                                                   Env* env) {
  env = OrDefault(env);
  std::vector<SegmentScan> out;
  auto segments_or = ListSegments(dir, env);
  if (!segments_or.ok()) return segments_or.status();
  const auto& segments = *segments_or;
  uint64_t expected_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_lsn, name] = segments[i];
    SegmentScan scan;
    scan.name = name;
    scan.first_lsn = first_lsn;
    if (expected_lsn != 0 && first_lsn != expected_lsn) {
      scan.errors.push_back("does not continue LSN " +
                            std::to_string(expected_lsn) +
                            " (a segment is missing or misnamed)");
    }
    auto bytes_or = env->ReadFileBytes(dir + "/" + name);
    if (!bytes_or.ok()) {
      scan.errors.push_back(bytes_or.status().ToString());
      out.push_back(std::move(scan));
      expected_lsn = 0;  // Cannot check continuity past unreadable data.
      continue;
    }
    const std::vector<uint8_t>& bytes = *bytes_or;
    size_t pos = 0;
    uint64_t lsn_cursor = first_lsn;
    for (;;) {
      Record record;
      Status s = ParseRecord(bytes, &pos, &record);
      if (s.code() == Status::Code::kNotFound) break;
      if (!s.ok()) {
        scan.torn_tail = true;
        if (i + 1 < segments.size()) {
          // Damage below the tail is corruption, not a torn append.
          scan.errors.push_back("mid-log damage at offset " +
                                std::to_string(pos) + ": " + s.message());
        }
        break;
      }
      if (record.lsn != lsn_cursor) {
        scan.errors.push_back("LSN skips from " +
                              std::to_string(lsn_cursor) + " to " +
                              std::to_string(record.lsn) + " at offset " +
                              std::to_string(pos));
        break;
      }
      ++scan.records;
      scan.last_lsn = record.lsn;
      scan.valid_bytes = pos;
      ++lsn_cursor;
    }
    expected_lsn = lsn_cursor;
    out.push_back(std::move(scan));
  }
  return out;
}

}  // namespace sama

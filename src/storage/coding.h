#ifndef SAMA_STORAGE_CODING_H_
#define SAMA_STORAGE_CODING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sama {

// LEB128 varint encoding, the compression primitive of the path store
// (the paper's §7 mentions index compression as future work; we ship it
// and ablate it in bench_ablation).

inline void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline void PutVarint32(std::vector<uint8_t>* out, uint32_t v) {
  PutVarint64(out, v);
}

// Decodes a varint from buf[*pos...]; advances *pos. Returns false on
// truncated input.
inline bool GetVarint64(const std::vector<uint8_t>& buf, std::size_t* pos,
                        uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < buf.size() && shift <= 63) {
    uint8_t byte = buf[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool GetVarint32(const std::vector<uint8_t>& buf, std::size_t* pos,
                        uint32_t* out) {
  uint64_t v = 0;
  if (!GetVarint64(buf, pos, &v) || v > 0xffffffffULL) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

// Fixed-width little-endian 32-bit encoding (the uncompressed baseline
// for the compression ablation).
inline void PutFixed32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline bool GetFixed32(const std::vector<uint8_t>& buf, std::size_t* pos,
                       uint32_t* out) {
  if (*pos + 4 > buf.size()) return false;
  *out = static_cast<uint32_t>(buf[*pos]) |
         static_cast<uint32_t>(buf[*pos + 1]) << 8 |
         static_cast<uint32_t>(buf[*pos + 2]) << 16 |
         static_cast<uint32_t>(buf[*pos + 3]) << 24;
  *pos += 4;
  return true;
}

}  // namespace sama

#endif  // SAMA_STORAGE_CODING_H_

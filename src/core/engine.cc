#include "core/engine.h"

#include "common/timer.h"

namespace sama {

SamaEngine::SamaEngine(const DataGraph* graph, const PathIndex* index,
                       const Thesaurus* thesaurus, EngineOptions options)
    : graph_(graph),
      index_(index),
      thesaurus_(thesaurus),
      options_(options) {
  size_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                            : options.num_threads;
  // The calling thread participates in every parallel section, so a
  // request for N threads needs N-1 pool workers. The pool is shared
  // (engine copies in ExecuteSparql reuse it) and lives for the
  // engine's lifetime, not per query.
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);

  const QueryCacheOptions& cache = options_.cache;
  if (cache.enabled) {
    label_cache_ = std::make_shared<ShardedLruCache<uint64_t, LabelMatch>>(
        cache.label_match_entries, cache.shards);
    alignment_memo_ = std::make_shared<AlignmentMemo>(
        cache.alignment_memo_entries, cache.shards);
    label_cache_identity_ = std::make_shared<std::atomic<uint64_t>>(
        thesaurus_ == nullptr ? 0 : thesaurus_->identity());
  }
  if (index_ != nullptr) {
    IndexCacheConfig index_cache;
    index_cache.enabled = cache.enabled;
    index_cache.posting_entries = cache.posting_entries;
    index_cache.lookup_entries = cache.path_lookup_entries;
    index_cache.record_entries = cache.path_record_entries;
    index_cache.shards = cache.shards;
    index_->ConfigureQueryCache(index_cache);
  }
}

void SamaEngine::DropQueryCaches() const {
  if (label_cache_) label_cache_->Clear();
  if (alignment_memo_) alignment_memo_->Clear();
  if (index_ != nullptr) index_->DropQueryCaches();
}

Result<std::vector<Answer>> SamaEngine::ExecuteSparql(
    const SparqlQuery& query, size_t k, QueryStats* stats) const {
  if (k == 0) k = query.limit;
  QueryGraph qg = BuildQueryGraph(query.patterns);
  SamaEngine configured = *this;
  if ((options_.dedup_select_bindings || query.distinct) &&
      !query.select_all) {
    configured.options_.search.dedup_vars = query.select_vars;
  }
  if (!query.filters.empty()) {
    std::vector<FilterConstraint> filters = query.filters;
    configured.options_.search.binding_filter =
        [filters = std::move(filters)](const Substitution& binding) {
          return PassesFilters(filters, binding);
        };
  }
  return configured.Execute(qg, k, stats);
}

Result<std::vector<Answer>> SamaEngine::Execute(const QueryGraph& query,
                                                size_t k,
                                                QueryStats* stats) const {
  WallTimer total;
  QueryStats local;
  local.threads_used = threads_used();
  ThreadPool* pool = pool_.get();

  // Cross-query caches: verify the label cache still matches the
  // thesaurus content (mutations between queries clear it; the other
  // caches embed the identity in their keys), then snapshot every
  // lifetime counter so this query's activity reports as deltas.
  if (label_cache_ != nullptr) {
    uint64_t identity = thesaurus_ == nullptr ? 0 : thesaurus_->identity();
    if (label_cache_identity_->exchange(identity) != identity) {
      label_cache_->Clear();
    }
  }
  QueryCaches caches;
  caches.label_matches = label_cache_.get();
  caches.alignment_memo = alignment_memo_.get();
  const IndexCacheCounters index_before = index_->query_cache_counters();
  const CacheCounters label_before =
      label_cache_ ? label_cache_->counters() : CacheCounters{};
  const CacheCounters memo_before =
      alignment_memo_ ? alignment_memo_->counters() : CacheCounters{};
  const CacheCounters thesaurus_before =
      thesaurus_ ? thesaurus_->relatedness_cache_counters() : CacheCounters{};

  // Preprocessing: PQ is computed by the QueryGraph itself; build the
  // intersection query graph here.
  WallTimer phase;
  IntersectionQueryGraph ig(query);
  local.preprocess_millis = phase.ElapsedMillis();
  local.num_query_paths = query.paths().size();

  // Clustering (parallel over candidate chunks when a pool exists;
  // results are identical either way).
  phase.Restart();
  std::atomic<uint64_t> clustering_busy{0};
  std::atomic<uint64_t> corrupt_skipped{0};
  std::atomic<uint64_t> io_retried{0};
  ClusteringOptions clustering_options = options_.clustering;
  clustering_options.strict_io = options_.strict_io;
  clustering_options.max_io_retries = options_.max_io_retries;
  auto clusters_or =
      BuildClusters(query, *index_, thesaurus_, options_.params,
                    clustering_options, pool, &clustering_busy,
                    &corrupt_skipped, &io_retried, &caches);
  if (!clusters_or.ok()) return clusters_or.status();
  const std::vector<Cluster>& clusters = *clusters_or;
  local.clustering_millis = phase.ElapsedMillis();
  local.clustering_busy_millis =
      static_cast<double>(clustering_busy.load()) / 1e6;
  local.corrupt_records_skipped = corrupt_skipped.load();
  local.io_retries = io_retried.load();
  for (const Cluster& c : clusters) local.num_candidate_paths += c.size();

  // Search (parallel over candidate subtrees in deterministic waves).
  phase.Restart();
  ForestSearchOptions search_options = options_.search;
  if (k != 0) search_options.k = k;
  std::atomic<uint64_t> search_busy{0};
  ForestSearchStats fstats;
  auto answers_or = ForestSearch(query, ig, clusters, options_.params,
                                 search_options, pool, &search_busy, &fstats);
  if (!answers_or.ok()) return answers_or.status();
  local.search_millis = phase.ElapsedMillis();
  local.search_busy_millis = static_cast<double>(search_busy.load()) / 1e6;
  local.search_expansions = fstats.expansions;
  local.search_bound_pruned = fstats.bound_pruned;
  local.search_roots_pruned = fstats.roots_pruned;
  local.search_truncated = fstats.truncated;

  const IndexCacheCounters index_after = index_->query_cache_counters();
  local.posting_cache = index_after.postings - index_before.postings;
  local.path_lookup_cache = index_after.lookups - index_before.lookups;
  local.path_record_cache = index_after.records - index_before.records;
  if (label_cache_) {
    local.label_match_cache = label_cache_->counters() - label_before;
  }
  if (alignment_memo_) {
    local.alignment_memo = alignment_memo_->counters() - memo_before;
  }
  if (thesaurus_ != nullptr) {
    local.thesaurus_cache =
        thesaurus_->relatedness_cache_counters() - thesaurus_before;
  }

  local.total_millis = total.ElapsedMillis();
  local.num_answers = answers_or->size();
  if (stats != nullptr) *stats = local;
  return answers_or;
}

}  // namespace sama

#include "core/engine.h"

#include <shared_mutex>

#include "common/timer.h"
#include "storage/triple_codec.h"
#include "storage/wal.h"

namespace sama {

// The engine's named registry instruments, resolved once per engine.
// Naming scheme (DESIGN.md "Observability"): sama_<noun>_total for
// counters, sama_<noun>_millis for latency histograms; per-cache series
// share one family distinguished by the {cache="..."} label.
struct EngineInstruments {
  Counter* queries = nullptr;
  Counter* answers = nullptr;
  Histogram* latency = nullptr;
  Histogram* phase_preprocess = nullptr;
  Histogram* phase_clustering = nullptr;
  Histogram* phase_search = nullptr;
  Counter* expansions = nullptr;
  Counter* bound_pruned = nullptr;
  Counter* roots_pruned = nullptr;
  Counter* truncated = nullptr;
  Counter* io_retries = nullptr;
  Counter* corrupt_skipped = nullptr;
  Counter* slow_queries = nullptr;
  Counter* slow_sink_failures = nullptr;
  Counter* epoch_advances = nullptr;
  Counter* epoch_retired = nullptr;
  Counter* epoch_reclaimed = nullptr;
  // Absolute lifetime total, refreshed after each query (Set, not
  // Increment — the sum spans caches owned by engine, index and
  // thesaurus, so deltas would double-count across engine copies).
  Gauge* cache_lock_skips = nullptr;

  struct CacheSet {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* evictions = nullptr;
    Counter* insertions = nullptr;

    void Add(const CacheCounters& d) const {
      if (hits && d.hits) hits->Increment(d.hits);
      if (misses && d.misses) misses->Increment(d.misses);
      if (evictions && d.evictions) evictions->Increment(d.evictions);
      if (insertions && d.insertions) insertions->Increment(d.insertions);
    }
  };
  CacheSet postings, path_lookups, path_records, label_matches,
      alignment_memo, thesaurus;

  static EngineInstruments Resolve(MetricsRegistry* reg) {
    EngineInstruments out;
    out.queries = reg->GetCounter("sama_queries_total", "Queries executed.");
    out.answers =
        reg->GetCounter("sama_query_answers_total", "Answers returned.");
    auto bounds = Histogram::LatencyBucketsMillis();
    out.latency = reg->GetHistogram("sama_query_latency_millis",
                                    "End-to-end query latency.", bounds);
    const char* phase_help = "Per-phase query latency.";
    out.phase_preprocess =
        reg->GetHistogram("sama_query_phase_millis", phase_help, bounds,
                          {{"phase", "preprocess"}});
    out.phase_clustering =
        reg->GetHistogram("sama_query_phase_millis", phase_help, bounds,
                          {{"phase", "clustering"}});
    out.phase_search = reg->GetHistogram("sama_query_phase_millis", phase_help,
                                         bounds, {{"phase", "search"}});
    out.expansions = reg->GetCounter("sama_search_expansions_total",
                                     "Forest-search node expansions.");
    out.bound_pruned =
        reg->GetCounter("sama_search_bound_pruned_total",
                        "Subtrees pruned by the score bound.");
    out.roots_pruned = reg->GetCounter("sama_search_roots_pruned_total",
                                       "Root candidates pruned outright.");
    out.truncated =
        reg->GetCounter("sama_search_truncated_total",
                        "Queries cut short by the anytime budget.");
    out.io_retries = reg->GetCounter("sama_io_retries_total",
                                     "Transient read retries during queries.");
    out.corrupt_skipped =
        reg->GetCounter("sama_corrupt_records_skipped_total",
                        "Candidates dropped for corrupt/unreadable pages.");
    out.slow_queries =
        reg->GetCounter("sama_slow_queries_total",
                        "Queries recorded in the slow-query log.");
    out.slow_sink_failures =
        reg->GetCounter("sama_slow_query_sink_failures_total",
                        "Slow-query JSONL sink write failures.");
    out.epoch_advances =
        reg->GetCounter("sama_epoch_advances_total",
                        "Global epoch advances observed during queries.");
    out.epoch_retired = reg->GetCounter(
        "sama_epoch_retired_total",
        "Objects handed to epoch retire lists during queries.");
    out.epoch_reclaimed = reg->GetCounter(
        "sama_epoch_reclaimed_total",
        "Epoch-retired objects actually freed during queries.");
    out.cache_lock_skips = reg->GetGauge(
        "sama_cache_lru_lock_skips",
        "Cache hits that skipped the LRU touch under write contention "
        "(lifetime total across query-side caches).");
    auto cache_set = [reg](const char* name) {
      CacheSet s;
      s.hits = reg->GetCounter("sama_cache_hits_total", "Cache hits.",
                               {{"cache", name}});
      s.misses = reg->GetCounter("sama_cache_misses_total", "Cache misses.",
                                 {{"cache", name}});
      s.evictions = reg->GetCounter("sama_cache_evictions_total",
                                    "Cache evictions.", {{"cache", name}});
      s.insertions = reg->GetCounter("sama_cache_insertions_total",
                                     "Cache insertions.", {{"cache", name}});
      return s;
    };
    out.postings = cache_set("postings");
    out.path_lookups = cache_set("path_lookups");
    out.path_records = cache_set("path_records");
    out.label_matches = cache_set("label_matches");
    out.alignment_memo = cache_set("alignment_memo");
    out.thesaurus = cache_set("thesaurus");
    return out;
  }
};

// The live-update state EnableUpdates installs. One instance is shared
// by every engine copy (ExecuteSparql, server workers), so `mu` is THE
// ordering point between updates (exclusive) and queries (shared).
struct SamaEngine::UpdateState {
  std::shared_mutex mu;
  Wal wal;
  DataGraph* graph = nullptr;
  PathIndex* index = nullptr;
  UpdateOptions options;
  // Updates applied since the last successful checkpoint (replayed
  // recovery records count — they too are only in the WAL).
  uint64_t since_checkpoint = 0;
  // Set when durability became indeterminate: an fsync failed (the
  // kernel may have dropped the dirty pages, and no later fsync can
  // resurrect them) or an apply died midway. Further updates are
  // refused — applying more would let the in-memory state diverge from
  // what replay reconstructs — but the store stays fully queryable;
  // reopening the index heals from disk.
  bool sealed = false;
  std::string seal_reason;
  std::shared_ptr<const QueryTrace> recovery_trace;

  Counter* inserts = nullptr;
  Counter* deletes = nullptr;
  Counter* io_errors = nullptr;
  Counter* checkpoints = nullptr;
  Gauge* recovery_millis = nullptr;

  void Seal(const Status& cause) {
    sealed = true;
    seal_reason = cause.ToString();
  }

  // Applies one decoded mutation to the graph + index. Shared by the
  // live path and WAL-replay redo; both are idempotent (duplicate
  // insert and absent delete are no-ops), which is what makes
  // crash-at-every-point replay safe.
  Status Apply(TripleUpdate::Op op, const Triple& triple,
               const Thesaurus* thesaurus) {
    if (op == TripleUpdate::Op::kInsert) {
      return index->AddTriple(graph, triple, thesaurus);
    }
    return index->RemoveTriple(graph, triple, thesaurus);
  }

  // Sync that upholds the seal contract: a failed fsync seals the
  // state.
  Status SyncOrSeal(uint64_t lsn) {
    Status s = wal.Sync(lsn);
    if (!s.ok()) {
      io_errors->Increment();
      Seal(s);
    }
    return s;
  }

  // Checkpoint protocol, caller holds the exclusive lock:
  //   1. fsync the WAL through the last applied LSN (the metadata is
  //      about to claim coverage of those records);
  //   2. record that LSN in the index and Checkpoint() it — the staged
  //      index.meta rename is the atomic commit point;
  //   3. delete WAL segments the checkpoint made obsolete.
  // A crash at any step leaves either the old checkpoint + a complete
  // WAL, or the new checkpoint + not-yet-deleted segments replay skips.
  Status CheckpointLocked() {
    SAMA_RETURN_IF_ERROR(FailPoints::Trigger("engine.checkpoint.begin"));
    uint64_t last = wal.next_lsn() - 1;
    SAMA_RETURN_IF_ERROR(SyncOrSeal(last));
    index->set_applied_lsn(last);
    Status s = index->Checkpoint();
    if (!s.ok()) {
      // The meta rename is atomic: on failure the old checkpoint still
      // governs and the WAL still holds every record — degraded (ENOSPC
      // and friends) but consistent, so no seal. Retried on the next
      // checkpoint trigger.
      io_errors->Increment();
      return s;
    }
    SAMA_RETURN_IF_ERROR(FailPoints::Trigger("engine.checkpoint.committed"));
    SAMA_RETURN_IF_ERROR(wal.TruncateThrough(last));
    since_checkpoint = 0;
    checkpoints->Increment();
    return Status::Ok();
  }
};

Status SamaEngine::EnableUpdates(DataGraph* graph, PathIndex* index,
                                 UpdateOptions options) {
  if (graph != graph_ || index != index_) {
    return Status::InvalidArgument(
        "EnableUpdates must receive the same graph and index the engine "
        "was constructed over");
  }
  if (updates_ != nullptr) {
    return Status::InvalidArgument("updates are already enabled");
  }
  if (options.wal_dir.empty()) {
    if (index->options().dir.empty()) {
      return Status::InvalidArgument(
          "updates need a WAL directory: set UpdateOptions::wal_dir or "
          "use a disk-backed index");
    }
    options.wal_dir = index->options().dir + "/wal";
  }
  auto state = std::make_shared<UpdateState>();
  state->graph = graph;
  state->index = index;
  state->options = options;

  MetricsRegistry* reg = options.registry != nullptr ? options.registry
                         : options_.obs.registry != nullptr
                             ? options_.obs.registry
                             : MetricsRegistry::Global();
  const char* updates_help = "Triple updates applied through the WAL.";
  state->inserts =
      reg->GetCounter("sama_updates_total", updates_help, {{"op", "insert"}});
  state->deletes =
      reg->GetCounter("sama_updates_total", updates_help, {{"op", "delete"}});
  state->io_errors = reg->GetCounter(
      "sama_io_errors_total",
      "I/O failures on the durability path (ENOSPC, short writes, "
      "failed fsyncs); the store stays queryable.");
  state->checkpoints =
      reg->GetCounter("sama_update_checkpoints_total",
                      "Index checkpoints taken by the update path.");
  state->recovery_millis =
      reg->GetGauge("sama_wal_recovery_millis",
                    "Wall time of the last WAL recovery replay.");

  Wal::Options wal_options;
  wal_options.dir = options.wal_dir;
  wal_options.segment_bytes = options.segment_bytes;
  // An empty WAL dir must hand out LSNs from past the checkpoint:
  // restarting at 1 would journal updates replay then never sees.
  wal_options.start_lsn = index->applied_lsn() + 1;
  wal_options.env = options.env;
  wal_options.registry = reg;

  auto trace = std::make_shared<QueryTrace>();
  ObsSpan recovery_span(trace.get(), "wal.recovery");
  WallTimer timer;
  SAMA_RETURN_IF_ERROR(state->wal.Open(wal_options));
  {
    ObsSpan replay_span(trace.get(), "wal.replay");
    Status replayed = state->wal.Replay(
        index->applied_lsn(), [&](const Wal::Record& record) -> Status {
          Triple triple;
          size_t pos = 0;
          if (!GetTriple(record.payload, &pos, &triple) ||
              pos != record.payload.size()) {
            return Status::Corruption("WAL record " +
                                      std::to_string(record.lsn) +
                                      " does not decode to a triple");
          }
          switch (record.type) {
            case Wal::kInsertTriple:
              return state->Apply(TripleUpdate::Op::kInsert, triple,
                                  thesaurus_);
            case Wal::kDeleteTriple:
              return state->Apply(TripleUpdate::Op::kDelete, triple,
                                  thesaurus_);
            default:
              return Status::Corruption(
                  "WAL record " + std::to_string(record.lsn) +
                  " has unknown type " + std::to_string(record.type));
          }
        });
    if (!replayed.ok()) return replayed;
  }
  recovery_span = ObsSpan();
  state->recovery_millis->Set(timer.ElapsedMillis());
  // Replayed records exist only in the WAL until the next checkpoint.
  state->since_checkpoint = state->wal.replayed_records();
  state->recovery_trace = trace;
  updates_ = std::move(state);
  return Status::Ok();
}

Result<uint64_t> SamaEngine::ApplyUpdate(const TripleUpdate& update) const {
  return ApplyUpdate(update, nullptr, 0);
}

Result<uint64_t> SamaEngine::ApplyUpdate(const TripleUpdate& update,
                                         QueryTrace* trace,
                                         uint64_t parent_span) const {
  if (updates_ == nullptr) {
    return Status::InvalidArgument(
        "live updates are not enabled on this engine (EnableUpdates)");
  }
  UpdateState* state = updates_.get();
  std::unique_lock<std::shared_mutex> lock(state->mu);
  if (state->sealed) {
    return Status::IoError(
        "update path sealed after a durability failure (reopen the index "
        "to recover): " +
        state->seal_reason);
  }
  std::vector<uint8_t> payload;
  PutTriple(&payload, update.triple);
  uint8_t type = update.op == TripleUpdate::Op::kInsert ? Wal::kInsertTriple
                                                        : Wal::kDeleteTriple;
  Result<uint64_t> lsn_or = [&]() {
    ObsSpan append_span(trace, "wal.append", parent_span);
    auto r = state->wal.Append(type, payload);
    if (r.ok()) append_span.SetAttr("lsn", std::to_string(*r));
    return r;
  }();
  if (!lsn_or.ok()) {
    // The tail did not advance: nothing was journalled or applied, so
    // the caller can simply retry. Degraded, not fatal.
    state->io_errors->Increment();
    return lsn_or.status();
  }
  if (state->options.durable && update.durable) {
    ObsSpan fsync_span(trace, "wal.fsync", parent_span);
    fsync_span.SetAttr("lsn", std::to_string(*lsn_or));
    SAMA_RETURN_IF_ERROR(state->SyncOrSeal(*lsn_or));
  }
  {
    ObsSpan apply_span(trace, "wal.apply", parent_span);
    apply_span.SetAttr("lsn", std::to_string(*lsn_or));
    apply_span.SetAttr(
        "op", update.op == TripleUpdate::Op::kInsert ? "insert" : "delete");
    Status applied = state->Apply(update.op, update.triple, thesaurus_);
    if (!applied.ok()) {
      // The record is journalled but the in-memory apply died midway;
      // memory can no longer be trusted to match what replay rebuilds.
      state->io_errors->Increment();
      state->Seal(applied);
      return applied;
    }
  }
  (update.op == TripleUpdate::Op::kInsert ? state->inserts : state->deletes)
      ->Increment();
  ++state->since_checkpoint;
  if (state->options.checkpoint_every != 0 &&
      state->since_checkpoint >= state->options.checkpoint_every) {
    // The update itself is applied (and durable when asked); an error
    // here reports checkpoint trouble, and replay + idempotent redo
    // cover a retry.
    ObsSpan checkpoint_span(trace, "wal.checkpoint", parent_span);
    SAMA_RETURN_IF_ERROR(state->CheckpointLocked());
  }
  return *lsn_or;
}

Result<uint64_t> SamaEngine::InsertTriple(const Triple& triple) const {
  return ApplyUpdate({TripleUpdate::Op::kInsert, triple, true});
}

Result<uint64_t> SamaEngine::DeleteTriple(const Triple& triple) const {
  return ApplyUpdate({TripleUpdate::Op::kDelete, triple, true});
}

Status SamaEngine::FlushUpdates() const {
  if (updates_ == nullptr) return Status::Ok();
  UpdateState* state = updates_.get();
  std::unique_lock<std::shared_mutex> lock(state->mu);
  if (state->sealed) {
    return Status::IoError("update path sealed: " + state->seal_reason);
  }
  if (state->wal.next_lsn() <= 1) return Status::Ok();
  return state->SyncOrSeal(state->wal.next_lsn() - 1);
}

Status SamaEngine::CheckpointUpdates() const {
  if (updates_ == nullptr) {
    return Status::InvalidArgument("live updates are not enabled");
  }
  UpdateState* state = updates_.get();
  std::unique_lock<std::shared_mutex> lock(state->mu);
  if (state->sealed) {
    return Status::IoError("update path sealed: " + state->seal_reason);
  }
  return state->CheckpointLocked();
}

bool SamaEngine::updates_durable() const {
  return updates_ != nullptr && updates_->options.durable;
}

uint64_t SamaEngine::last_update_lsn() const {
  if (updates_ == nullptr) return 0;
  std::shared_lock<std::shared_mutex> lock(updates_->mu);
  return updates_->wal.next_lsn() - 1;
}

std::shared_ptr<const QueryTrace> SamaEngine::recovery_trace() const {
  return updates_ == nullptr ? nullptr : updates_->recovery_trace;
}

std::vector<std::string> SamaEngine::UpdateCrashPoints() {
  std::vector<std::string> points = Wal::CrashPoints();
  points.push_back("engine.checkpoint.begin");
  points.push_back("engine.checkpoint.committed");
  return points;
}

SamaEngine::SamaEngine(const DataGraph* graph, const PathIndex* index,
                       const Thesaurus* thesaurus, EngineOptions options)
    : graph_(graph),
      index_(index),
      thesaurus_(thesaurus),
      options_(options) {
  size_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                            : options.num_threads;
  // The calling thread participates in every parallel section, so a
  // request for N threads needs N-1 pool workers. The pool is shared
  // (engine copies in ExecuteSparql reuse it) and lives for the
  // engine's lifetime, not per query.
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);

  const QueryCacheOptions& cache = options_.cache;
  if (cache.enabled) {
    label_cache_ = std::make_shared<ShardedLruCache<uint64_t, LabelMatch>>(
        cache.label_match_entries, cache.shards);
    alignment_memo_ = std::make_shared<AlignmentMemo>(
        cache.alignment_memo_entries, cache.shards);
    label_cache_identity_ = std::make_shared<std::atomic<uint64_t>>(
        thesaurus_ == nullptr ? 0 : thesaurus_->identity());
  }
  if (index_ != nullptr) {
    IndexCacheConfig index_cache;
    index_cache.enabled = cache.enabled;
    index_cache.posting_entries = cache.posting_entries;
    index_cache.lookup_entries = cache.path_lookup_entries;
    index_cache.record_entries = cache.path_record_entries;
    index_cache.shards = cache.shards;
    index_->ConfigureQueryCache(index_cache);
  }

  const ObsOptions& obs = options_.obs;
  if (obs.metrics) {
    MetricsRegistry* reg =
        obs.registry != nullptr ? obs.registry : MetricsRegistry::Global();
    instruments_ =
        std::make_shared<EngineInstruments>(EngineInstruments::Resolve(reg));
  }
  if (obs.slow_query_millis > 0) {
    SlowQueryLog::Options log_options;
    log_options.threshold_millis = obs.slow_query_millis;
    log_options.capacity = obs.slow_query_capacity;
    log_options.jsonl_path = obs.slow_query_path;
    log_options.env = obs.env;
    slow_log_ = std::make_shared<SlowQueryLog>(log_options);
  }
  if (obs.profile) {
    profile_log_ = std::make_shared<ProfileLog>(obs.profile_capacity);
  }
}

void SamaEngine::DropQueryCaches() const {
  if (label_cache_) label_cache_->Clear();
  if (alignment_memo_) alignment_memo_->Clear();
  if (index_ != nullptr) index_->DropQueryCaches();
}

Result<std::vector<Answer>> SamaEngine::ExecuteSparql(
    const SparqlQuery& query, size_t k, QueryStats* stats) const {
  if (k == 0) k = query.limit;
  QueryGraph qg = BuildQueryGraph(query.patterns);
  SamaEngine configured = *this;
  if ((options_.dedup_select_bindings || query.distinct) &&
      !query.select_all) {
    configured.options_.search.dedup_vars = query.select_vars;
  }
  if (!query.filters.empty()) {
    std::vector<FilterConstraint> filters = query.filters;
    configured.options_.search.binding_filter =
        [filters = std::move(filters)](const Substitution& binding) {
          return PassesFilters(filters, binding);
        };
  }
  return configured.Execute(qg, k, stats);
}

Result<std::vector<Cluster>> SamaEngine::ClusterQuery(const QueryGraph& query,
                                                      QueryStats* stats) const {
  // Same ordering guarantee as Execute: clustering sees either all of
  // an update or none of it.
  std::shared_lock<std::shared_mutex> update_lock;
  if (updates_ != nullptr) {
    update_lock = std::shared_lock<std::shared_mutex>(updates_->mu);
  }
  WallTimer total;
  QueryStats local;
  local.threads_used = threads_used();

  if (label_cache_ != nullptr) {
    uint64_t identity = thesaurus_ == nullptr ? 0 : thesaurus_->identity();
    if (label_cache_identity_->exchange(identity) != identity) {
      label_cache_->Clear();
    }
  }
  QueryCaches caches;
  caches.label_matches = label_cache_.get();
  caches.alignment_memo = alignment_memo_.get();
  QueryCacheDeltas deltas;
  QueryObs qobs;
  qobs.deltas = &deltas;

  local.num_query_paths = query.paths().size();
  WallTimer phase;
  std::atomic<uint64_t> clustering_busy{0};
  std::atomic<uint64_t> corrupt_skipped{0};
  std::atomic<uint64_t> io_retried{0};
  ClusteringOptions clustering_options = options_.clustering;
  clustering_options.strict_io = options_.strict_io;
  clustering_options.max_io_retries = options_.max_io_retries;
  auto clusters_or =
      BuildClusters(query, *index_, thesaurus_, options_.params,
                    clustering_options, pool_.get(), &clustering_busy,
                    &corrupt_skipped, &io_retried, &caches, &qobs);
  if (!clusters_or.ok()) return clusters_or.status();
  local.clustering_millis = phase.ElapsedMillis();
  local.clustering_busy_millis =
      static_cast<double>(clustering_busy.load()) / 1e6;
  local.corrupt_records_skipped = corrupt_skipped.load();
  local.io_retries = io_retried.load();
  for (const Cluster& c : *clusters_or) local.num_candidate_paths += c.size();
  local.posting_cache = deltas.postings.Snapshot();
  local.path_lookup_cache = deltas.lookups.Snapshot();
  local.path_record_cache = deltas.records.Snapshot();
  local.label_match_cache = deltas.label_matches.Snapshot();
  local.alignment_memo = deltas.alignments.Snapshot();
  local.thesaurus_cache = deltas.thesaurus.Snapshot();
  local.total_millis = total.ElapsedMillis();
  if (stats != nullptr) *stats = local;
  return clusters_or;
}

Result<std::vector<Answer>> SamaEngine::Execute(const QueryGraph& query,
                                                size_t k,
                                                QueryStats* stats) const {
  // Queries share the update lock; ApplyUpdate takes it exclusively, so
  // every query sees either all of an update or none of it. Read-only
  // engines (no EnableUpdates) skip the lock entirely.
  std::shared_lock<std::shared_mutex> update_lock;
  if (updates_ != nullptr) {
    update_lock = std::shared_lock<std::shared_mutex>(updates_->mu);
  }
  WallTimer total;
  QueryStats local;
  local.threads_used = threads_used();
  ThreadPool* pool = pool_.get();
  // Epoch-reclamation activity over the query window (global manager,
  // so concurrent queries contribute too — see QueryStats).
  const EpochManager::Stats epoch_before = EpochManager::Global()->stats();

  // Cross-query caches: verify the label cache still matches the
  // thesaurus content (mutations between queries clear it; the other
  // caches embed the identity in their keys).
  if (label_cache_ != nullptr) {
    uint64_t identity = thesaurus_ == nullptr ? 0 : thesaurus_->identity();
    if (label_cache_identity_->exchange(identity) != identity) {
      label_cache_->Clear();
    }
  }
  QueryCaches caches;
  caches.label_matches = label_cache_.get();
  caches.alignment_memo = alignment_memo_.get();

  // Per-query attribution: every cache layer tallies THIS query's
  // traffic into these scoped sinks. (Diffing the shared lifetime
  // counters instead would fold concurrent queries' traffic into this
  // query's stats — the cross-contamination bug this replaced.)
  QueryCacheDeltas deltas;
  QueryObs qobs;
  qobs.deltas = &deltas;

  // Profiling needs the span trace as raw material, so it forces span
  // recording even when obs.trace is off (QueryStats::trace still
  // stays null in that case — the spans live inside the profile).
  // An adopting query (obs.adopt_trace) appends into the propagated
  // trace instead and skips profile assembly, whose builder assumes
  // the trace holds exactly one query's spans.
  const bool adopting = options_.obs.adopt_trace != nullptr;
  const bool profiling =
      options_.obs.profile && profile_log_ != nullptr && !adopting;
  std::shared_ptr<QueryTrace> trace;
  if (adopting) {
    trace = options_.obs.adopt_trace;
    qobs.trace = trace.get();
  } else if (options_.obs.trace || profiling) {
    trace = std::make_shared<QueryTrace>();
    if (options_.obs.trace_context.valid()) {
      trace->SetContext(options_.obs.trace_context);
    }
    qobs.trace = trace.get();
  }
  // Adoption parents the query span explicitly: the caller's request
  // span was opened with raw BeginSpan on another thread, so the TLS
  // current-span slot cannot supply it.
  ObsSpan query_span = adopting
                           ? ObsSpan(trace.get(), "query",
                                     options_.obs.adopt_parent)
                           : ObsSpan(trace.get(), "query");

  // Preprocessing: PQ is computed by the QueryGraph itself; build the
  // intersection query graph here.
  WallTimer phase;
  ObsSpan preprocess_span(trace.get(), "preprocess");
  IntersectionQueryGraph ig(query);
  preprocess_span = ObsSpan();
  local.preprocess_millis = phase.ElapsedMillis();
  local.num_query_paths = query.paths().size();

  // Profiler phase boundaries: buffer-pool counter snapshots (the
  // delta over a phase window is pool-wide, so concurrent queries can
  // contribute to it — documented caveat) plus the scoped cache sinks,
  // which are per-query exact. The sinks accumulate across phases, so
  // the search share is total minus the clustering share.
  auto cache_totals = [&deltas]() {
    CacheCounters total;
    total += deltas.postings.Snapshot();
    total += deltas.lookups.Snapshot();
    total += deltas.records.Snapshot();
    total += deltas.label_matches.Snapshot();
    total += deltas.alignments.Snapshot();
    total += deltas.thesaurus.Snapshot();
    return total;
  };
  BufferPool::Stats pages_before{};
  if (profiling) pages_before = index_->cache_stats();

  // Clustering (parallel over candidate chunks when a pool exists;
  // results are identical either way).
  phase.Restart();
  std::atomic<uint64_t> clustering_busy{0};
  std::atomic<uint64_t> corrupt_skipped{0};
  std::atomic<uint64_t> io_retried{0};
  ClusteringOptions clustering_options = options_.clustering;
  clustering_options.strict_io = options_.strict_io;
  clustering_options.max_io_retries = options_.max_io_retries;
  ObsSpan clustering_span(trace.get(), "clustering");
  // Chunk spans recorded on pool workers parent here explicitly.
  qobs.parent_span = clustering_span.id();
  auto clusters_or =
      BuildClusters(query, *index_, thesaurus_, options_.params,
                    clustering_options, pool, &clustering_busy,
                    &corrupt_skipped, &io_retried, &caches, &qobs);
  clustering_span = ObsSpan();
  if (!clusters_or.ok()) return clusters_or.status();
  const std::vector<Cluster>& clusters = *clusters_or;
  local.clustering_millis = phase.ElapsedMillis();
  local.clustering_busy_millis =
      static_cast<double>(clustering_busy.load()) / 1e6;
  local.corrupt_records_skipped = corrupt_skipped.load();
  local.io_retries = io_retried.load();
  for (const Cluster& c : clusters) local.num_candidate_paths += c.size();

  BufferPool::Stats pages_after_clustering = pages_before;
  CacheCounters cache_after_clustering;
  if (profiling) {
    pages_after_clustering = index_->cache_stats();
    cache_after_clustering = cache_totals();
  }

  // Search (parallel over candidate subtrees in deterministic waves).
  phase.Restart();
  ForestSearchOptions search_options = options_.search;
  if (k != 0) search_options.k = k;
  std::atomic<uint64_t> search_busy{0};
  ForestSearchStats fstats;
  ObsSpan search_span(trace.get(), "search");
  auto answers_or = ForestSearch(query, ig, clusters, options_.params,
                                 search_options, pool, &search_busy, &fstats);
  search_span = ObsSpan();
  if (!answers_or.ok()) return answers_or.status();
  local.search_millis = phase.ElapsedMillis();
  local.search_busy_millis = static_cast<double>(search_busy.load()) / 1e6;
  local.search_expansions = fstats.expansions;
  local.search_bound_pruned = fstats.bound_pruned;
  local.search_roots_pruned = fstats.roots_pruned;
  local.search_shared_bound_pruned = fstats.shared_bound_pruned;
  local.search_truncated = fstats.truncated;

  // Per-query cache stats come straight from this query's scoped sinks.
  local.posting_cache = deltas.postings.Snapshot();
  local.path_lookup_cache = deltas.lookups.Snapshot();
  local.path_record_cache = deltas.records.Snapshot();
  local.label_match_cache = deltas.label_matches.Snapshot();
  local.alignment_memo = deltas.alignments.Snapshot();
  local.thesaurus_cache = deltas.thesaurus.Snapshot();

  query_span = ObsSpan();
  local.total_millis = total.ElapsedMillis();
  local.num_answers = answers_or->size();
  {
    const EpochManager::Stats epoch_after = EpochManager::Global()->stats();
    local.epoch_advances = epoch_after.advances - epoch_before.advances;
    local.epoch_retired = epoch_after.retired - epoch_before.retired;
    local.epoch_reclaimed = epoch_after.reclaimed - epoch_before.reclaimed;
  }
  if (options_.obs.trace || adopting) local.trace = trace;

  if (profiling) {
    BufferPool::Stats pages_after_search = index_->cache_stats();
    CacheCounters cache_after_search = cache_totals();

    ProfileSummary summary;
    summary.total_millis = local.total_millis;
    summary.num_query_paths = local.num_query_paths;
    summary.num_candidate_paths = local.num_candidate_paths;
    summary.num_answers = local.num_answers;
    summary.threads_used = local.threads_used;
    summary.search_expansions = local.search_expansions;
    summary.search_truncated = local.search_truncated;

    std::vector<QueryProfile::PhaseCounters> phases(2);
    phases[0].phase = "clustering";
    {
      ProfileCounters& c = phases[0].counters;
      c.cache_hits = cache_after_clustering.hits;
      c.cache_misses = cache_after_clustering.misses;
      BufferPool::Stats d =
          BufferPool::Stats::Delta(pages_before, pages_after_clustering);
      c.pages_fetched = d.fetches;
      c.pages_read = d.misses;
      c.pages_evicted = d.evictions;
      c.bytes_read = d.bytes_read;
      // Degraded-read accounting happens inside BuildClusters only.
      c.io_retries = local.io_retries;
      c.corrupt_skipped = local.corrupt_records_skipped;
    }
    phases[1].phase = "search";
    {
      ProfileCounters& c = phases[1].counters;
      c.cache_hits = cache_after_search.hits - cache_after_clustering.hits;
      c.cache_misses =
          cache_after_search.misses - cache_after_clustering.misses;
      BufferPool::Stats d = BufferPool::Stats::Delta(pages_after_clustering,
                                                     pages_after_search);
      c.pages_fetched = d.fetches;
      c.pages_read = d.misses;
      c.pages_evicted = d.evictions;
      c.bytes_read = d.bytes_read;
      c.search_expansions = local.search_expansions;
    }
    auto profile = std::make_shared<QueryProfile>(
        QueryProfile::Build(trace->Snapshot(), std::move(summary), phases));
    profile_log_->Add(profile);
    local.profile = profile;
  }

  if (instruments_ != nullptr) {
    const EngineInstruments& ins = *instruments_;
    ins.queries->Increment();
    ins.answers->Increment(local.num_answers);
    ins.latency->Observe(local.total_millis);
    ins.phase_preprocess->Observe(local.preprocess_millis);
    ins.phase_clustering->Observe(local.clustering_millis);
    ins.phase_search->Observe(local.search_millis);
    if (local.search_expansions) ins.expansions->Increment(local.search_expansions);
    if (local.search_bound_pruned) {
      ins.bound_pruned->Increment(local.search_bound_pruned);
    }
    if (local.search_roots_pruned) {
      ins.roots_pruned->Increment(local.search_roots_pruned);
    }
    if (local.search_truncated) ins.truncated->Increment();
    if (local.io_retries) ins.io_retries->Increment(local.io_retries);
    if (local.corrupt_records_skipped) {
      ins.corrupt_skipped->Increment(local.corrupt_records_skipped);
    }
    ins.postings.Add(local.posting_cache);
    ins.path_lookups.Add(local.path_lookup_cache);
    ins.path_records.Add(local.path_record_cache);
    ins.label_matches.Add(local.label_match_cache);
    ins.alignment_memo.Add(local.alignment_memo);
    ins.thesaurus.Add(local.thesaurus_cache);
    if (local.epoch_advances) {
      ins.epoch_advances->Increment(local.epoch_advances);
    }
    if (local.epoch_retired) ins.epoch_retired->Increment(local.epoch_retired);
    if (local.epoch_reclaimed) {
      ins.epoch_reclaimed->Increment(local.epoch_reclaimed);
    }
    uint64_t skips = 0;
    if (label_cache_ != nullptr) skips += label_cache_->lru_lock_skips();
    if (alignment_memo_ != nullptr) skips += alignment_memo_->lock_skips();
    if (index_ != nullptr) skips += index_->query_cache_lock_skips();
    if (thesaurus_ != nullptr) {
      skips += thesaurus_->relatedness_cache_lock_skips();
    }
    ins.cache_lock_skips->Set(static_cast<double>(skips));
  }

  if (slow_log_ != nullptr && slow_log_->ShouldRecord(local.total_millis)) {
    SlowQueryRecord record;
    if (options_.obs.trace_context.valid()) {
      record.trace_id = options_.obs.trace_context.TraceIdHex();
    }
    record.request_id = options_.obs.request_id;
    record.total_millis = local.total_millis;
    record.preprocess_millis = local.preprocess_millis;
    record.clustering_millis = local.clustering_millis;
    record.search_millis = local.search_millis;
    record.num_query_paths = local.num_query_paths;
    record.num_candidate_paths = local.num_candidate_paths;
    record.num_answers = local.num_answers;
    record.search_expansions = local.search_expansions;
    record.search_truncated = local.search_truncated;
    record.corrupt_records_skipped = local.corrupt_records_skipped;
    record.io_retries = local.io_retries;
    record.threads = static_cast<int>(local.threads_used);
    uint64_t sink_failures_before = slow_log_->sink_failures();
    slow_log_->Record(record);
    if (instruments_ != nullptr) {
      instruments_->slow_queries->Increment();
      uint64_t failed = slow_log_->sink_failures() - sink_failures_before;
      if (failed) instruments_->slow_sink_failures->Increment(failed);
    }
  }

  if (stats != nullptr) *stats = local;
  return answers_or;
}

}  // namespace sama

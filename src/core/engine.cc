#include "core/engine.h"

#include "common/timer.h"

namespace sama {

Result<std::vector<Answer>> SamaEngine::ExecuteSparql(
    const SparqlQuery& query, size_t k, QueryStats* stats) const {
  if (k == 0) k = query.limit;
  QueryGraph qg = BuildQueryGraph(query.patterns);
  SamaEngine configured = *this;
  if ((options_.dedup_select_bindings || query.distinct) &&
      !query.select_all) {
    configured.options_.search.dedup_vars = query.select_vars;
  }
  if (!query.filters.empty()) {
    std::vector<FilterConstraint> filters = query.filters;
    configured.options_.search.binding_filter =
        [filters = std::move(filters)](const Substitution& binding) {
          return PassesFilters(filters, binding);
        };
  }
  return configured.Execute(qg, k, stats);
}

Result<std::vector<Answer>> SamaEngine::Execute(const QueryGraph& query,
                                                size_t k,
                                                QueryStats* stats) const {
  WallTimer total;
  QueryStats local;

  // Preprocessing: PQ is computed by the QueryGraph itself; build the
  // intersection query graph here.
  WallTimer phase;
  IntersectionQueryGraph ig(query);
  local.preprocess_millis = phase.ElapsedMillis();
  local.num_query_paths = query.paths().size();

  // Clustering.
  phase.Restart();
  auto clusters_or = BuildClusters(query, *index_, thesaurus_,
                                   options_.params, options_.clustering);
  if (!clusters_or.ok()) return clusters_or.status();
  const std::vector<Cluster>& clusters = *clusters_or;
  local.clustering_millis = phase.ElapsedMillis();
  for (const Cluster& c : clusters) local.num_candidate_paths += c.size();

  // Search.
  phase.Restart();
  ForestSearchOptions search_options = options_.search;
  if (k != 0) search_options.k = k;
  auto answers_or = ForestSearch(query, ig, clusters, options_.params,
                                 search_options);
  if (!answers_or.ok()) return answers_or.status();
  local.search_millis = phase.ElapsedMillis();

  local.total_millis = total.ElapsedMillis();
  local.num_answers = answers_or->size();
  if (stats != nullptr) *stats = local;
  return answers_or;
}

}  // namespace sama

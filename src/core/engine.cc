#include "core/engine.h"

#include "common/timer.h"

namespace sama {

Result<std::vector<Answer>> SamaEngine::ExecuteSparql(
    const SparqlQuery& query, size_t k, QueryStats* stats) const {
  if (k == 0) k = query.limit;
  QueryGraph qg = BuildQueryGraph(query.patterns);
  SamaEngine configured = *this;
  if ((options_.dedup_select_bindings || query.distinct) &&
      !query.select_all) {
    configured.options_.search.dedup_vars = query.select_vars;
  }
  if (!query.filters.empty()) {
    std::vector<FilterConstraint> filters = query.filters;
    configured.options_.search.binding_filter =
        [filters = std::move(filters)](const Substitution& binding) {
          return PassesFilters(filters, binding);
        };
  }
  return configured.Execute(qg, k, stats);
}

Result<std::vector<Answer>> SamaEngine::Execute(const QueryGraph& query,
                                                size_t k,
                                                QueryStats* stats) const {
  WallTimer total;
  QueryStats local;
  local.threads_used = threads_used();
  ThreadPool* pool = pool_.get();

  // Preprocessing: PQ is computed by the QueryGraph itself; build the
  // intersection query graph here.
  WallTimer phase;
  IntersectionQueryGraph ig(query);
  local.preprocess_millis = phase.ElapsedMillis();
  local.num_query_paths = query.paths().size();

  // Clustering (parallel over candidate chunks when a pool exists;
  // results are identical either way).
  phase.Restart();
  std::atomic<uint64_t> clustering_busy{0};
  std::atomic<uint64_t> corrupt_skipped{0};
  std::atomic<uint64_t> io_retried{0};
  ClusteringOptions clustering_options = options_.clustering;
  clustering_options.strict_io = options_.strict_io;
  clustering_options.max_io_retries = options_.max_io_retries;
  auto clusters_or =
      BuildClusters(query, *index_, thesaurus_, options_.params,
                    clustering_options, pool, &clustering_busy,
                    &corrupt_skipped, &io_retried);
  if (!clusters_or.ok()) return clusters_or.status();
  const std::vector<Cluster>& clusters = *clusters_or;
  local.clustering_millis = phase.ElapsedMillis();
  local.clustering_busy_millis =
      static_cast<double>(clustering_busy.load()) / 1e6;
  local.corrupt_records_skipped = corrupt_skipped.load();
  local.io_retries = io_retried.load();
  for (const Cluster& c : clusters) local.num_candidate_paths += c.size();

  // Search (parallel over candidate subtrees in deterministic waves).
  phase.Restart();
  ForestSearchOptions search_options = options_.search;
  if (k != 0) search_options.k = k;
  std::atomic<uint64_t> search_busy{0};
  auto answers_or = ForestSearch(query, ig, clusters, options_.params,
                                 search_options, pool, &search_busy);
  if (!answers_or.ok()) return answers_or.status();
  local.search_millis = phase.ElapsedMillis();
  local.search_busy_millis = static_cast<double>(search_busy.load()) / 1e6;

  local.total_millis = total.ElapsedMillis();
  local.num_answers = answers_or->size();
  if (stats != nullptr) *stats = local;
  return answers_or;
}

}  // namespace sama

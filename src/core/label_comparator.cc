#include "core/label_comparator.h"

#include "text/tokenizer.h"

namespace sama {

LabelMatch LabelComparator::CompareSlow(const Term& data,
                                        const Term& query) const {
  std::string data_label = data.DisplayLabel();
  std::string query_label = query.DisplayLabel();
  if (NormalizedLabelsEqual(data_label, query_label)) {
    return LabelMatch::kExact;
  }
  if (thesaurus_ != nullptr &&
      thesaurus_->AreRelated(data_label, query_label, /*max_hops=*/1,
                             thesaurus_stats_)) {
    return LabelMatch::kSynonym;
  }
  return LabelMatch::kMismatch;
}

}  // namespace sama

#ifndef SAMA_CORE_SCORE_PARAMS_H_
#define SAMA_CORE_SCORE_PARAMS_H_

#include "query/transformation.h"

namespace sama {

// How path alignments are computed (§4.3 vs the §7 improvement).
enum class AlignmentMode {
  // The paper's backward greedy scan: O(|p| + |q|), may settle for a
  // suboptimal alignment when a compatible-looking pair should have
  // been skipped.
  kGreedyLinear = 0,
  // Exact minimum-cost alignment by dynamic programming over
  // (edge, node) pairs: O(|p|·|q|), still tiny for real path lengths.
  kOptimalDp,
};

// Parameters of the score function (§4.1): the alignment weights
// a, b, c, d of Equation 1 (carried by OpWeights) and the conformity
// weight e. Defaults are the paper's experimental setting (§6.2):
// a=1, b=0.5, c=2, d=1; e is not reported and defaults to 1.
struct ScoreParams {
  OpWeights weights;
  double e = 1.0;
  AlignmentMode alignment_mode = AlignmentMode::kGreedyLinear;
  // Score-bounded top-k forest search: prune partial per-cluster
  // combinations whose admissible Λ + Ψ lower bound already meets the
  // current k-th best score. The bound never discards a combination
  // that could enter the top k, so answers (scores AND tie-break order)
  // are identical to the exhaustive enumeration — the determinism
  // contract is locked in by tests/core/forest_pruning_test.cc. Off
  // switches ForestSearch back to the exhaustive combination loop
  // (ablations, the bench_fig6 pruning-off column).
  bool prune_search = true;

  double a() const { return weights.node_delete; }
  double b() const { return weights.node_insert; }
  double c() const { return weights.edge_delete; }
  double d() const { return weights.edge_insert; }
};

}  // namespace sama

#endif  // SAMA_CORE_SCORE_PARAMS_H_

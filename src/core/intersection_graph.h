#ifndef SAMA_CORE_INTERSECTION_GRAPH_H_
#define SAMA_CORE_INTERSECTION_GRAPH_H_

#include <cstddef>
#include <vector>

#include "query/query_graph.h"

namespace sama {

// The intersection query graph IG (§5 Preprocessing, Figure 2): one
// node per query path of PQ; an edge (qi, qj) whenever the two paths
// share query-graph nodes, annotated with the shared node ids (e.g.
// q1–q2 share {?v2, Health Care} in the running example). The search
// step uses it to check that combined answer paths intersect the way
// the query requires.
class IntersectionQueryGraph {
 public:
  struct SharedEdge {
    size_t qi;                     // Index into query.paths().
    size_t qj;                     // qi < qj.
    std::vector<NodeId> shared;    // Query-graph node ids in common.
  };

  explicit IntersectionQueryGraph(const QueryGraph& query);

  // All pairs (qi, qj) with at least one shared node.
  const std::vector<SharedEdge>& edges() const { return edges_; }

  // Shared node count for an arbitrary pair (0 when not adjacent).
  size_t ChiQ(size_t qi, size_t qj) const;

  // Indices of paths adjacent to `q`.
  const std::vector<size_t>& Neighbors(size_t q) const {
    return adjacency_[q];
  }

  size_t path_count() const { return adjacency_.size(); }

 private:
  std::vector<SharedEdge> edges_;
  std::vector<std::vector<size_t>> adjacency_;
  // Dense chi lookup: chi_[qi * n + qj].
  std::vector<size_t> chi_;
  size_t n_ = 0;
};

}  // namespace sama

#endif  // SAMA_CORE_INTERSECTION_GRAPH_H_

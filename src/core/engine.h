#ifndef SAMA_CORE_ENGINE_H_
#define SAMA_CORE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/clustering.h"
#include "core/forest_search.h"
#include "core/intersection_graph.h"
#include "core/score_params.h"
#include "index/path_index.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {

struct EngineInstruments;

// Sizing/enable knobs for the engine's query-side cache layer: the
// index caches (postings, candidate lists, path records), the shared
// label-match memo and the alignment memo. Every layer is a pure
// optimisation — answers are byte-identical with `enabled = false`
// (tests/core/engine_cache_test.cc) — and entry keys embed the
// thesaurus content identity, so vocabulary changes can never serve
// stale results. Caches are created at engine construction and shared
// across queries; that cross-query reuse is where the warm-path
// speedup comes from.
struct QueryCacheOptions {
  bool enabled = true;
  // Per-inverted-index memo over semantic label lookups (×4 indexes).
  size_t posting_entries = 2048;
  // PathIndex candidate-list lookups (term → path ids).
  size_t path_lookup_entries = 2048;
  // Decoded, checksum-verified path records (corrupt reads are never
  // cached; see PathIndex::GetPath).
  size_t path_record_entries = 16384;
  // Cross-query label-pair match results.
  size_t label_match_entries = 1 << 16;
  // Memoized full path alignments (see AlignmentMemo).
  size_t alignment_memo_entries = 1 << 15;
  size_t shards = 8;
};

// Observability knobs (DESIGN.md "Observability"). Tracing and the
// slow-query log are per-query artifacts; metrics feed the process-wide
// MetricsRegistry. None of it affects answers: with everything off the
// query path does zero observability work beyond the per-query stats
// QueryStats always carried.
struct ObsOptions {
  // Update registry instruments (sama_* counters/histograms) after each
  // query. Instrument pointers are resolved once at engine
  // construction; the per-query cost is a handful of relaxed atomic
  // adds.
  bool metrics = true;
  // Record a per-query span trace, attached as QueryStats::trace.
  bool trace = false;
  // Assemble a QueryProfile per query (phase tree + resource counters;
  // DESIGN.md "Observability"): forces span recording for the query
  // even when `trace` is off, attaches the profile as
  // QueryStats::profile, and retains the last `profile_capacity`
  // profiles in the engine's ProfileLog for /debug/profile. Off by
  // default so the hot path stays profile-free.
  bool profile = false;
  size_t profile_capacity = 16;
  // Queries with total_millis >= this threshold are recorded in the
  // slow-query log. <= 0 disables the log.
  double slow_query_millis = 0;
  // Ring capacity of the in-memory slow-query log.
  size_t slow_query_capacity = 128;
  // Optional JSONL sink for slow-query records, written through `env`
  // (Env::Default() when null) so fault injection covers it.
  std::string slow_query_path;
  Env* env = nullptr;
  // Registry receiving the engine's instruments;
  // MetricsRegistry::Global() when null.
  MetricsRegistry* registry = nullptr;

  // ---- Distributed-trace adoption (per-request; DESIGN.md §15).
  // When `adopt_trace` is set, Execute appends this query's spans into
  // that existing trace — the "query" span parents under
  // `adopt_parent` (the server's request span) instead of being a root
  // — so one propagated trace id collects the wire, shard and WAL
  // spans of everything done on its behalf. Profiling is skipped for
  // adopting queries (QueryProfile::Build assumes a single-query
  // trace). Set these on the per-request engine copy, never on the
  // shared engine.
  std::shared_ptr<QueryTrace> adopt_trace;
  uint64_t adopt_parent = 0;
  // The propagated identity and server request id, stamped into
  // slow-query records so a slow query is joinable to the client that
  // sent it.
  TraceContext trace_context;
  uint64_t request_id = 0;

  // Service-level objectives the serving layer's SloTracker evaluates
  // over the telemetry ring. The engine itself never reads these.
  SloOptions slo;
};

// Durability knobs for the live-update path (EnableUpdates). One WAL
// serves the engine and every copy ExecuteSparql/the server makes.
struct UpdateOptions {
  // WAL directory. Empty derives "<index dir>/wal"; an in-memory index
  // then rejects EnableUpdates (nothing durable to recover into).
  std::string wal_dir;
  uint64_t segment_bytes = 4 * 1024 * 1024;
  // Checkpoint the index and truncate the WAL after this many applied
  // updates; 0 leaves checkpoints to CheckpointUpdates().
  uint64_t checkpoint_every = 1024;
  // Master durability switch: false defers every fsync (bulk loads),
  // regardless of the per-update flag.
  bool durable = true;
  Env* env = nullptr;                   // Env::Default() when null.
  MetricsRegistry* registry = nullptr;  // ObsOptions / Global() when null.
};

// One mutation for ApplyUpdate.
struct TripleUpdate {
  enum class Op : uint8_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  Triple triple;
  // false = journal without fsync (the record rides the next durable
  // update's group commit, a later FlushUpdates, or a checkpoint). An
  // un-synced update can be lost to a crash — it is never acked as
  // durable, so the server only sets this when the client asked.
  bool durable = true;
};

struct EngineOptions {
  ScoreParams params;
  ClusteringOptions clustering;
  ForestSearchOptions search;
  QueryCacheOptions cache;
  ObsOptions obs;
  // ExecuteSparql deduplicates answers on the SELECT variables
  // (projection semantics); Execute on a raw QueryGraph never does.
  bool dedup_select_bindings = true;
  // Threads used for intra-query parallelism (candidate scoring and
  // per-cluster forest search). 0 = hardware concurrency; 1 =
  // sequential. Answers are bit-identical for every value — the knob
  // only trades wall-clock time. Read at engine construction (the
  // worker pool is built once and shared across queries).
  size_t num_threads = 1;
  // Read-failure policy. The default (false) degrades gracefully:
  // candidates whose pages are corrupt or unreadable are skipped and
  // counted in QueryStats, and top-k runs over the surviving paths —
  // still deterministically. strict_io instead fails the query on the
  // first damaged read. Overrides the same fields in `clustering`.
  bool strict_io = false;
  // Bounded retries (with backoff) for transient kIoError reads before
  // a candidate is skipped or, under strict_io, the query fails.
  size_t max_io_retries = 2;
};

// Per-query timing/size breakdown matching the paper's phases (§5).
struct QueryStats {
  double preprocess_millis = 0;  // PQ + intersection query graph.
  double clustering_millis = 0;
  double search_millis = 0;
  double total_millis = 0;
  size_t num_query_paths = 0;
  size_t num_candidate_paths = 0;  // I: paths retrieved by the index.
  size_t num_answers = 0;

  // Parallel execution: threads available to the query (1 =
  // sequential) and, per parallel phase, the summed time all threads
  // spent inside the phase's work items. busy / elapsed estimates the
  // phase's effective speedup; ~1.0 means the phase ran serially.
  size_t threads_used = 1;
  double clustering_busy_millis = 0;
  double search_busy_millis = 0;

  // Epoch-based-reclamation activity during this query (global
  // manager deltas, so concurrent queries' retires show up too — these
  // are a concurrency health signal, not per-query attribution like
  // the cache counters below): epoch advances observed, objects
  // retired (deferred frees queued) and reclaimed (actually freed).
  // All zero in a quiescent single-query run that never grows a table
  // or evicts a frame.
  uint64_t epoch_advances = 0;
  uint64_t epoch_retired = 0;
  uint64_t epoch_reclaimed = 0;

  // Degraded-read accounting (EngineOptions::strict_io == false):
  // candidates dropped because their pages were corrupt or unreadable,
  // and transient-read retries that were attempted. Both stay 0 on a
  // healthy index.
  uint64_t corrupt_records_skipped = 0;
  uint64_t io_retries = 0;

  // Query-side cache activity during THIS query, attributed through
  // per-query scoped counter sinks (QueryCacheDeltas) — NOT by diffing
  // the shared lifetime counters, which would absorb concurrent
  // queries' traffic. All zero when caching is disabled
  // (QueryCacheOptions::enabled == false).
  CacheCounters posting_cache;      // Inverted-index semantic lookups.
  CacheCounters path_lookup_cache;  // Candidate-list lookups.
  CacheCounters path_record_cache;  // GetPath records.
  CacheCounters label_match_cache;  // Shared label-pair matches.
  CacheCounters alignment_memo;     // Memoized path alignments.
  CacheCounters thesaurus_cache;    // AreRelated BFS memo.

  // Forest-search branch-and-bound accounting
  // (ScoreParams::prune_search); pruning counters stay zero in the
  // exhaustive ablation.
  uint64_t search_expansions = 0;
  uint64_t search_bound_pruned = 0;
  uint64_t search_roots_pruned = 0;
  // Prunes owed solely to a cross-shard shared k-th bound
  // (ForestSearchOptions::shared_bound); 0 outside sharded execution.
  uint64_t search_shared_bound_pruned = 0;
  // Shards that were unusable (damaged index or sidecar) and therefore
  // contributed no candidates to this query. Populated only by sharded
  // execution (ShardedEngine); 0 on a healthy shard set and always 0
  // for single-index engines.
  uint64_t shards_degraded = 0;
  // True when the anytime budget cut the combination space short (a
  // subtree exhausted its share, or subtrees went unexamined); while
  // false the ranked answers are provably exact, pruning or not.
  bool search_truncated = false;
  double SearchPruningRatio() const {
    double skipped =
        static_cast<double>(search_bound_pruned + search_roots_pruned);
    double considered = skipped + static_cast<double>(search_expansions);
    return considered == 0 ? 0.0 : skipped / considered;
  }

  // busy/elapsed, clamped finite and to [0, threads_used]: a trivial
  // query's elapsed time underflows toward zero, and the raw ratio then
  // leaks inf/nan into --stats output and bench JSON.
  static double PhaseSpeedup(double busy_millis, double elapsed_millis,
                             size_t threads) {
    if (!(elapsed_millis > 1e-6) || !(busy_millis >= 0)) return 1.0;
    double s = busy_millis / elapsed_millis;
    if (!std::isfinite(s)) return 1.0;
    double cap = threads == 0 ? 1.0 : static_cast<double>(threads);
    return std::min(s, cap);
  }
  double ClusteringSpeedup() const {
    return PhaseSpeedup(clustering_busy_millis, clustering_millis,
                        threads_used);
  }
  double SearchSpeedup() const {
    return PhaseSpeedup(search_busy_millis, search_millis, threads_used);
  }

  // The query's span trace; non-null only when ObsOptions::trace was
  // set. Shared so copies of the stats stay cheap.
  std::shared_ptr<const QueryTrace> trace;

  // The query's assembled profile; non-null only when
  // ObsOptions::profile was set. Also retained by the engine's
  // ProfileLog (its id() is the /debug/profile retention id).
  std::shared_ptr<const QueryProfile> profile;
};

// The end-to-end Sama query processor (§5): preprocessing → clustering
// → search over a pre-built PathIndex. Stateless across queries apart
// from the shared dictionary, which grows as query constants are
// interned.
class SamaEngine {
 public:
  // All pointers are borrowed and must outlive the engine; `thesaurus`
  // may be null to disable semantic matching.
  // Construction also installs the query-side caches (options.cache)
  // on `index` — note that a second engine constructed over the SAME
  // index reconfigures those shared index caches with ITS options.
  SamaEngine(const DataGraph* graph, const PathIndex* index,
             const Thesaurus* thesaurus, EngineOptions options = {});

  // Runs a parsed SPARQL query; `k` overrides options.search.k when
  // non-zero, else the query's LIMIT applies, else the option default.
  Result<std::vector<Answer>> ExecuteSparql(const SparqlQuery& query,
                                            size_t k = 0,
                                            QueryStats* stats = nullptr) const;

  // Runs an already-built query graph. The query graph must have been
  // built over this engine's shared dictionary (see BuildQueryGraph).
  Result<std::vector<Answer>> Execute(const QueryGraph& query, size_t k,
                                      QueryStats* stats = nullptr) const;

  // Builds a query graph sharing the data graph's dictionary.
  QueryGraph BuildQueryGraph(const std::vector<Triple>& patterns) const {
    return QueryGraph::FromPatterns(patterns, graph_->shared_dict());
  }

  // The scatter half of sharded execution (DESIGN.md §14): runs ONLY
  // the clustering phase of Execute over this engine's index — same
  // update lock, caches, degraded-read policy and stats attribution —
  // and returns the per-query-path clusters sorted (λ asc, PathId
  // asc). Cluster path ids are LOCAL to this engine's index; the
  // sharded coordinator rewrites them to the global id space before
  // merging. Plain queries should keep using Execute.
  Result<std::vector<Cluster>> ClusterQuery(const QueryGraph& query,
                                            QueryStats* stats = nullptr) const;

  const EngineOptions& options() const { return options_; }
  EngineOptions& mutable_options() { return options_; }
  const DataGraph& graph() const { return *graph_; }
  const PathIndex& index() const { return *index_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

  // Threads executing each query: pool workers + the calling thread.
  size_t threads_used() const {
    return pool_ == nullptr ? 1 : pool_->worker_count() + 1;
  }

  // Drops every query-side cache entry (engine-owned memos AND the
  // index's caches) without resizing them — cold-cache experiments.
  void DropQueryCaches() const;

  // ---------------- Durable live updates (DESIGN.md §12) -------------
  //
  // Turns on the WAL-backed mutation path. `graph` and `index` must be
  // the same objects the engine was constructed over (the const
  // pointers gate queries; these mutable ones gate writes). Opens the
  // WAL, then replays every record past the index's checkpoint LSN with
  // idempotent redo — after any crash the reconstructed state answers
  // queries byte-identically to a fresh offline build over the same
  // logical triple set. Call before serving: the update state is shared
  // by engine copies made AFTER this call.
  Status EnableUpdates(DataGraph* graph, PathIndex* index,
                       UpdateOptions options = {});
  bool updates_enabled() const { return updates_ != nullptr; }
  // Whether the update path fsyncs at all (UpdateOptions::durable);
  // false when updates are disabled. The server reports this in acks.
  bool updates_durable() const;

  // Applies one mutation: journal → fsync (unless deferred) → apply to
  // graph + index under the exclusive update lock (queries take the
  // lock shared, so an update orders strictly against them). Returns
  // the update's LSN; once returned with durable semantics the update
  // survives any crash. Duplicate inserts and absent deletes are
  // journalled no-ops. Const because it mutates the shared update
  // state, not the engine value (same precedent as the query caches) —
  // the server holds the engine const.
  Result<uint64_t> ApplyUpdate(const TripleUpdate& update) const;
  // Traced variant: records wal.append / wal.fsync / wal.apply (and
  // wal.checkpoint when one triggers) spans into `trace`, parented
  // under `parent_span` — the server's request span, so a propagated
  // trace shows where an update's time went. Null trace = untraced.
  Result<uint64_t> ApplyUpdate(const TripleUpdate& update, QueryTrace* trace,
                               uint64_t parent_span) const;
  Result<uint64_t> InsertTriple(const Triple& triple) const;
  Result<uint64_t> DeleteTriple(const Triple& triple) const;

  // Fsyncs every journalled-but-unsynced record (deferred-durability
  // updates). The server calls this before acknowledging SHUTDOWN so an
  // acked update is never lost.
  Status FlushUpdates() const;

  // Checkpoints the index (stores + metadata, recording the WAL
  // position) and truncates obsolete WAL segments.
  Status CheckpointUpdates() const;

  // LSN of the last applied update; 0 before any. Also the position a
  // crash-free reopen would NOT need to replay past.
  uint64_t last_update_lsn() const;

  // Span trace of the EnableUpdates recovery (wal.recovery/wal.replay);
  // null before EnableUpdates.
  std::shared_ptr<const QueryTrace> recovery_trace() const;

  // Every failpoint the update/checkpoint/recovery path passes through
  // (WAL points included) — the crash-at-every-point test matrix.
  static std::vector<std::string> UpdateCrashPoints();

  // The slow-query log, when ObsOptions::slow_query_millis > 0; null
  // otherwise. Shared across the engine copies ExecuteSparql makes.
  const SlowQueryLog* slow_query_log() const { return slow_log_.get(); }

  // The retained-profile ring, when ObsOptions::profile is set; null
  // otherwise. Shared across the engine copies ExecuteSparql makes.
  const ProfileLog* profile_log() const { return profile_log_.get(); }

 private:
  struct UpdateState;  // Defined in engine.cc (owns the Wal).

  const DataGraph* graph_;
  const PathIndex* index_;
  const Thesaurus* thesaurus_;
  EngineOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  // Registry instruments resolved once at construction (obs.metrics);
  // null when metrics are off. Incomplete here; defined in engine.cc.
  std::shared_ptr<EngineInstruments> instruments_;
  std::shared_ptr<SlowQueryLog> slow_log_;
  std::shared_ptr<ProfileLog> profile_log_;
  // Engine-owned cross-query memos, shared by the engine copies
  // ExecuteSparql makes (hence shared_ptr).
  std::shared_ptr<ShardedLruCache<uint64_t, LabelMatch>> label_cache_;
  std::shared_ptr<AlignmentMemo> alignment_memo_;
  // The thesaurus content identity the label cache's entries were
  // computed under; a mismatch at query time (the thesaurus was
  // mutated) clears the cache. The alignment memo embeds the identity
  // in its keys and needs no such check.
  std::shared_ptr<std::atomic<uint64_t>> label_cache_identity_;
  // Live-update state (WAL + mutable graph/index + the update lock);
  // null until EnableUpdates. Shared by engine copies so one lock
  // orders updates against every copy's queries.
  std::shared_ptr<UpdateState> updates_;
};

}  // namespace sama

#endif  // SAMA_CORE_ENGINE_H_

#ifndef SAMA_CORE_ENGINE_H_
#define SAMA_CORE_ENGINE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/clustering.h"
#include "core/forest_search.h"
#include "core/intersection_graph.h"
#include "core/score_params.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {

struct EngineOptions {
  ScoreParams params;
  ClusteringOptions clustering;
  ForestSearchOptions search;
  // ExecuteSparql deduplicates answers on the SELECT variables
  // (projection semantics); Execute on a raw QueryGraph never does.
  bool dedup_select_bindings = true;
  // Threads used for intra-query parallelism (candidate scoring and
  // per-cluster forest search). 0 = hardware concurrency; 1 =
  // sequential. Answers are bit-identical for every value — the knob
  // only trades wall-clock time. Read at engine construction (the
  // worker pool is built once and shared across queries).
  size_t num_threads = 1;
  // Read-failure policy. The default (false) degrades gracefully:
  // candidates whose pages are corrupt or unreadable are skipped and
  // counted in QueryStats, and top-k runs over the surviving paths —
  // still deterministically. strict_io instead fails the query on the
  // first damaged read. Overrides the same fields in `clustering`.
  bool strict_io = false;
  // Bounded retries (with backoff) for transient kIoError reads before
  // a candidate is skipped or, under strict_io, the query fails.
  size_t max_io_retries = 2;
};

// Per-query timing/size breakdown matching the paper's phases (§5).
struct QueryStats {
  double preprocess_millis = 0;  // PQ + intersection query graph.
  double clustering_millis = 0;
  double search_millis = 0;
  double total_millis = 0;
  size_t num_query_paths = 0;
  size_t num_candidate_paths = 0;  // I: paths retrieved by the index.
  size_t num_answers = 0;

  // Parallel execution: threads available to the query (1 =
  // sequential) and, per parallel phase, the summed time all threads
  // spent inside the phase's work items. busy / elapsed estimates the
  // phase's effective speedup; ~1.0 means the phase ran serially.
  size_t threads_used = 1;
  double clustering_busy_millis = 0;
  double search_busy_millis = 0;

  // Degraded-read accounting (EngineOptions::strict_io == false):
  // candidates dropped because their pages were corrupt or unreadable,
  // and transient-read retries that were attempted. Both stay 0 on a
  // healthy index.
  uint64_t corrupt_records_skipped = 0;
  uint64_t io_retries = 0;
  double ClusteringSpeedup() const {
    return clustering_millis > 0 ? clustering_busy_millis / clustering_millis
                                 : 1.0;
  }
  double SearchSpeedup() const {
    return search_millis > 0 ? search_busy_millis / search_millis : 1.0;
  }
};

// The end-to-end Sama query processor (§5): preprocessing → clustering
// → search over a pre-built PathIndex. Stateless across queries apart
// from the shared dictionary, which grows as query constants are
// interned.
class SamaEngine {
 public:
  // All pointers are borrowed and must outlive the engine; `thesaurus`
  // may be null to disable semantic matching.
  SamaEngine(const DataGraph* graph, const PathIndex* index,
             const Thesaurus* thesaurus, EngineOptions options = {})
      : graph_(graph),
        index_(index),
        thesaurus_(thesaurus),
        options_(options) {
    size_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                              : options.num_threads;
    // The calling thread participates in every parallel section, so a
    // request for N threads needs N-1 pool workers. The pool is shared
    // (engine copies in ExecuteSparql reuse it) and lives for the
    // engine's lifetime, not per query.
    if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);
  }

  // Runs a parsed SPARQL query; `k` overrides options.search.k when
  // non-zero, else the query's LIMIT applies, else the option default.
  Result<std::vector<Answer>> ExecuteSparql(const SparqlQuery& query,
                                            size_t k = 0,
                                            QueryStats* stats = nullptr) const;

  // Runs an already-built query graph. The query graph must have been
  // built over this engine's shared dictionary (see BuildQueryGraph).
  Result<std::vector<Answer>> Execute(const QueryGraph& query, size_t k,
                                      QueryStats* stats = nullptr) const;

  // Builds a query graph sharing the data graph's dictionary.
  QueryGraph BuildQueryGraph(const std::vector<Triple>& patterns) const {
    return QueryGraph::FromPatterns(patterns, graph_->shared_dict());
  }

  const EngineOptions& options() const { return options_; }
  EngineOptions& mutable_options() { return options_; }
  const DataGraph& graph() const { return *graph_; }
  const PathIndex& index() const { return *index_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

  // Threads executing each query: pool workers + the calling thread.
  size_t threads_used() const {
    return pool_ == nullptr ? 1 : pool_->worker_count() + 1;
  }

 private:
  const DataGraph* graph_;
  const PathIndex* index_;
  const Thesaurus* thesaurus_;
  EngineOptions options_;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace sama

#endif  // SAMA_CORE_ENGINE_H_

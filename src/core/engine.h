#ifndef SAMA_CORE_ENGINE_H_
#define SAMA_CORE_ENGINE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/clustering.h"
#include "core/forest_search.h"
#include "core/intersection_graph.h"
#include "core/score_params.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {

struct EngineOptions {
  ScoreParams params;
  ClusteringOptions clustering;
  ForestSearchOptions search;
  // ExecuteSparql deduplicates answers on the SELECT variables
  // (projection semantics); Execute on a raw QueryGraph never does.
  bool dedup_select_bindings = true;
};

// Per-query timing/size breakdown matching the paper's phases (§5).
struct QueryStats {
  double preprocess_millis = 0;  // PQ + intersection query graph.
  double clustering_millis = 0;
  double search_millis = 0;
  double total_millis = 0;
  size_t num_query_paths = 0;
  size_t num_candidate_paths = 0;  // I: paths retrieved by the index.
  size_t num_answers = 0;
};

// The end-to-end Sama query processor (§5): preprocessing → clustering
// → search over a pre-built PathIndex. Stateless across queries apart
// from the shared dictionary, which grows as query constants are
// interned.
class SamaEngine {
 public:
  // All pointers are borrowed and must outlive the engine; `thesaurus`
  // may be null to disable semantic matching.
  SamaEngine(const DataGraph* graph, const PathIndex* index,
             const Thesaurus* thesaurus, EngineOptions options = {})
      : graph_(graph),
        index_(index),
        thesaurus_(thesaurus),
        options_(options) {}

  // Runs a parsed SPARQL query; `k` overrides options.search.k when
  // non-zero, else the query's LIMIT applies, else the option default.
  Result<std::vector<Answer>> ExecuteSparql(const SparqlQuery& query,
                                            size_t k = 0,
                                            QueryStats* stats = nullptr) const;

  // Runs an already-built query graph. The query graph must have been
  // built over this engine's shared dictionary (see BuildQueryGraph).
  Result<std::vector<Answer>> Execute(const QueryGraph& query, size_t k,
                                      QueryStats* stats = nullptr) const;

  // Builds a query graph sharing the data graph's dictionary.
  QueryGraph BuildQueryGraph(const std::vector<Triple>& patterns) const {
    return QueryGraph::FromPatterns(patterns, graph_->shared_dict());
  }

  const EngineOptions& options() const { return options_; }
  EngineOptions& mutable_options() { return options_; }
  const DataGraph& graph() const { return *graph_; }
  const PathIndex& index() const { return *index_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

 private:
  const DataGraph* graph_;
  const PathIndex* index_;
  const Thesaurus* thesaurus_;
  EngineOptions options_;
};

}  // namespace sama

#endif  // SAMA_CORE_ENGINE_H_

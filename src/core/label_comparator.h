#ifndef SAMA_CORE_LABEL_COMPARATOR_H_
#define SAMA_CORE_LABEL_COMPARATOR_H_

#include <cstdint>
#include <unordered_map>

#include "rdf/dictionary.h"
#include "text/thesaurus.h"

namespace sama {

// How a data label relates to a query label during alignment.
enum class LabelMatch : uint8_t {
  kExact = 0,    // Identical term (or case-normalised equal): cost 0.
  kVariable,     // Query side is a variable: substitution φ, cost 0.
  kSynonym,      // Thesaurus-related: a label modification ε×, cost 0
                 // (ω(ε×)=0 per the Theorem-1 proof).
  kMismatch,     // Unrelated constants: node cost a / edge cost c.
};

// Compares data-side and query-side labels living in one shared
// TermDictionary. Thesaurus checks go through DisplayLabel() and are
// memoised per label pair, so repeated alignments stay O(1) per
// element.
class LabelComparator {
 public:
  // Both pointers are borrowed. `thesaurus` may be null (no semantic
  // matching).
  LabelComparator(const TermDictionary* dict, const Thesaurus* thesaurus)
      : dict_(dict), thesaurus_(thesaurus) {}

  LabelMatch Compare(TermId data_label, TermId query_label) const {
    if (data_label == query_label) return LabelMatch::kExact;
    const Term& q = dict_->term(query_label);
    if (q.is_variable()) return LabelMatch::kVariable;
    uint64_t key = (static_cast<uint64_t>(data_label) << 32) | query_label;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    LabelMatch m = CompareSlow(dict_->term(data_label), q);
    cache_.emplace(key, m);
    return m;
  }

  const TermDictionary* dict() const { return dict_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

 private:
  LabelMatch CompareSlow(const Term& data, const Term& query) const;

  const TermDictionary* dict_;
  const Thesaurus* thesaurus_;
  mutable std::unordered_map<uint64_t, LabelMatch> cache_;
};

}  // namespace sama

#endif  // SAMA_CORE_LABEL_COMPARATOR_H_

#ifndef SAMA_CORE_LABEL_COMPARATOR_H_
#define SAMA_CORE_LABEL_COMPARATOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/sharded_cache.h"
#include "rdf/dictionary.h"
#include "text/thesaurus.h"

namespace sama {

// How a data label relates to a query label during alignment.
enum class LabelMatch : uint8_t {
  kExact = 0,    // Identical term (or case-normalised equal): cost 0.
  kVariable,     // Query side is a variable: substitution φ, cost 0.
  kSynonym,      // Thesaurus-related: a label modification ε×, cost 0
                 // (ω(ε×)=0 per the Theorem-1 proof).
  kMismatch,     // Unrelated constants: node cost a / edge cost c.
};

// Compares data-side and query-side labels living in one shared
// TermDictionary. Thesaurus checks go through DisplayLabel() and are
// memoised per label pair, so repeated alignments stay O(1) per
// element.
class LabelComparator {
 public:
  // All pointers are borrowed. `thesaurus` may be null (no semantic
  // matching). `shared_cache` (optional) is a cross-comparator,
  // cross-query memo of match results: valid only while every user
  // shares the same dictionary and thesaurus content — the engine owns
  // one per (store, thesaurus) pair and drops it when either changes.
  LabelComparator(const TermDictionary* dict, const Thesaurus* thesaurus,
                  ShardedLruCache<uint64_t, LabelMatch>* shared_cache = nullptr)
      : dict_(dict), thesaurus_(thesaurus), shared_cache_(shared_cache) {}

  // Per-query attribution sinks (both optional, borrowed): shared-cache
  // traffic from this comparator lands in `label_stats`, thesaurus
  // relatedness-cache traffic in `thesaurus_stats`. Comparators are
  // chunk-local, so plain non-atomic counters suffice.
  void SetStatsSinks(CacheCounters* label_stats,
                     CacheCounters* thesaurus_stats) {
    label_stats_ = label_stats;
    thesaurus_stats_ = thesaurus_stats;
  }

  LabelMatch Compare(TermId data_label, TermId query_label) const {
    if (data_label == query_label) return LabelMatch::kExact;
    const Term& q = dict_->term(query_label);
    if (q.is_variable()) return LabelMatch::kVariable;
    uint64_t key = (static_cast<uint64_t>(data_label) << 32) | query_label;
    // Local map first (no locks), then the shared sharded cache.
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    LabelMatch m;
    if (shared_cache_ != nullptr && shared_cache_->Get(key, &m, label_stats_)) {
      cache_.emplace(key, m);
      return m;
    }
    m = CompareSlow(dict_->term(data_label), q);
    cache_.emplace(key, m);
    if (shared_cache_ != nullptr) shared_cache_->Put(key, m, label_stats_);
    return m;
  }

  const TermDictionary* dict() const { return dict_; }
  const Thesaurus* thesaurus() const { return thesaurus_; }

 private:
  LabelMatch CompareSlow(const Term& data, const Term& query) const;

  const TermDictionary* dict_;
  const Thesaurus* thesaurus_;
  ShardedLruCache<uint64_t, LabelMatch>* shared_cache_;
  CacheCounters* label_stats_ = nullptr;
  CacheCounters* thesaurus_stats_ = nullptr;
  mutable std::unordered_map<uint64_t, LabelMatch> cache_;
};

}  // namespace sama

#endif  // SAMA_CORE_LABEL_COMPARATOR_H_

#ifndef SAMA_CORE_FOREST_SEARCH_H_
#define SAMA_CORE_FOREST_SEARCH_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/clustering.h"
#include "core/intersection_graph.h"
#include "core/score_params.h"
#include "query/query_graph.h"

namespace sama {

// One generated answer: a combination of one scored path per
// (non-empty) cluster, with the full score decomposition
// score = Λ + Ψ (§4.1) plus the penalty for query paths whose cluster
// was empty.
struct Answer {
  // One entry per non-empty cluster, parallel to `query_path_index`.
  std::vector<ScoredPath> parts;
  std::vector<size_t> query_path_index;

  double lambda_total = 0;   // Λ(a, Q) + empty-cluster penalty.
  double psi_total = 0;      // Ψ(a, Q).
  double score = 0;          // lambda_total + psi_total.
  Substitution binding;      // Merged φ (first binding wins on conflict).
  bool consistent = true;    // No variable bound to two values.

  // Canonical enumeration rank: the candidate index chosen at each
  // join position, in join order. Equal scores are ordered by this key
  // everywhere (the k cut, dedup winners, the sharded gather), which
  // makes the ranked list a pure function of the clusters — independent
  // of wave scheduling, budget shares, retry rounds, thread count and
  // of how roots are sliced across shards.
  std::vector<uint32_t> enum_key;

  // The answer's subgraph as triples (s, p, o) of dictionary terms,
  // deduplicated — τ(φ(Q)) materialised.
  std::vector<Triple> ToTriples(const TermDictionary& dict) const;

  // The bound values of `vars` (names without '?'); unbound variables
  // yield empty-string literals. Used to compare answers across
  // systems.
  std::vector<Term> BindingTuple(const std::vector<std::string>& vars) const;
};

// A monotonically tightening global score bound shared by the searches
// of one scatter-gather query (the cross-shard k-th-score exchange of
// DESIGN.md §14). Each shard Offers its local k-th best score at wave
// boundaries; Load returns the tightest score published so far.
// Lower-is-better scores make this a CAS-min over the positive-double
// range. A bound instance belongs to exactly ONE query execution —
// reusing it across queries (or across the retry rounds of unrelated
// requests) would leak a stale threshold into searches it was never
// admissible for, so ShardedEngine constructs a fresh instance per
// Execute call.
class SharedScoreBound {
 public:
  SharedScoreBound() = default;
  SharedScoreBound(const SharedScoreBound&) = delete;
  SharedScoreBound& operator=(const SharedScoreBound&) = delete;

  // Publishes `score` if it is tighter (smaller) than every score
  // published so far. NaN offers are ignored.
  void Offer(double score) {
    if (std::isnan(score)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (score < cur &&
           !value_.compare_exchange_weak(cur, score,
                                         std::memory_order_relaxed)) {
    }
  }

  // The tightest published score; +inf before the first Offer.
  double Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{std::numeric_limits<double>::infinity()};
};

struct ForestSearchOptions {
  // Number of answers to produce; 0 = every combination the expansion
  // budget reaches (the paper's "without imposing the number k").
  size_t k = 10;
  // Reject combinations whose variable bindings conflict. Off by
  // default: the paper's approximation keeps such combinations and lets
  // the conformity term Ψ rank them below conforming ones (the dashed
  // forest edges of Figure 4).
  bool require_consistent_bindings = false;
  // Require χ(pi, pj) > 0 for every intersection-query-graph edge whose
  // clusters are both non-empty — the paths of a solution must connect
  // the way the query's paths do ("the intersection query graph allows
  // us to verify efficiently if they form a solution", §5). A dashed
  // Figure-4 edge (ψ < 1) still connects; a pair sharing no node does
  // not. On by default.
  bool require_connected = true;
  // Skip query paths with empty clusters, charging the cost of deleting
  // the whole path (a per node, c per edge). When false, one empty
  // cluster means no answers.
  bool allow_partial = true;
  // Optional predicate over the merged bindings; answers failing it are
  // not kept (SPARQL FILTER support). Null = keep everything.
  std::function<bool(const Substitution&)> binding_filter;
  // When non-empty, answers are deduplicated on the binding tuple of
  // these variables (SPARQL projection semantics): for each distinct
  // tuple only the best-scored combination is kept. ExecuteSparql sets
  // this to the SELECT variables.
  std::vector<std::string> dedup_vars;
  // Budget on branch-and-bound steps. Within the budget the returned
  // top-k ranking is provably exact; once it is exhausted the search
  // returns the best combinations found so far (the paper's own search
  // likewise generates the top-k heuristically, §5).
  size_t max_expansions = 50000;
  // Absolute steady-clock deadline for the anytime search; the epoch
  // default means no deadline. Past the deadline the scheduler stops
  // starting waves, running subtrees abort at their next periodic
  // check, and the best answers found so far are returned with
  // ForestSearchStats::truncated set — exactly the expansion-budget
  // anytime semantics, driven by time. The serving layer derives this
  // from the per-request deadline_ms. Unlike every other option a
  // deadline makes answers scheduling-dependent (how far the search
  // got before the clock ran out), so the determinism contract only
  // covers searches without one.
  std::chrono::steady_clock::time_point deadline{};
  // Cross-search k-th-score exchange for sharded scatter-gather
  // (DESIGN.md §14). When non-null, every pruning threshold also
  // consults shared_bound->Load(). All pruning is strictly-worse-loses
  // (`bound > θ`), so equal-score answers — whose tie-break the
  // canonical enumeration key settles in the merge — are never cut by
  // a bound that a later-enumerating shard published first. The
  // search publishes its own local k-th best into the bound at wave
  // boundaries. Admissible under any publication interleaving (every
  // published score is a real answer set's k-th, hence >= the final
  // global k-th), so completed searches return byte-identical answers
  // with or without the exchange; only the pruning COUNTERS are
  // timing-dependent. The bound must be fresh per logical query: see
  // SharedScoreBound.
  SharedScoreBound* shared_bound = nullptr;
  // When set, only first-join-position candidates passing this
  // predicate root subtrees; every other join position still sees the
  // full candidate lists. This is the scatter half of sharded search:
  // each shard explores exactly the combinations anchored at the paths
  // it owns, so the shard result sets partition the single-engine
  // enumeration and the gather merge can replay it exactly. Null =
  // all roots.
  std::function<bool(const ScoredPath&)> root_filter;
};

// Observability counters for one ForestSearch call, reported through
// QueryStats and sama_cli --stats. Pruning counters stay zero when
// params.prune_search is off (the exhaustive ablation).
struct ForestSearchStats {
  // Branch-and-bound steps actually taken (root placements + candidate
  // placements), i.e. the part of options.max_expansions consumed.
  uint64_t expansions = 0;
  // Candidate placements skipped because the admissible Λ + Ψ lower
  // bound of their prefix could not beat the current k-th best score.
  uint64_t bound_pruned = 0;
  // Whole root subtrees skipped by the wave scheduler's λ-only root
  // bound (subtree roots are λ-sorted, so one failure ends the search).
  uint64_t roots_pruned = 0;
  // The subset of bound_pruned + roots_pruned where the prune fired
  // only because of ForestSearchOptions::shared_bound — i.e. the local
  // threshold alone would have kept searching. This is the measurable
  // win of the cross-shard bound exchange. Timing-dependent when
  // shards publish concurrently (the answers are not).
  uint64_t shared_bound_pruned = 0;
  // True when any part of the combination space went unexamined for
  // budget reasons: a subtree exhausted its per-subtree share, or the
  // wave loop stopped with subtrees left. While false, the returned
  // top-k is provably exact (pruning only skips bound-refuted work);
  // once true the answers are the anytime best-so-far. Note truncation
  // can occur even when expansions < max_expansions, because the budget
  // is split into per-subtree shares.
  bool truncated = false;

  // Skipped work over total work considered — 0 when nothing was
  // pruned (e.g. prune_search off).
  double PruningRatio() const {
    double skipped = static_cast<double>(bound_pruned + roots_pruned);
    double considered = skipped + static_cast<double>(expansions);
    return considered == 0 ? 0.0 : skipped / considered;
  }
};

// The deterministic join plan ForestSearch derives from a cluster set:
// which clusters are active (non-empty, in cluster order) and the
// greedy join order over them (smallest active cluster first, then
// most-IG-connected, size tie-break). A pure function of the cluster
// SIZES and the intersection query graph, so every party that sees the
// same clusters computes the same plan — ForestSearch uses it
// internally, and the sharded gather (DESIGN.md §14) uses it to
// reconstruct the enumeration-order merge key of an answer: the
// sequence over join positions of that position's (λ, PathId).
struct ForestJoinPlan {
  // Indices into the cluster vector, cluster order, non-empty only.
  std::vector<size_t> active;
  // Join order: positions into `active`. Answer::parts is indexed by
  // active position, so parts[order[pos]] is the path placed at join
  // position `pos`.
  std::vector<size_t> order;
};
ForestJoinPlan PlanForestJoin(const IntersectionQueryGraph& ig,
                              const std::vector<Cluster>& clusters);

// The Search step (§5): organises the clusters' paths into a forest
// whose edges carry ⟨(qi,qj):[ψ]⟩ labels and generates the top-k
// solutions best-first by Σλ with exact rescoring by Λ + Ψ. Worst case
// O(h·I²) in the paper's notation. Answers come back sorted by
// ascending score (most relevant first).
//
// The combination space is decomposed into one independent subtree per
// first-join-position candidate; subtrees are searched in fixed-size
// waves, concurrently when `pool` is non-null. Each subtree is a pure
// function of (subtree index, inherited threshold, budget share), and
// wave results merge in subtree order with stable score/answer-id
// tie-breaks, so the answers are bit-identical for every thread count
// — see DESIGN.md "Threading model". `busy_nanos`, when non-null,
// accumulates the time threads spent searching.
// `fstats`, when non-null, receives the expansion/pruning counters of
// this call (overwritten, not accumulated).
Result<std::vector<Answer>> ForestSearch(
    const QueryGraph& query, const IntersectionQueryGraph& ig,
    const std::vector<Cluster>& clusters, const ScoreParams& params,
    const ForestSearchOptions& options, ThreadPool* pool = nullptr,
    std::atomic<uint64_t>* busy_nanos = nullptr,
    ForestSearchStats* fstats = nullptr);

}  // namespace sama

#endif  // SAMA_CORE_FOREST_SEARCH_H_

#include "core/explain.h"

#include <cstdio>
#include <map>

namespace sama {
namespace {

std::string Format(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

}  // namespace

std::string DescribeTransformation(const Transformation& tau,
                                   const OpWeights& weights) {
  if (tau.empty()) return "exact (substitution only)";
  // Group identical operations: "2×node-insert + edge-delete".
  std::map<std::string, size_t> counts;
  for (BasicOp op : tau.ops()) ++counts[BasicOpName(op)];
  std::string out;
  for (const auto& [name, count] : counts) {
    if (!out.empty()) out += " + ";
    if (count > 1) out += std::to_string(count) + "×";
    out += name;
  }
  out += " (cost " + Format("%.2f", tau.Cost(weights)) + ")";
  return out;
}

std::string ExplainAnswer(const QueryGraph& query, const Answer& answer,
                          const ScoreParams& params) {
  const TermDictionary& dict = query.dict();
  std::string out = "answer score " + Format("%.2f", answer.score) +
                    " = lambda " + Format("%.2f", answer.lambda_total) +
                    " + psi " + Format("%.2f", answer.psi_total);
  if (!answer.consistent) out += "  [relaxed bindings]";
  out += "\n";

  for (size_t i = 0; i < answer.parts.size(); ++i) {
    const ScoredPath& part = answer.parts[i];
    size_t qi = i < answer.query_path_index.size()
                    ? answer.query_path_index[i]
                    : i;
    if (qi < query.paths().size()) {
      out += "q" + std::to_string(qi + 1) + ": " +
             query.paths()[qi].ToString(dict) + "\n";
    }
    out += "    aligned to " + part.path.ToString(dict) + "\n";
    out += "    lambda " + Format("%.2f", part.lambda()) + ", " +
           DescribeTransformation(part.alignment.tau, params.weights) +
           "\n";
    // Bindings this path contributed, sorted for stable output.
    std::map<std::string, std::string> bindings;
    for (const auto& [var, value] : part.alignment.phi.bindings()) {
      bindings[var] = value.DisplayLabel();
    }
    for (const auto& [var, value] : bindings) {
      out += "    ?" + var + " := " + value + "\n";
    }
  }

  // Unmatched query paths (empty clusters) show up as missing indices.
  std::vector<bool> covered(query.paths().size(), false);
  for (size_t qi : answer.query_path_index) {
    if (qi < covered.size()) covered[qi] = true;
  }
  for (size_t qi = 0; qi < covered.size(); ++qi) {
    if (covered[qi]) continue;
    out += "q" + std::to_string(qi + 1) + ": " +
           query.paths()[qi].ToString(dict) +
           "\n    unmatched (whole-path deletion penalty applied)\n";
  }
  return out;
}

}  // namespace sama

#ifndef SAMA_CORE_SCORE_H_
#define SAMA_CORE_SCORE_H_

#include <cstddef>
#include <vector>

#include "core/alignment.h"
#include "core/score_params.h"
#include "graph/path.h"

namespace sama {

// χ (§4.1): the set of nodes common to two paths. For data paths the
// comparison is on concrete graph node ids; for query paths (whose
// Path::nodes are query-graph-local) it is likewise on node ids within
// the one query graph. Returns the common ids.
std::vector<NodeId> ChiCommonNodes(const Path& a, const Path& b);

// |χ| without materialising the set.
size_t ChiSize(const Path& a, const Path& b);

// The conformity penalty ψ(qi, qj, pi, pj) exactly as printed in §4.1:
//   e · |χ(qi,qj)| / |χ(pi,pj)|   when |χ(pi,pj)| > 0
//   e · |χ(qi,qj)|                when |χ(pi,pj)| = 0
// Lower is better; a pair of answer paths that keeps all of the query
// pair's intersections costs e·1, losing intersections costs more.
// When the query paths share nothing (|χ(qi,qj)| = 0) the pair
// contributes 0.
double PsiCost(size_t chi_q, size_t chi_p, const ScoreParams& params);

// The conformity ratio |χ(pi,pj)| / |χ(qi,qj)| displayed on forest
// edges (Figure 4; edge (p7,p1) is labelled 0.5, edge (p10,p1) is 1).
// Defined as 1 when |χ(qi,qj)| = 0.
double ConformityRatio(size_t chi_q, size_t chi_p);

// Λ(a, Q): the sum of λ(p, q) over the per-path alignments of an
// answer.
double LambdaTotal(const std::vector<PathAlignment>& alignments);

}  // namespace sama

#endif  // SAMA_CORE_SCORE_H_

#ifndef SAMA_CORE_ALIGNMENT_H_
#define SAMA_CORE_ALIGNMENT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "common/sharded_cache.h"
#include "core/label_comparator.h"
#include "core/score_params.h"
#include "graph/path.h"
#include "query/transformation.h"

namespace sama {

// The result of aligning a data path p against a query path q
// (Definition 6): the substitution φ on q's variables, the
// transformation τ (recorded basic operations), the Equation-1
// counters, and the resulting quality cost λ(p, q).
struct PathAlignment {
  double lambda = 0.0;
  Substitution phi;
  Transformation tau;
  // True when the scan stopped early because λ exceeded the caller's
  // cutoff; lambda then holds the partial (≥ cutoff) value and
  // phi/tau/counters cover only the scanned portion.
  bool aborted = false;

  // Equation 1 counters.
  size_t nodes_of_p_not_in_q = 0;    // n̄N: label mismatches on nodes.
  size_t edges_of_p_not_in_q = 0;    // n̄E: label mismatches on edges.
  size_t nodes_inserted_in_q = 0;    // n↑N: nodes τ inserts into q.
  size_t edges_inserted_in_q = 0;    // n↑E: edges τ inserts into q.
  // Elements τ deletes from q when q is longer than p; priced with the
  // deletion weights a and c (Theorem-1 proof: ω(ε‾N)=a, ω(ε‾E)=c).
  size_t nodes_deleted_from_q = 0;
  size_t edges_deleted_from_q = 0;

  // True when every aligned position matched exactly, via a variable,
  // or via a synonym — i.e. τ is empty and p is an exact answer path.
  bool exact() const { return lambda == 0.0; }
};

// Aligns p (a data path, constants only) against q (a query path) by a
// single backward scan from the sinks toward the sources — "contrary to
// the direction of the edges" (§4.3) — inserting, deleting and
// relabelling greedily. Runs in O(|p| + |q|), the paper's linearity
// claim, because each step consumes at least one element of p or q.
//
// Greedy rule: positions are consumed in (edge, node) pairs after the
// sink nodes are matched; when the remaining halves have equal length
// the pair is matched in place (mismatches priced a/c); when p is
// longer a non-matching pair of p is inserted into q (b+d); when q is
// longer a non-matching pair of q is deleted (a+c).
// `lambda_cutoff` enables the early-exit optimisation (a §7
// score-computation improvement): the scan aborts as soon as the
// accumulated cost reaches the cutoff, which spares full alignments
// for candidates that can no longer make a cluster's top-n. Pass
// +infinity (the default) for an exact result.
PathAlignment AlignPaths(
    const Path& p, const Path& q, const LabelComparator& cmp,
    const ScoreParams& params,
    double lambda_cutoff = std::numeric_limits<double>::infinity());

// Exact minimum-cost alignment (AlignmentMode::kOptimalDp): a dynamic
// program over (edge, node) pair units chooses the cheapest
// match/insert/delete sequence, then the traceback records τ and binds
// φ. Variable binding conflicts are charged after the fact (the DP
// treats variables as free), so λ can exceed the DP optimum by the
// conflict costs — exactly as in the greedy scanner. O(|p|·|q|).
PathAlignment AlignPathsOptimal(const Path& p, const Path& q,
                                const LabelComparator& cmp,
                                const ScoreParams& params);

// Dispatches on params.alignment_mode (the cutoff only applies to the
// greedy scanner; the DP always computes exactly).
PathAlignment Align(
    const Path& p, const Path& q, const LabelComparator& cmp,
    const ScoreParams& params,
    double lambda_cutoff = std::numeric_limits<double>::infinity());

// A thread-safe, LRU-bounded memo over Align(). Entries are keyed by
// (data path id, alignment mode, Equation-1 weights, thesaurus content
// identity, the query path's full label sequence), so a hit is
// guaranteed to describe the same computation — path ids are immutable
// once stored, TermIds never change meaning within a store's
// dictionary, and a mutated thesaurus gets a fresh identity.
//
// Cutoff handling preserves the early-exit semantics exactly
// (alignment cost accrues monotonically, so a scan under cutoff c
// aborts iff the full λ ≥ c):
//   * a memoized FULL alignment answers ANY cutoff — served verbatim
//     when λ < cutoff, reported as aborted when λ ≥ cutoff;
//   * a memoized ABORTED alignment (partial λ ≥ the cutoff it ran
//     under) answers any cutoff ≤ its partial λ (the new scan would
//     abort too); stricter asks recompute and overwrite the entry.
// Callers discard aborted results without reading φ/τ (see ScoreChunk),
// which is why serving a full alignment with the aborted flag set is
// indistinguishable from the direct computation.
class AlignmentMemo {
 public:
  // The key material every candidate aligned against the same query
  // path shares: alignment mode, Equation-1 weights, thesaurus
  // identity and q's full label sequence. Serializing it is the
  // expensive part of a lookup, so ScoreChunk builds one QueryKey per
  // cluster and reuses it across all candidates — the per-candidate
  // cost is then an 8-byte id append.
  class QueryKey {
   public:
    QueryKey() = default;

   private:
    friend class AlignmentMemo;
    std::string bytes_;
  };
  static QueryKey MakeQueryKey(const Path& q, const LabelComparator& cmp,
                               const ScoreParams& params);

  // `capacity` entries across `shards` shards (see ShardedLruCache).
  explicit AlignmentMemo(size_t capacity, size_t shards = 8);

  // Align(p, q, cmp, params, lambda_cutoff) through the memo.
  // `data_path_id` must uniquely identify p's label content within the
  // store this memo serves (PathStore ids qualify). `query_key` must
  // have been built from this call's (q, cmp, params). `stats`
  // (optional) receives this call's memo traffic — the per-query
  // attribution sink.
  PathAlignment AlignCached(
      const QueryKey& query_key, uint64_t data_path_id, const Path& p,
      const Path& q, const LabelComparator& cmp, const ScoreParams& params,
      double lambda_cutoff = std::numeric_limits<double>::infinity(),
      CacheCounters* stats = nullptr);

  // Convenience overload for one-off lookups (tests, benchmarks).
  PathAlignment AlignCached(
      uint64_t data_path_id, const Path& p, const Path& q,
      const LabelComparator& cmp, const ScoreParams& params,
      double lambda_cutoff = std::numeric_limits<double>::infinity()) {
    return AlignCached(MakeQueryKey(q, cmp, params), data_path_id, p, q, cmp,
                       params, lambda_cutoff);
  }

  // Drops every entry (index rebuilds / store swaps).
  void Clear();
  CacheCounters counters() const;
  size_t size() const { return cache_.size(); }
  // Memo hits that skipped the LRU touch under write contention.
  uint64_t lock_skips() const { return cache_.lru_lock_skips(); }

 private:
  struct Entry {
    PathAlignment alignment;
    // The cutoff the memoized run used; +infinity for full alignments.
    double cutoff_used = std::numeric_limits<double>::infinity();
  };

  ShardedLruCache<std::string, Entry> cache_;
};

}  // namespace sama

#endif  // SAMA_CORE_ALIGNMENT_H_

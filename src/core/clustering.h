#ifndef SAMA_CORE_CLUSTERING_H_
#define SAMA_CORE_CLUSTERING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/alignment.h"
#include "core/score_params.h"
#include "index/path_index.h"
#include "obs/trace.h"
#include "query/query_graph.h"
#include "text/thesaurus.h"

namespace sama {

// One candidate data path inside a cluster, with its alignment against
// the cluster's query path.
struct ScoredPath {
  PathId id = 0;
  Path path;
  PathAlignment alignment;

  double lambda() const { return alignment.lambda; }
};

// The cluster built for one query path (§5 Clustering, Figure 3):
// candidate data paths ordered by alignment quality, best (lowest λ)
// first.
struct Cluster {
  size_t query_path_index = 0;
  std::vector<ScoredPath> paths;

  bool empty() const { return paths.empty(); }
  size_t size() const { return paths.size(); }
};

// Optional engine-owned, cross-query caches threaded into candidate
// scoring (all borrowed; null members simply disable that layer).
// Every cache is a pure optimisation: BuildClusters output is
// bit-identical with and without them (tests/core/engine_cache_test.cc
// locks this in).
struct QueryCaches {
  // Cross-chunk memo of label-pair match results (each chunk still
  // keeps its local lock-free memo in front).
  ShardedLruCache<uint64_t, LabelMatch>* label_matches = nullptr;
  // Cross-query memo of full path alignments; see AlignmentMemo.
  AlignmentMemo* alignment_memo = nullptr;
};

// Per-query attribution sinks for every cache layer clustering touches.
// Scoring chunks tally into chunk-local CacheCounters and merge here at
// chunk end, so one query's QueryStats reflect exactly its own traffic
// even with other queries running concurrently on the same engine.
struct QueryCacheDeltas {
  AtomicCacheCounters postings;       // Inverted-index semantic memos.
  AtomicCacheCounters lookups;        // Candidate-list memo.
  AtomicCacheCounters records;        // GetPath record cache.
  AtomicCacheCounters label_matches;  // Shared label-match cache.
  AtomicCacheCounters alignments;     // AlignmentMemo.
  AtomicCacheCounters thesaurus;      // AreRelated relatedness memo.
};

// Per-query observability context threaded into BuildClusters (all
// borrowed, all optional — a null/default QueryObs is free). Purely
// observational: clustering output is bit-identical with or without it.
struct QueryObs {
  QueryCacheDeltas* deltas = nullptr;
  // When set, each scoring chunk records a span parented (explicitly —
  // thread-locals do not follow work onto pool workers) under
  // `parent_span`, typically the engine's clustering-phase span.
  QueryTrace* trace = nullptr;
  uint64_t parent_span = 0;
};

struct ClusteringOptions {
  // Keep only the best n candidates per cluster after scoring
  // (0 = keep all). The λ order is unaffected.
  size_t max_candidates_per_cluster = 0;
  // Worker threads scoring candidates concurrently when no shared pool
  // is passed to BuildClusters (a transient pool is spun up). 1 =
  // sequential. Results are identical regardless of the thread count.
  size_t num_threads = 1;
  // With max_candidates_per_cluster set, abort alignments as soon as
  // their λ can no longer make the cluster's top n (the §7
  // score-computation improvement). Results are identical; only wasted
  // work is skipped. Ablated in bench_ablation.
  bool early_exit_alignment = true;
  // Read-failure policy. strict_io propagates the first corrupt or
  // unreadable candidate as an error; otherwise (the default) the
  // candidate is skipped and counted, and clustering proceeds over the
  // surviving paths. Skipping is per-candidate, so degraded results
  // stay deterministic across thread counts.
  bool strict_io = false;
  // Transient-read retries (kIoError only) before a candidate is
  // skipped or, under strict_io, the error propagates. Each retry
  // backs off briefly.
  size_t max_io_retries = 2;
};

// Builds one cluster per query path: candidates are retrieved from the
// index by sink label (or, for variable sinks, by the last constant of
// the path), aligned, scored with λ, and sorted best-first. The same
// data path may appear in several clusters with different scores
// (Figure 3's p1 in cl1 [0] and cl2 [1.5]).
//
// When `pool` is non-null (or options.num_threads > 1), candidate
// scoring fans out over fixed-size candidate chunks; chunk outputs are
// merged in candidate order and re-sorted by (λ, id), so the returned
// clusters are bit-identical to the sequential run — see DESIGN.md
// "Threading model". `busy_nanos`, when non-null, accumulates the time
// threads spent scoring (for QueryStats speedup reporting).
//
// `corrupt_skipped` and `io_retried`, when non-null, accumulate the
// candidates dropped for corruption/unreadability and the transient
// read retries performed (see ClusteringOptions::strict_io) — they
// feed QueryStats.
Result<std::vector<Cluster>> BuildClusters(
    const QueryGraph& query, const PathIndex& index,
    const Thesaurus* thesaurus, const ScoreParams& params,
    const ClusteringOptions& options, ThreadPool* pool = nullptr,
    std::atomic<uint64_t>* busy_nanos = nullptr,
    std::atomic<uint64_t>* corrupt_skipped = nullptr,
    std::atomic<uint64_t>* io_retried = nullptr,
    const QueryCaches* caches = nullptr, const QueryObs* obs = nullptr);

}  // namespace sama

#endif  // SAMA_CORE_CLUSTERING_H_

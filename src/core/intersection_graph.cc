#include "core/intersection_graph.h"

#include "core/score.h"

namespace sama {

IntersectionQueryGraph::IntersectionQueryGraph(const QueryGraph& query) {
  const std::vector<Path>& paths = query.paths();
  n_ = paths.size();
  adjacency_.resize(n_);
  chi_.assign(n_ * n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      std::vector<NodeId> shared = ChiCommonNodes(paths[i], paths[j]);
      if (shared.empty()) continue;
      chi_[i * n_ + j] = shared.size();
      chi_[j * n_ + i] = shared.size();
      adjacency_[i].push_back(j);
      adjacency_[j].push_back(i);
      edges_.push_back(SharedEdge{i, j, std::move(shared)});
    }
  }
}

size_t IntersectionQueryGraph::ChiQ(size_t qi, size_t qj) const {
  if (qi >= n_ || qj >= n_) return 0;
  return chi_[qi * n_ + qj];
}

}  // namespace sama

#include "core/forest_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/score.h"

namespace sama {

std::vector<Triple> Answer::ToTriples(const TermDictionary& dict) const {
  std::vector<Triple> out;
  for (const ScoredPath& part : parts) {
    const Path& p = part.path;
    for (size_t i = 0; i + 1 < p.node_labels.size(); ++i) {
      out.push_back(Triple{dict.term(p.node_labels[i]),
                           dict.term(p.edge_labels[i]),
                           dict.term(p.node_labels[i + 1])});
    }
  }
  std::sort(out.begin(), out.end(), [](const Triple& a, const Triple& b) {
    if (!(a.subject == b.subject)) return a.subject < b.subject;
    if (!(a.predicate == b.predicate)) return a.predicate < b.predicate;
    return a.object < b.object;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Term> Answer::BindingTuple(
    const std::vector<std::string>& vars) const {
  std::vector<Term> out;
  out.reserve(vars.size());
  for (const std::string& var : vars) {
    const Term* bound = binding.Lookup(var);
    out.push_back(bound != nullptr ? *bound : Term::Literal(""));
  }
  return out;
}

namespace {

// Subtrees searched per scheduling wave when the join has more than one
// level. The wave size is part of the determinism contract — it is
// fixed by the query shape, NEVER by the thread count: every subtree in
// a wave inherits the same pruning threshold, and the threshold/budget
// only advance between waves, so any interleaving of a wave's subtrees
// produces the same answers. Single-level joins (m == 1) use waves of
// one, which recovers the classic candidate-by-candidate scan with a
// threshold refresh after every emit.
constexpr size_t kWaveSize = 16;

}  // namespace

ForestJoinPlan PlanForestJoin(const IntersectionQueryGraph& ig,
                              const std::vector<Cluster>& clusters) {
  ForestJoinPlan plan;
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (!clusters[i].empty()) plan.active.push_back(i);
  }
  const size_t m = plan.active.size();
  if (m == 0) return plan;
  auto size_of = [&](size_t i) { return clusters[plan.active[i]].size(); };
  auto qp_of = [&](size_t i) { return clusters[plan.active[i]].query_path_index; };
  std::vector<bool> placed(m, false);
  size_t first = 0;
  for (size_t i = 1; i < m; ++i) {
    if (size_of(i) < size_of(first)) first = i;
  }
  plan.order.push_back(first);
  placed[first] = true;
  while (plan.order.size() < m) {
    size_t best = m;
    size_t best_links = 0;
    for (size_t i = 0; i < m; ++i) {
      if (placed[i]) continue;
      size_t links = 0;
      for (size_t j : plan.order) {
        if (ig.ChiQ(qp_of(i), qp_of(j)) > 0) ++links;
      }
      if (best == m || links > best_links ||
          (links == best_links && size_of(i) < size_of(best))) {
        best = i;
        best_links = links;
      }
    }
    plan.order.push_back(best);
    placed[best] = true;
  }
  return plan;
}

Result<std::vector<Answer>> ForestSearch(const QueryGraph& query,
                                         const IntersectionQueryGraph& ig,
                                         const std::vector<Cluster>& clusters,
                                         const ScoreParams& params,
                                         const ForestSearchOptions& options,
                                         ThreadPool* pool,
                                         std::atomic<uint64_t>* busy_nanos,
                                         ForestSearchStats* fstats) {
  if (fstats != nullptr) *fstats = ForestSearchStats{};
  // Per-request deadline (ForestSearchOptions::deadline): checked at
  // wave boundaries and, inside a subtree, every 64 expansions. With no
  // deadline set the clock is never read, so deadline support cannot
  // perturb the deterministic path.
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point{};
  auto past_deadline = [&options, has_deadline]() {
    return has_deadline && std::chrono::steady_clock::now() >= options.deadline;
  };
  // Score-bounded pruning (params.prune_search) may ONLY skip work the
  // bounds prove irrelevant: with it off, the same enumeration runs
  // exhaustively and must produce byte-identical answers (ranked list
  // AND tie-breaks) — tests/core/forest_pruning_test.cc compares both
  // modes candidate for candidate.
  const bool prune = params.prune_search;
  // Split clusters into the active (non-empty) ones we combine over and
  // the empty ones we charge a deletion penalty for.
  std::vector<const Cluster*> active;
  std::vector<size_t> active_query_path;
  double empty_penalty = 0;
  std::vector<size_t> empty_query_paths;
  for (const Cluster& c : clusters) {
    if (!c.empty()) {
      active.push_back(&c);
      active_query_path.push_back(c.query_path_index);
      continue;
    }
    if (!options.allow_partial) return std::vector<Answer>{};
    const Path& q = query.paths()[c.query_path_index];
    empty_penalty +=
        params.a() * static_cast<double>(q.node_labels.size()) +
        params.c() * static_cast<double>(q.edge_labels.size());
    empty_query_paths.push_back(c.query_path_index);
  }
  if (active.empty()) return std::vector<Answer>{};

  // Ψ contribution of IG edges touching an empty cluster: the answer
  // pair shares nothing, costing e·|χ(qi,qj)| (the |χ(pi,pj)|=0 branch).
  double empty_psi = 0;
  for (const IntersectionQueryGraph::SharedEdge& edge : ig.edges()) {
    bool i_empty =
        std::find(empty_query_paths.begin(), empty_query_paths.end(),
                  edge.qi) != empty_query_paths.end();
    bool j_empty =
        std::find(empty_query_paths.begin(), empty_query_paths.end(),
                  edge.qj) != empty_query_paths.end();
    if (i_empty || j_empty) {
      empty_psi += PsiCost(edge.shared.size(), 0, params);
    }
  }
  const double fixed_cost = empty_penalty + empty_psi;

  // Join order over the active clusters: start from the smallest,
  // then greedily add the cluster most connected (via IG edges) to the
  // ones already ordered, so connectivity violations surface at depth 2
  // instead of depth m. Shared with the sharded gather via
  // PlanForestJoin (its `active` equals ours by construction: both
  // collect non-empty clusters in cluster order).
  const size_t m = active.size();
  const std::vector<size_t> order =
      PlanForestJoin(ig, clusters).order;  // Positions into `active`.

  auto candidate = [&](size_t pos, size_t idx) -> const ScoredPath& {
    return active[order[pos]]->paths[idx];
  };

  // ---- Shared read-only precomputation. Everything from here to the
  // subtree searcher is immutable during the search, so concurrent
  // subtrees capture it freely.

  // Sorted node-id sets per candidate, so χ(pi, pj) inside the search
  // loop is a linear merge without sorting or allocation.
  std::vector<std::vector<std::vector<NodeId>>> sorted_nodes(m);
  for (size_t pos = 0; pos < m; ++pos) {
    sorted_nodes[pos].reserve(active[order[pos]]->size());
    for (const ScoredPath& sp : active[order[pos]]->paths) {
      std::vector<NodeId> nodes = sp.path.nodes;
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      sorted_nodes[pos].push_back(std::move(nodes));
    }
  }
  // node id -> candidate indices per join position (ascending, i.e. in
  // λ order), used to enumerate only candidates that can connect to the
  // prefix when require_connected is set.
  std::vector<std::unordered_map<NodeId, std::vector<size_t>>>
      candidates_by_node(m);
  for (size_t pos = 0; pos < m; ++pos) {
    for (size_t idx = 0; idx < sorted_nodes[pos].size(); ++idx) {
      for (NodeId n : sorted_nodes[pos][idx]) {
        candidates_by_node[pos][n].push_back(idx);
      }
    }
  }

  auto chi_between = [&](size_t pos_a, size_t idx_a, size_t pos_b,
                         size_t idx_b) {
    const std::vector<NodeId>& a = sorted_nodes[pos_a][idx_a];
    const std::vector<NodeId>& b = sorted_nodes[pos_b][idx_b];
    size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    return common;
  };

  // Longest candidate path per join position — bounds the achievable
  // χ(pi, pj), hence the minimum ψ of a pending edge.
  std::vector<size_t> max_len(m, 1);
  for (size_t pos = 0; pos < m; ++pos) {
    for (const ScoredPath& sp : active[order[pos]]->paths) {
      max_len[pos] = std::max(max_len[pos], sp.path.length());
    }
  }

  // IG edges translated to join positions. An edge "completes" at its
  // later position.
  struct JoinEdge {
    size_t earlier;
    size_t chi_q;
  };
  std::vector<std::vector<JoinEdge>> edges_completing_at(m);
  std::vector<double> psi_lb_suffix(m + 1, 0.0);
  std::vector<double> psi_lb_at(m, 0.0);
  {
    // Map query-path index -> join position.
    std::vector<size_t> position_of_query_path(query.paths().size(), m);
    for (size_t pos = 0; pos < m; ++pos) {
      position_of_query_path[active_query_path[order[pos]]] = pos;
    }
    std::vector<double>& lb_at = psi_lb_at;
    for (const IntersectionQueryGraph::SharedEdge& edge : ig.edges()) {
      size_t a = position_of_query_path[edge.qi];
      size_t b = position_of_query_path[edge.qj];
      if (a >= m || b >= m) continue;  // Touches an empty cluster.
      if (a > b) std::swap(a, b);
      edges_completing_at[b].push_back(JoinEdge{a, edge.shared.size()});
      size_t max_chi = std::min(max_len[a], max_len[b]);
      lb_at[b] += params.e * static_cast<double>(edge.shared.size()) /
                  static_cast<double>(max_chi);
    }
    for (size_t pos = m; pos-- > 0;) {
      psi_lb_suffix[pos] = psi_lb_suffix[pos + 1] + lb_at[pos];
    }
  }

  // Admissible λ remainder: Σ of each unplaced cluster's best λ.
  std::vector<double> min_lambda_suffix(m + 1, 0.0);
  for (size_t pos = m; pos-- > 0;) {
    min_lambda_suffix[pos] =
        min_lambda_suffix[pos + 1] + candidate(pos, 0).lambda();
  }

  auto tuple_key = [&](const Answer& answer) {
    std::string key;
    for (const Term& t : answer.BindingTuple(options.dedup_vars)) {
      key += t.ToString();
      key += '\x1f';
    }
    return key;
  };

  // Inserts `answer` into a list sorted by (score, enumeration key)
  // with dedup-on-tuple and top-k truncation. Because equal scores are
  // ordered by the canonical enumeration key — NOT by insertion order —
  // the resulting list is the same no matter how emission was scheduled
  // across waves, retry rounds or shards: it is always "the k best by
  // (score, enum_key) among everything ever inserted".
  auto rank_before = [](const Answer& a, const Answer& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.enum_key < b.enum_key;
  };
  auto keep = [&](std::vector<Answer>&& batch, std::vector<Answer>* into,
                  std::unordered_map<std::string, double>* best_by_tuple) {
    for (Answer& answer : batch) {
      if (!options.dedup_vars.empty()) {
        std::string key = tuple_key(answer);
        auto [it, inserted] = best_by_tuple->emplace(key, answer.score);
        if (!inserted) {
          if (answer.score > it->second) continue;  // Kept one is better.
          // Locate the previously kept answer for this tuple; on a
          // score tie the canonically earlier enumeration wins, so the
          // dedup representative is schedule-independent too.
          auto r = into->begin();
          for (; r != into->end(); ++r) {
            if (r->score == it->second && tuple_key(*r) == key) break;
          }
          if (r != into->end()) {
            if (answer.score == r->score && !(answer.enum_key < r->enum_key)) {
              continue;
            }
            into->erase(r);
          }
          it->second = answer.score;
        }
      }
      auto at = std::upper_bound(into->begin(), into->end(), answer,
                                 rank_before);
      into->insert(at, std::move(answer));
      if (options.k != 0 && into->size() > options.k) {
        if (!options.dedup_vars.empty()) {
          best_by_tuple->erase(tuple_key(into->back()));
        }
        into->pop_back();
      }
    }
  };

  // ---- The subtree searcher: a depth-first branch and bound with
  // candidate `root` fixed at join position 0. It is a pure function of
  // (root, inherited threshold, budget share) over the immutable
  // precomputation above — the determinism contract hangs on that
  // purity, because it makes results independent of WHICH thread runs
  // the subtree and WHEN. A prefix is pruned when its admissible lower
  // bound
  //   fixed_cost + Σλ(prefix) + Σ minλ(remaining)
  //   + exact ψ of edges inside the prefix + ψ lower bounds of pending
  //     edges
  // cannot beat min(inherited threshold, k-th locally kept answer), or
  // when the freshly placed candidate breaks connectivity/binding
  // requirements. Returns the expansions actually used (<= share).
  // ALL pruning is strictly-worse-loses (`bound > θ`, never `>=`): a
  // published threshold θ is the k-th best score of a real answer set,
  // so an answer with score > θ is provably outside the top-k, while
  // an equal-score tie must be emitted and settled by the canonical
  // enumeration key in `keep`. That strictness is what makes the tie
  // tail independent of wave scheduling, retry rounds and shard
  // slicing — byte-identity across all of them hangs on it.
  auto shared_threshold = [&options]() {
    return options.shared_bound == nullptr
               ? std::numeric_limits<double>::infinity()
               : options.shared_bound->Load();
  };

  auto search_subtree = [&](size_t root, double inherited_threshold,
                            size_t share, std::vector<Answer>* out,
                            size_t* pruned_out, size_t* shared_pruned_out,
                            bool* truncated_out) {
    std::vector<size_t> choice(m, 0);
    std::vector<double> psi_prefix(m + 1, 0.0);  // ψ of edges in prefix.
    std::vector<double> lambda_prefix(m + 1, 0.0);
    std::unordered_map<std::string, double> local_best;
    size_t used = 0;
    size_t pruned = 0;
    size_t shared_pruned = 0;
    bool out_of_budget = false;

    // The engine-local threshold (wave θ + the k-th locally kept
    // answer) and the shared cross-shard bound are kept separate so a
    // prune that only the shared bound justified can be attributed to
    // the bound exchange.
    auto local_threshold = [&]() {
      double local = (options.k != 0 && out->size() >= options.k)
                         ? out->back().score
                         : std::numeric_limits<double>::infinity();
      return std::min(inherited_threshold, local);
    };

    auto emit = [&](double lambda_sum, double psi_sum) {
      Answer answer;
      answer.lambda_total = empty_penalty + lambda_sum;
      answer.psi_total = empty_psi + psi_sum;
      answer.score = answer.lambda_total + answer.psi_total;
      answer.parts.resize(m);
      answer.query_path_index.resize(m);
      answer.enum_key.resize(m);
      for (size_t pos = 0; pos < m; ++pos) {
        // Restore the original cluster order in the answer.
        answer.parts[order[pos]] = candidate(pos, choice[pos]);
        answer.query_path_index[order[pos]] = active_query_path[order[pos]];
        answer.enum_key[pos] = static_cast<uint32_t>(choice[pos]);
      }
      // Merge φ best-alignment-first: when paths disagree on a shared
      // variable, the binding from the better-aligned (lower λ) path
      // wins.
      {
        std::vector<const ScoredPath*> by_lambda;
        by_lambda.reserve(answer.parts.size());
        for (const ScoredPath& part : answer.parts) {
          by_lambda.push_back(&part);
        }
        std::stable_sort(by_lambda.begin(), by_lambda.end(),
                         [](const ScoredPath* a, const ScoredPath* b) {
                           return a->lambda() < b->lambda();
                         });
        for (const ScoredPath* part : by_lambda) {
          if (!answer.binding.Merge(part->alignment.phi)) {
            answer.consistent = false;
          }
        }
      }
      if (options.require_consistent_bindings && !answer.consistent) return;
      if (options.binding_filter &&
          !options.binding_filter(answer.binding)) {
        return;
      }
      std::vector<Answer> one;
      one.push_back(std::move(answer));
      keep(std::move(one), out, &local_best);
    };

    // Recursive lambda over join positions 1..m (position 0 is fixed).
    auto descend = [&](auto&& self, size_t pos) -> void {
      if (out_of_budget) return;
      if (pos == m) {
        emit(lambda_prefix[m], psi_prefix[m]);
        return;
      }
      const std::vector<ScoredPath>& paths = active[order[pos]]->paths;
      // When this position must connect to already-placed paths, only
      // candidates sharing a node with EVERY one of them can be valid:
      // intersect, over the back edges, the union of candidate lists of
      // the anchor path's nodes. The result stays index-ascending, i.e.
      // λ-ordered.
      std::vector<size_t> narrowed;
      bool use_narrowed = false;
      if (options.require_connected && !edges_completing_at[pos].empty()) {
        use_narrowed = true;
        bool first_edge = true;
        for (const JoinEdge& back : edges_completing_at[pos]) {
          std::vector<size_t> sharing;
          for (NodeId n :
               sorted_nodes[back.earlier][choice[back.earlier]]) {
            auto it = candidates_by_node[pos].find(n);
            if (it == candidates_by_node[pos].end()) continue;
            sharing.insert(sharing.end(), it->second.begin(),
                           it->second.end());
          }
          std::sort(sharing.begin(), sharing.end());
          sharing.erase(std::unique(sharing.begin(), sharing.end()),
                        sharing.end());
          if (first_edge) {
            narrowed = std::move(sharing);
            first_edge = false;
          } else {
            std::vector<size_t> both;
            std::set_intersection(narrowed.begin(), narrowed.end(),
                                  sharing.begin(), sharing.end(),
                                  std::back_inserter(both));
            narrowed = std::move(both);
          }
          if (narrowed.empty()) break;
        }
      }
      const size_t candidate_count =
          use_narrowed ? narrowed.size() : paths.size();
      for (size_t pick = 0; pick < candidate_count; ++pick) {
        size_t idx = use_narrowed ? narrowed[pick] : pick;
        if (++used > share) {
          out_of_budget = true;
          return;
        }
        // Deadline poll, amortised so the clock read stays off the
        // per-expansion path. Aborting reuses the budget-exhaustion
        // path: the attempt's answers are held as anytime leftovers.
        if (has_deadline && (used & 63) == 0 && past_deadline()) {
          out_of_budget = true;
          return;
        }
        const ScoredPath& sp = paths[idx];
        // λ-only bound: candidates are sorted by λ, so once it fails no
        // later candidate at this position can succeed either.
        double lambda_sum = lambda_prefix[pos] + sp.lambda();
        double optimistic = fixed_cost + lambda_sum +
                            min_lambda_suffix[pos + 1] + psi_prefix[pos] +
                            psi_lb_suffix[pos];
        double th_local = local_threshold();
        if (prune && optimistic > std::min(th_local, shared_threshold())) {
          pruned += candidate_count - pick;
          if (optimistic <= th_local) shared_pruned += candidate_count - pick;
          break;
        }

        // Exact ψ of the edges this position completes, plus validity.
        double psi_here = 0;
        bool valid = true;
        for (const JoinEdge& edge : edges_completing_at[pos]) {
          size_t chi_p =
              chi_between(edge.earlier, choice[edge.earlier], pos, idx);
          if (chi_p == 0 && options.require_connected) {
            valid = false;
            break;
          }
          psi_here += PsiCost(edge.chi_q, chi_p, params);
        }
        if (valid && options.require_consistent_bindings) {
          for (size_t j = 0; j < pos; ++j) {
            if (!candidate(j, choice[j])
                     .alignment.phi.CompatibleWith(sp.alignment.phi)) {
              valid = false;
              break;
            }
          }
        }
        if (!valid) continue;
        double full_bound = optimistic + psi_here - psi_lb_at[pos];
        th_local = local_threshold();
        if (prune && full_bound > std::min(th_local, shared_threshold())) {
          ++pruned;
          if (full_bound <= th_local) ++shared_pruned;
          continue;
        }

        choice[pos] = idx;
        lambda_prefix[pos + 1] = lambda_sum;
        psi_prefix[pos + 1] = psi_prefix[pos] + psi_here;
        self(self, pos + 1);
        if (out_of_budget) return;
      }
    };

    // Place the root (one expansion, like any other candidate) and
    // recurse over the remaining positions.
    ++used;
    choice[0] = root;
    lambda_prefix[1] = candidate(0, root).lambda();
    psi_prefix[1] = 0.0;  // No edge completes at position 0.
    descend(descend, 1);
    *pruned_out = pruned;
    *shared_pruned_out = shared_pruned;
    *truncated_out = out_of_budget;
    return used;
  };

  // ---- Wave scheduler. Subtrees run in waves; between waves the
  // global top-k (hence the pruning threshold) and the deterministic
  // budget account advance. All scheduling decisions depend only on
  // query shape, options and previously merged results — never on the
  // thread count or timing.
  // The expansion budget is dealt out in rounds of per-subtree shares
  // with rollover and retry: each round slices the unspent budget
  // evenly over the subtrees still unfinished, so budget a subtree did
  // not use (or that a root-bound prune released) funds deeper shares
  // later. A subtree that exhausts its share is retried in a later
  // round once the share has grown past the one it was truncated at;
  // its best-so-far answers are held back — merged only if it never
  // completes — so a retry can never double-insert. This lets any
  // query whose TOTAL pruned work fits the budget run to completion
  // even when the work is concentrated in a few subtrees, where a
  // static budget/num_subtrees split would truncate them. All
  // scheduling state advances at wave boundaries from deterministic
  // quantities, never from thread count or timing.
  std::vector<Answer> results;
  std::unordered_map<std::string, double> best_by_tuple;
  const size_t num_subtrees = active[order[0]]->size();
  size_t total_used = 0;

  // Unfinished subtrees, always in ascending root index — which is
  // ascending root λ, the order the root bound needs. A root filter
  // (sharded scatter: this engine only owns a slice of the roots)
  // removes subtrees up front; the per-root bookkeeping arrays stay
  // indexed by global root index so shares and retries work unchanged.
  std::vector<size_t> queue;
  queue.reserve(num_subtrees);
  for (size_t i = 0; i < num_subtrees; ++i) {
    if (options.root_filter && !options.root_filter(candidate(0, i))) continue;
    queue.push_back(i);
  }
  // Per subtree: the share its last truncated attempt ran under (0 =
  // never truncated) and that attempt's answers.
  std::vector<size_t> truncated_at(num_subtrees, 0);
  std::vector<std::vector<Answer>> held(num_subtrees);

  bool deadline_hit = false;
  while (!queue.empty() && total_used < options.max_expansions &&
         !deadline_hit) {
    const size_t round_remaining = options.max_expansions - total_used;
    const size_t round_share = std::max<size_t>(
        64 * m, round_remaining / queue.size());
    // Retrying a subtree at a share no larger than the one that
    // truncated it would deterministically repeat the same attempt.
    std::vector<size_t> runnable;
    for (size_t id : queue) {
      if (truncated_at[id] < round_share) runnable.push_back(id);
    }
    if (runnable.empty()) break;

    std::vector<uint8_t> completed(num_subtrees, 0);
    size_t refuted_from = num_subtrees;  // Root-bound cut (λ suffix).
    bool refuted_by_shared = false;      // Cut owed to the shared bound.
    size_t next = 0;
    while (next < runnable.size() && total_used < options.max_expansions) {
      if (has_deadline && past_deadline()) {
        // Subtrees not yet attempted stay queued, so the search reports
        // truncation below exactly as budget exhaustion would.
        deadline_hit = true;
        break;
      }
      double theta_local = (options.k != 0 && results.size() >= options.k)
                               ? results.back().score
                               : std::numeric_limits<double>::infinity();
      double theta = std::min(theta_local, shared_threshold());
      // Shrink waves near the budget boundary so the total can NEVER
      // overshoot max_expansions: a multi-subtree wave only runs when
      // the remaining budget covers every share in full, and the final
      // single-subtree wave is clipped to what is left. (m == 1 always
      // uses waves of one, which refreshes the threshold after every
      // candidate exactly like the classic sequential scan.)
      const size_t remaining = options.max_expansions - total_used;
      size_t wave_size =
          m == 1 ? 1
                 : std::min(kWaveSize,
                            std::max<size_t>(1, remaining / round_share));
      const size_t wave_share =
          wave_size == 1 ? std::min(round_share, remaining) : round_share;
      // λ-only bound of a subtree's BEST completion; runnable roots are
      // in ascending-λ order, so the first root that fails refutes
      // every queued subtree from it onward (higher λ, same bound).
      std::vector<size_t> wave;
      while (wave.size() < wave_size && next < runnable.size()) {
        double optimistic = fixed_cost +
                            candidate(0, runnable[next]).lambda() +
                            min_lambda_suffix[1] + psi_lb_suffix[0];
        if (prune && optimistic > theta) {
          refuted_from = runnable[next];
          refuted_by_shared = optimistic <= theta_local;
          next = runnable.size();
          break;
        }
        wave.push_back(runnable[next++]);
      }
      if (wave.empty()) break;

      std::vector<std::vector<Answer>> wave_out(wave.size());
      std::vector<size_t> wave_used(wave.size(), 0);
      std::vector<size_t> wave_pruned(wave.size(), 0);
      std::vector<size_t> wave_shared_pruned(wave.size(), 0);
      std::vector<uint8_t> wave_truncated(wave.size(), 0);
      if (wave.size() == 1) {
        // Inline fast path (always taken for m == 1): no task handoff
        // for a single-subtree wave.
        bool t = false;
        wave_used[0] =
            search_subtree(wave[0], theta_local, wave_share, &wave_out[0],
                           &wave_pruned[0], &wave_shared_pruned[0], &t);
        wave_truncated[0] = t ? 1 : 0;
      } else {
        SAMA_RETURN_IF_ERROR(ParallelFor(
            pool, wave.size(),
            [&](size_t w) -> Status {
              bool t = false;
              wave_used[w] = search_subtree(
                  wave[w], theta_local, wave_share, &wave_out[w],
                  &wave_pruned[w], &wave_shared_pruned[w], &t);
              wave_truncated[w] = t ? 1 : 0;
              return Status::Ok();
            },
            busy_nanos));
      }

      // Deterministic merge: subtree order, then each subtree's
      // answers in its own emit order; `keep` resolves scores, dedup
      // and the k cut identically to a sequential insertion stream.
      for (size_t w = 0; w < wave.size(); ++w) {
        total_used += wave_used[w];
        if (fstats != nullptr) {
          fstats->bound_pruned += wave_pruned[w];
          fstats->shared_bound_pruned += wave_shared_pruned[w];
        }
        if (wave_truncated[w] != 0) {
          truncated_at[wave[w]] = wave_share;
          held[wave[w]] = std::move(wave_out[w]);
        } else {
          completed[wave[w]] = 1;
          held[wave[w]].clear();
          keep(std::move(wave_out[w]), &results, &best_by_tuple);
        }
      }
      // Wave boundary: publish this search's k-th best into the
      // cross-shard exchange so sibling shards can prune with it.
      if (options.shared_bound != nullptr && options.k != 0 &&
          results.size() >= options.k) {
        options.shared_bound->Offer(results.back().score);
      }
    }

    // Rebuild the queue: completed subtrees leave; refuted ones (root
    // bound > θ proves every answer in them, held ones included,
    // strictly worse than the k-th best) are dropped with their held
    // answers.
    std::vector<size_t> new_queue;
    for (size_t id : queue) {
      if (completed[id] != 0) continue;
      if (id >= refuted_from) {
        if (fstats != nullptr) {
          ++fstats->roots_pruned;
          if (refuted_by_shared) ++fstats->shared_bound_pruned;
        }
        held[id].clear();
        continue;
      }
      new_queue.push_back(id);
    }
    queue = std::move(new_queue);
  }

  // Anytime leftovers: subtrees that never completed contribute their
  // best truncated attempt, merged in λ order.
  const bool truncated = !queue.empty();
  for (size_t id : queue) {
    if (!held[id].empty()) keep(std::move(held[id]), &results, &best_by_tuple);
  }
  if (fstats != nullptr) {
    fstats->expansions = total_used;
    fstats->truncated = truncated;
  }
  // Final publish: after the held-answer merge the list can only have
  // tightened, and a sequentially executed sibling shard starts with
  // this search's final k-th instead of its last wave's.
  if (options.shared_bound != nullptr && options.k != 0 &&
      results.size() >= options.k) {
    options.shared_bound->Offer(results.back().score);
  }
  return results;
}

}  // namespace sama

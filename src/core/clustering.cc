#include "core/clustering.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>

namespace sama {
namespace {

// Candidate path ids for query path `q` (§5 Clustering): by sink label
// when the sink is a constant, by the last constant in the path when
// the sink is a variable, and — for the degenerate all-variable path —
// every stored path.
std::vector<PathId> Candidates(const QueryGraph& query, const Path& q,
                               const PathIndex& index,
                               const Thesaurus* thesaurus) {
  TermId sink = q.sink_label();
  const TermDictionary& dict = query.dict();
  if (!query.IsVariableLabel(sink)) {
    return index.PathsWithSinkMatching(dict.term(sink), thesaurus);
  }
  TermId last_constant = query.LastConstantFromSink(q);
  if (last_constant != kInvalidTermId) {
    return index.PathsContaining(dict.term(last_constant), thesaurus);
  }
  // All-variable query path: every path is a candidate.
  std::vector<PathId> all(index.path_count());
  for (PathId i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

}  // namespace

namespace {

// Builds the cluster for query path `qi`. Thread-safe: every shared
// structure it touches (index postings, stores behind their own
// synchronisation-free read paths, the dictionary) is read-only during
// query processing; each worker uses its own LabelComparator because
// its memo cache mutates.
Status BuildOneCluster(const QueryGraph& query, size_t qi,
                       const PathIndex& index, const Thesaurus* thesaurus,
                       const ScoreParams& params,
                       const ClusteringOptions& options, Cluster* out) {
  LabelComparator cmp(&query.dict(), thesaurus);
  const Path& q = query.paths()[qi];
  out->query_path_index = qi;
  // With a top-n cap, track the n-th best λ seen so far; alignments
  // provably worse than it abort early (the small epsilon keeps
  // boundary ties completing, so results match the exact computation).
  const size_t cap = options.max_candidates_per_cluster;
  const bool early_exit = options.early_exit_alignment && cap != 0;
  double cutoff = std::numeric_limits<double>::infinity();
  std::priority_queue<double> kept_lambdas;  // Max-heap of the best n.
  for (PathId id : Candidates(query, q, index, thesaurus)) {
    ScoredPath sp;
    sp.id = id;
    SAMA_RETURN_IF_ERROR(index.GetPath(id, &sp.path));
    sp.alignment = Align(sp.path, q, cmp, params,
                         early_exit ? cutoff
                                    : std::numeric_limits<
                                          double>::infinity());
    if (sp.alignment.aborted) continue;  // Cannot make the top n.
    if (early_exit) {
      kept_lambdas.push(sp.alignment.lambda);
      if (kept_lambdas.size() > cap) kept_lambdas.pop();
      if (kept_lambdas.size() == cap) {
        cutoff = kept_lambdas.top() + 1e-9;
      }
    }
    out->paths.push_back(std::move(sp));
  }
  // Best alignment first (lowest λ); ties by path id for determinism.
  std::sort(out->paths.begin(), out->paths.end(),
            [](const ScoredPath& a, const ScoredPath& b) {
              if (a.lambda() != b.lambda()) return a.lambda() < b.lambda();
              return a.id < b.id;
            });
  if (options.max_candidates_per_cluster != 0 &&
      out->paths.size() > options.max_candidates_per_cluster) {
    out->paths.resize(options.max_candidates_per_cluster);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Cluster>> BuildClusters(const QueryGraph& query,
                                           const PathIndex& index,
                                           const Thesaurus* thesaurus,
                                           const ScoreParams& params,
                                           const ClusteringOptions& options) {
  const size_t n = query.paths().size();
  std::vector<Cluster> clusters(n);
  if (options.num_threads <= 1 || n <= 1) {
    for (size_t qi = 0; qi < n; ++qi) {
      SAMA_RETURN_IF_ERROR(BuildOneCluster(query, qi, index, thesaurus,
                                           params, options, &clusters[qi]));
    }
    return clusters;
  }
  // One worker per thread pulling cluster indices from a shared counter;
  // output slots are disjoint, so only the error status needs a lock.
  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  Status first_error;
  std::vector<std::thread> workers;
  size_t thread_count = std::min(options.num_threads, n);
  for (size_t t = 0; t < thread_count; ++t) {
    workers.emplace_back([&] {
      while (true) {
        size_t qi = next.fetch_add(1);
        if (qi >= n) break;
        Status s = BuildOneCluster(query, qi, index, thesaurus, params,
                                   options, &clusters[qi]);
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.ok()) first_error = s;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (!first_error.ok()) return first_error;
  return clusters;
}

}  // namespace sama

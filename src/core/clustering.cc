#include "core/clustering.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <queue>
#include <thread>

namespace sama {
namespace {

// Loads candidate `id` under the read-failure policy: transient
// kIoError reads are retried with a short backoff; a candidate that
// stays unreadable, or whose page fails its checksum, is either
// skipped (*skip = true, counted) or — under strict_io — propagated.
// kNotFound means the path was tombstoned between the index lookup and
// the read; that is not damage, so it is skipped silently in both
// policies.
Status LoadCandidate(const PathIndex& index, PathId id,
                     const ClusteringOptions& options, Path* out, bool* skip,
                     std::atomic<uint64_t>* corrupt_skipped,
                     std::atomic<uint64_t>* io_retried,
                     CacheCounters* record_stats) {
  *skip = false;
  Status s = index.GetPath(id, out, record_stats);
  for (size_t attempt = 0;
       s.code() == Status::Code::kIoError && attempt < options.max_io_retries;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
    if (io_retried != nullptr) {
      io_retried->fetch_add(1, std::memory_order_relaxed);
    }
    s = index.GetPath(id, out, record_stats);
  }
  if (s.ok()) return s;
  if (s.code() == Status::Code::kNotFound) {
    *skip = true;
    return Status::Ok();
  }
  bool damage = s.code() == Status::Code::kCorruption ||
                s.code() == Status::Code::kIoError;
  if (damage && !options.strict_io) {
    *skip = true;
    if (corrupt_skipped != nullptr) {
      corrupt_skipped->fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Ok();
  }
  return s;
}

// Candidate path ids for query path `q` (§5 Clustering): by sink label
// when the sink is a constant, by the last constant in the path when
// the sink is a variable, and — for the degenerate all-variable path —
// every stored path.
std::vector<PathId> Candidates(const QueryGraph& query, const Path& q,
                               const PathIndex& index,
                               const Thesaurus* thesaurus,
                               IndexCacheCounters* lookup_stats) {
  TermId sink = q.sink_label();
  const TermDictionary& dict = query.dict();
  if (!query.IsVariableLabel(sink)) {
    return index.PathsWithSinkMatching(dict.term(sink), thesaurus,
                                       lookup_stats);
  }
  TermId last_constant = query.LastConstantFromSink(q);
  if (last_constant != kInvalidTermId) {
    return index.PathsContaining(dict.term(last_constant), thesaurus,
                                 lookup_stats);
  }
  // All-variable query path: every path is a candidate.
  std::vector<PathId> all(index.path_count());
  for (PathId i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// Candidates per parallel work unit. Small enough that a handful of
// clusters still spreads across every core, large enough that the
// per-chunk LabelComparator memo cache amortises.
constexpr size_t kChunkSize = 128;

// One scoring work unit: candidates[begin, end) of one cluster.
struct ChunkWork {
  size_t cluster = 0;
  size_t begin = 0;
  size_t end = 0;
};

// Scores one candidate chunk. Thread-safe: every shared structure it
// touches (index postings, stores behind their own lock-free read
// paths, the dictionary) is read-only during query processing; each
// chunk uses its own LabelComparator because its memo cache mutates.
//
// The early-exit cutoff is chunk-local: an alignment aborts only when
// its λ provably cannot make the top `cap` of its own chunk — a subset
// of the top `cap` overall — so dropping it can never change the final
// cluster. The sequential path runs the whole cluster as one chunk and
// recovers the original global cutoff exactly.
Status ScoreChunk(const QueryGraph& query, const Path& q,
                  const std::vector<PathId>& candidates,
                  const ChunkWork& work, const PathIndex& index,
                  const Thesaurus* thesaurus, const ScoreParams& params,
                  const ClusteringOptions& options,
                  const QueryCaches* caches, const QueryObs* obs,
                  std::vector<ScoredPath>* out,
                  std::atomic<uint64_t>* corrupt_skipped,
                  std::atomic<uint64_t>* io_retried) {
  // Chunk span, parented explicitly under the clustering-phase span —
  // this code usually runs on a pool worker, where the caller's
  // thread-local current span is invisible.
  ObsSpan span;
  if (obs != nullptr && obs->trace != nullptr) {
    span = ObsSpan(obs->trace, "score_chunk", obs->parent_span);
  }
  // Chunk-local attribution counters: tallied without atomics during
  // the scan, merged into the query's deltas once at chunk end.
  QueryCacheDeltas* deltas = obs != nullptr ? obs->deltas : nullptr;
  CacheCounters local_records, local_labels, local_alignments,
      local_thesaurus;
  LabelComparator cmp(&query.dict(), thesaurus,
                      caches != nullptr ? caches->label_matches : nullptr);
  if (deltas != nullptr) {
    cmp.SetStatsSinks(&local_labels, &local_thesaurus);
  }
  AlignmentMemo* memo =
      caches != nullptr ? caches->alignment_memo : nullptr;
  // One key build per chunk; candidates only append their 8-byte id.
  AlignmentMemo::QueryKey memo_key;
  if (memo != nullptr) {
    memo_key = AlignmentMemo::MakeQueryKey(q, cmp, params);
  }
  const size_t cap = options.max_candidates_per_cluster;
  const bool early_exit = options.early_exit_alignment && cap != 0;
  // Track the cap-th best λ seen so far in this chunk; alignments
  // provably worse abort early (the small epsilon keeps boundary ties
  // completing, so results match the exact computation).
  double cutoff = std::numeric_limits<double>::infinity();
  std::priority_queue<double> kept_lambdas;  // Max-heap of the best n.
  for (size_t c = work.begin; c < work.end; ++c) {
    ScoredPath sp;
    sp.id = candidates[c];
    bool skip = false;
    SAMA_RETURN_IF_ERROR(
        LoadCandidate(index, sp.id, options, &sp.path, &skip, corrupt_skipped,
                      io_retried, deltas != nullptr ? &local_records : nullptr));
    if (skip) continue;
    double effective_cutoff =
        early_exit ? cutoff : std::numeric_limits<double>::infinity();
    sp.alignment =
        memo != nullptr
            ? memo->AlignCached(memo_key, sp.id, sp.path, q, cmp, params,
                                effective_cutoff,
                                deltas != nullptr ? &local_alignments : nullptr)
            : Align(sp.path, q, cmp, params, effective_cutoff);
    if (sp.alignment.aborted) continue;  // Cannot make the top n.
    if (early_exit) {
      kept_lambdas.push(sp.alignment.lambda);
      if (kept_lambdas.size() > cap) kept_lambdas.pop();
      if (kept_lambdas.size() == cap) {
        cutoff = kept_lambdas.top() + 1e-9;
      }
    }
    out->push_back(std::move(sp));
  }
  if (deltas != nullptr) {
    deltas->records.Merge(local_records);
    deltas->label_matches.Merge(local_labels);
    deltas->alignments.Merge(local_alignments);
    deltas->thesaurus.Merge(local_thesaurus);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Cluster>> BuildClusters(const QueryGraph& query,
                                           const PathIndex& index,
                                           const Thesaurus* thesaurus,
                                           const ScoreParams& params,
                                           const ClusteringOptions& options,
                                           ThreadPool* pool,
                                           std::atomic<uint64_t>* busy_nanos,
                                           std::atomic<uint64_t>* corrupt_skipped,
                                           std::atomic<uint64_t>* io_retried,
                                           const QueryCaches* caches,
                                           const QueryObs* obs) {
  // Honour the legacy knob: callers that ask for num_threads without
  // providing a shared pool get a transient one.
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr && options.num_threads > 1) {
    transient = std::make_unique<ThreadPool>(options.num_threads - 1);
    pool = transient.get();
  }
  const bool parallel = pool != nullptr && pool->worker_count() > 0;

  const size_t n = query.paths().size();
  std::vector<Cluster> clusters(n);

  // Phase 1 (sequential, index lookups only): candidate lists + the
  // chunked work plan. Sequential runs use one whole-cluster chunk so
  // the early-exit cutoff spans the full candidate list, as before.
  // Phase-1 lookups run on the calling thread, so a plain local sink
  // suffices; merged into the query's deltas after the loop.
  QueryCacheDeltas* deltas = obs != nullptr ? obs->deltas : nullptr;
  IndexCacheCounters lookup_stats;
  std::vector<std::vector<PathId>> candidates(n);
  std::vector<ChunkWork> plan;
  std::vector<size_t> first_chunk_of(n + 1, 0);
  for (size_t qi = 0; qi < n; ++qi) {
    clusters[qi].query_path_index = qi;
    candidates[qi] =
        Candidates(query, query.paths()[qi], index, thesaurus,
                   deltas != nullptr ? &lookup_stats : nullptr);
    size_t total = candidates[qi].size();
    size_t step = parallel ? kChunkSize : (total == 0 ? 1 : total);
    for (size_t begin = 0; begin < total; begin += step) {
      plan.push_back({qi, begin, std::min(begin + step, total)});
    }
    first_chunk_of[qi + 1] = plan.size();
  }
  if (deltas != nullptr) {
    deltas->postings.Merge(lookup_stats.postings);
    deltas->lookups.Merge(lookup_stats.lookups);
  }

  // Phase 2: score every chunk, possibly across threads. Output slots
  // are disjoint; ParallelFor reports the lowest failing chunk.
  std::vector<std::vector<ScoredPath>> chunk_out(plan.size());
  SAMA_RETURN_IF_ERROR(ParallelFor(
      parallel ? pool : nullptr, plan.size(),
      [&](size_t w) -> Status {
        const ChunkWork& work = plan[w];
        return ScoreChunk(query, query.paths()[work.cluster],
                          candidates[work.cluster], work, index, thesaurus,
                          params, options, caches, obs, &chunk_out[w],
                          corrupt_skipped, io_retried);
      },
      busy_nanos));

  // Phase 3 (sequential): stitch chunks back in candidate order, then
  // impose the canonical cluster order — best alignment first (lowest
  // λ), ties by path id. Chunk boundaries and thread interleaving are
  // invisible after this sort, which is what makes parallel clustering
  // bit-identical to sequential.
  for (size_t qi = 0; qi < n; ++qi) {
    Cluster& cluster = clusters[qi];
    for (size_t w = first_chunk_of[qi]; w < first_chunk_of[qi + 1]; ++w) {
      for (ScoredPath& sp : chunk_out[w]) {
        cluster.paths.push_back(std::move(sp));
      }
    }
    std::sort(cluster.paths.begin(), cluster.paths.end(),
              [](const ScoredPath& a, const ScoredPath& b) {
                if (a.lambda() != b.lambda()) return a.lambda() < b.lambda();
                return a.id < b.id;
              });
    if (options.max_candidates_per_cluster != 0 &&
        cluster.paths.size() > options.max_candidates_per_cluster) {
      cluster.paths.resize(options.max_candidates_per_cluster);
    }
  }
  return clusters;
}

}  // namespace sama

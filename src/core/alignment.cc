#include "core/alignment.h"

namespace sama {
namespace {

// Mutable alignment state shared by the matching helpers. Also reused
// by the DP traceback replay (AlignPathsOptimal), which drives the same
// bookkeeping through the *ForReplay hooks.
class Aligner {
 public:
  Aligner(const Path& p, const Path& q, const LabelComparator& cmp,
          const ScoreParams& params, double lambda_cutoff)
      : p_(p), q_(q), cmp_(cmp), w_(params.weights),
        cutoff_(lambda_cutoff) {}

  // Replay hooks for the DP traceback. `i`/`j` are 1-based pair counts
  // from the sink side (pair i covers p elements at index
  // p.length()-1-i).
  void MatchNodeForReplay(TermId data_label, TermId query_label) {
    MatchNode(data_label, query_label);
  }
  void MatchPairForReplay(size_t i, size_t j) {
    MatchPair(p_.length() - i, q_.length() - j);
  }
  void InsertPairForReplay() { InsertPairFromP(0); }
  void DeletePairForReplay() { DeletePairFromQ(0); }
  PathAlignment Finish() {
    out_.aborted = false;
    out_.lambda = CostSoFar();
    return std::move(out_);
  }

  PathAlignment Run() {
    // Backward scan: match the sink nodes, then consume (edge, node)
    // pairs toward the sources.
    size_t ip = p_.length() - 1;
    size_t jq = q_.length() - 1;
    MatchNode(p_.node_labels[ip], q_.node_labels[jq]);
    while ((ip > 0 || jq > 0) && !OverCutoff()) {
      if (jq == 0) {
        InsertPairFromP(ip);
        --ip;
      } else if (ip == 0) {
        DeletePairFromQ(jq);
        --jq;
      } else if (ip == jq) {
        MatchPair(ip, jq);
        --ip;
        --jq;
      } else if (ip > jq) {
        // p is longer here: prefer matching in place when the whole
        // pair is compatible, otherwise insert p's pair into q.
        if (PairCompatible(ip, jq)) {
          MatchPair(ip, jq);
          --jq;
        } else {
          InsertPairFromP(ip);
        }
        --ip;
      } else {  // jq > ip: q is longer, symmetric.
        if (PairCompatible(ip, jq)) {
          MatchPair(ip, jq);
          --ip;
        } else {
          DeletePairFromQ(jq);
        }
        --jq;
      }
    }
    out_.aborted = OverCutoff();
    out_.lambda = w_.node_delete * static_cast<double>(
                      out_.nodes_of_p_not_in_q + out_.nodes_deleted_from_q) +
                  w_.node_insert * static_cast<double>(
                      out_.nodes_inserted_in_q) +
                  w_.edge_delete * static_cast<double>(
                      out_.edges_of_p_not_in_q + out_.edges_deleted_from_q) +
                  w_.edge_insert * static_cast<double>(
                      out_.edges_inserted_in_q);
    return std::move(out_);
  }

 private:
  // Accumulated weighted cost so far, for the early-exit check.
  double CostSoFar() const {
    return w_.node_delete * static_cast<double>(
               out_.nodes_of_p_not_in_q + out_.nodes_deleted_from_q) +
           w_.node_insert * static_cast<double>(out_.nodes_inserted_in_q) +
           w_.edge_delete * static_cast<double>(
               out_.edges_of_p_not_in_q + out_.edges_deleted_from_q) +
           w_.edge_insert * static_cast<double>(out_.edges_inserted_in_q);
  }

  bool OverCutoff() const { return CostSoFar() >= cutoff_; }

  // True when the pair ending at p node ip / q node jq could be matched
  // without a constant-constant mismatch.
  bool PairCompatible(size_t ip, size_t jq) const {
    return cmp_.Compare(p_.edge_labels[ip - 1], q_.edge_labels[jq - 1]) !=
               LabelMatch::kMismatch &&
           cmp_.Compare(p_.node_labels[ip - 1], q_.node_labels[jq - 1]) !=
               LabelMatch::kMismatch;
  }

  void MatchPair(size_t ip, size_t jq) {
    MatchEdge(p_.edge_labels[ip - 1], q_.edge_labels[jq - 1]);
    MatchNode(p_.node_labels[ip - 1], q_.node_labels[jq - 1]);
  }

  void MatchNode(TermId data_label, TermId query_label) {
    switch (cmp_.Compare(data_label, query_label)) {
      case LabelMatch::kExact:
        return;
      case LabelMatch::kVariable: {
        const Term& var = cmp_.dict()->term(query_label);
        if (!out_.phi.Bind(var.value(), cmp_.dict()->term(data_label))) {
          NodeMismatch();  // Conflicting rebinding of the variable.
        }
        return;
      }
      case LabelMatch::kSynonym:
        out_.tau.Add(BasicOp::kNodeRelabel);
        return;
      case LabelMatch::kMismatch:
        NodeMismatch();
        return;
    }
  }

  void MatchEdge(TermId data_label, TermId query_label) {
    switch (cmp_.Compare(data_label, query_label)) {
      case LabelMatch::kExact:
        return;
      case LabelMatch::kVariable: {
        const Term& var = cmp_.dict()->term(query_label);
        if (!out_.phi.Bind(var.value(), cmp_.dict()->term(data_label))) {
          EdgeMismatch();
        }
        return;
      }
      case LabelMatch::kSynonym:
        out_.tau.Add(BasicOp::kEdgeRelabel);
        return;
      case LabelMatch::kMismatch:
        EdgeMismatch();
        return;
    }
  }

  void NodeMismatch() {
    ++out_.nodes_of_p_not_in_q;
    out_.tau.Add(BasicOp::kNodeDelete);
  }

  void EdgeMismatch() {
    ++out_.edges_of_p_not_in_q;
    out_.tau.Add(BasicOp::kEdgeDelete);
  }

  void InsertPairFromP(size_t ip) {
    (void)ip;
    ++out_.edges_inserted_in_q;
    ++out_.nodes_inserted_in_q;
    out_.tau.Add(BasicOp::kEdgeInsert);
    out_.tau.Add(BasicOp::kNodeInsert);
  }

  void DeletePairFromQ(size_t jq) {
    (void)jq;
    ++out_.edges_deleted_from_q;
    ++out_.nodes_deleted_from_q;
    out_.tau.Add(BasicOp::kEdgeDelete);
    out_.tau.Add(BasicOp::kNodeDelete);
  }

  const Path& p_;
  const Path& q_;
  const LabelComparator& cmp_;
  const OpWeights& w_;
  const double cutoff_;
  PathAlignment out_;
};

}  // namespace

PathAlignment AlignPaths(const Path& p, const Path& q,
                         const LabelComparator& cmp,
                         const ScoreParams& params, double lambda_cutoff) {
  return Aligner(p, q, cmp, params, lambda_cutoff).Run();
}

namespace {

// One traceback step of the DP.
enum class DpOp : uint8_t { kMatch, kInsert, kDelete };

}  // namespace

PathAlignment AlignPathsOptimal(const Path& p, const Path& q,
                                const LabelComparator& cmp,
                                const ScoreParams& params) {
  const OpWeights& w = params.weights;
  const size_t np = p.length() - 1;  // (edge, node) pair counts.
  const size_t nq = q.length() - 1;
  const double insert_cost = w.node_insert + w.edge_insert;
  const double delete_cost = w.node_delete + w.edge_delete;

  // Optimistic per-element costs: variables and synonyms are free (the
  // conflict/relabel bookkeeping happens in the replay below).
  auto node_cost = [&](size_t pi, size_t qj) {
    return cmp.Compare(p.node_labels[pi], q.node_labels[qj]) ==
                   LabelMatch::kMismatch
               ? w.node_delete
               : 0.0;
  };
  auto edge_cost = [&](size_t pi, size_t qj) {
    return cmp.Compare(p.edge_labels[pi], q.edge_labels[qj]) ==
                   LabelMatch::kMismatch
               ? w.edge_delete
               : 0.0;
  };

  // dp[i][j]: optimal cost aligning the last i pairs of p with the last
  // j pairs of q (pair i counts from the sink side).
  std::vector<std::vector<double>> dp(np + 1,
                                      std::vector<double>(nq + 1, 0.0));
  std::vector<std::vector<DpOp>> back(np + 1,
                                      std::vector<DpOp>(nq + 1,
                                                        DpOp::kMatch));
  for (size_t i = 1; i <= np; ++i) {
    dp[i][0] = static_cast<double>(i) * insert_cost;
    back[i][0] = DpOp::kInsert;
  }
  for (size_t j = 1; j <= nq; ++j) {
    dp[0][j] = static_cast<double>(j) * delete_cost;
    back[0][j] = DpOp::kDelete;
  }
  for (size_t i = 1; i <= np; ++i) {
    for (size_t j = 1; j <= nq; ++j) {
      size_t pi = np - i;  // Pair index from the source side.
      size_t qj = nq - j;
      double match = dp[i - 1][j - 1] + edge_cost(pi, qj) +
                     node_cost(pi, qj);
      double insert = dp[i - 1][j] + insert_cost;
      double erase = dp[i][j - 1] + delete_cost;
      dp[i][j] = match;
      back[i][j] = DpOp::kMatch;
      if (insert < dp[i][j]) {
        dp[i][j] = insert;
        back[i][j] = DpOp::kInsert;
      }
      if (erase < dp[i][j]) {
        dp[i][j] = erase;
        back[i][j] = DpOp::kDelete;
      }
    }
  }

  // Replay the optimal alignment sink-first through the same matching
  // helpers as the greedy scanner, so φ/τ/counters and conflict costs
  // come out identically structured.
  Aligner replay(p, q, cmp, params,
                 std::numeric_limits<double>::infinity());
  replay.MatchNodeForReplay(p.node_labels[np], q.node_labels[nq]);
  size_t i = np, j = nq;
  while (i > 0 || j > 0) {
    DpOp op = back[i][j];
    if (i == 0) op = DpOp::kDelete;
    if (j == 0) op = DpOp::kInsert;
    switch (op) {
      case DpOp::kMatch:
        replay.MatchPairForReplay(i, j);
        --i;
        --j;
        break;
      case DpOp::kInsert:
        replay.InsertPairForReplay();
        --i;
        break;
      case DpOp::kDelete:
        replay.DeletePairForReplay();
        --j;
        break;
    }
  }
  return replay.Finish();
}

PathAlignment Align(const Path& p, const Path& q,
                    const LabelComparator& cmp, const ScoreParams& params,
                    double lambda_cutoff) {
  if (params.alignment_mode == AlignmentMode::kOptimalDp) {
    return AlignPathsOptimal(p, q, cmp, params);
  }
  return AlignPaths(p, q, cmp, params, lambda_cutoff);
}

AlignmentMemo::AlignmentMemo(size_t capacity, size_t shards)
    : cache_(capacity, shards) {}

void AlignmentMemo::Clear() { cache_.Clear(); }

CacheCounters AlignmentMemo::counters() const { return cache_.counters(); }

namespace {

void AppendRaw(std::string* key, const void* data, size_t n) {
  key->append(static_cast<const char*>(data), n);
}

void AppendU64(std::string* key, uint64_t v) { AppendRaw(key, &v, sizeof(v)); }

void AppendF64(std::string* key, double v) { AppendRaw(key, &v, sizeof(v)); }

}  // namespace

AlignmentMemo::QueryKey AlignmentMemo::MakeQueryKey(const Path& q,
                                                    const LabelComparator& cmp,
                                                    const ScoreParams& params) {
  // Fixed-width binary encoding — unambiguous by construction (every
  // field is fixed size or length-prefixed), so two distinct
  // computations can never share a key. The data path id is appended
  // per lookup in AlignCached.
  QueryKey qk;
  std::string& key = qk.bytes_;
  key.reserve(64 + 4 * (q.node_labels.size() + q.edge_labels.size()));
  key.push_back(static_cast<char>(params.alignment_mode));
  AppendF64(&key, params.weights.node_delete);
  AppendF64(&key, params.weights.node_insert);
  AppendF64(&key, params.weights.edge_delete);
  AppendF64(&key, params.weights.edge_insert);
  const Thesaurus* thesaurus = cmp.thesaurus();
  AppendU64(&key, thesaurus == nullptr ? 0 : thesaurus->identity());
  AppendU64(&key, q.node_labels.size());
  for (TermId id : q.node_labels) AppendRaw(&key, &id, sizeof(id));
  for (TermId id : q.edge_labels) AppendRaw(&key, &id, sizeof(id));
  return qk;
}

PathAlignment AlignmentMemo::AlignCached(const QueryKey& query_key,
                                         uint64_t data_path_id, const Path& p,
                                         const Path& q,
                                         const LabelComparator& cmp,
                                         const ScoreParams& params,
                                         double lambda_cutoff,
                                         CacheCounters* stats) {
  std::string key;
  key.reserve(query_key.bytes_.size() + sizeof(uint64_t));
  key.append(query_key.bytes_);
  AppendU64(&key, data_path_id);
  Entry entry;
  if (cache_.Get(key, &entry, stats)) {
    if (!entry.alignment.aborted) {
      // Full alignment: answers any cutoff. Cost accrual is monotone,
      // so the direct greedy scan aborts exactly when the full λ ≥
      // cutoff. (The DP ignores the cutoff and never aborts, so its
      // entries are served verbatim.)
      if (params.alignment_mode != AlignmentMode::kOptimalDp &&
          entry.alignment.lambda >= lambda_cutoff) {
        entry.alignment.aborted = true;  // λ stays ≥ cutoff, as direct.
      }
      return std::move(entry.alignment);
    }
    // Aborted entry: its partial λ already reached entry.cutoff_used,
    // so any cutoff ≤ that partial λ would abort too. A larger cutoff
    // might let the scan complete — fall through, recompute under the
    // new cutoff, and overwrite with the more informative result.
    if (lambda_cutoff <= entry.alignment.lambda) {
      return std::move(entry.alignment);
    }
  }
  PathAlignment fresh = Align(p, q, cmp, params, lambda_cutoff);
  cache_.Put(key, Entry{fresh, lambda_cutoff}, stats);
  return fresh;
}

}  // namespace sama

#ifndef SAMA_CORE_EXPLAIN_H_
#define SAMA_CORE_EXPLAIN_H_

#include <string>

#include "core/forest_search.h"
#include "query/query_graph.h"

namespace sama {

// Renders a human-readable explanation of an answer: per query path,
// the aligned data path, the substitution φ it contributed and the
// recorded transformation τ with its weighted cost, followed by the
// score decomposition. Intended for debugging and for end users asking
// "why did this answer rank here?".
//
// Example output:
//   answer score 2.00 = lambda 0.00 + psi 2.00
//   q1: CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care
//       aligned to CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care
//       lambda 0.00, exact (substitution only)
//       ?v1 := A0056
//       ?v2 := B1432
//   ...
std::string ExplainAnswer(const QueryGraph& query, const Answer& answer,
                          const ScoreParams& params = {});

// One-line rendering of a transformation τ, e.g.
// "edge-insert + node-insert (cost 1.50)".
std::string DescribeTransformation(const Transformation& tau,
                                   const OpWeights& weights);

}  // namespace sama

#endif  // SAMA_CORE_EXPLAIN_H_

#include "core/score.h"

#include <algorithm>

namespace sama {

std::vector<NodeId> ChiCommonNodes(const Path& a, const Path& b) {
  std::vector<NodeId> sa = a.nodes;
  std::vector<NodeId> sb = b.nodes;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<NodeId> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t ChiSize(const Path& a, const Path& b) {
  return ChiCommonNodes(a, b).size();
}

double PsiCost(size_t chi_q, size_t chi_p, const ScoreParams& params) {
  if (chi_q == 0) return 0.0;
  if (chi_p == 0) return params.e * static_cast<double>(chi_q);
  return params.e * static_cast<double>(chi_q) /
         static_cast<double>(chi_p);
}

double ConformityRatio(size_t chi_q, size_t chi_p) {
  if (chi_q == 0) return 1.0;
  return static_cast<double>(chi_p) / static_cast<double>(chi_q);
}

double LambdaTotal(const std::vector<PathAlignment>& alignments) {
  double total = 0;
  for (const PathAlignment& a : alignments) total += a.lambda;
  return total;
}

}  // namespace sama

#ifndef SAMA_EVAL_METRICS_H_
#define SAMA_EVAL_METRICS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/term.h"

namespace sama {

// Canonical string key of a binding tuple, so answers can be compared
// across systems regardless of internal representation.
std::string TupleKey(const std::vector<Term>& tuple);

// A ground-truth set of relevant answers (binding tuples).
class RelevantSet {
 public:
  void Add(const std::vector<Term>& tuple) { keys_.insert(TupleKey(tuple)); }
  bool Contains(const std::vector<Term>& tuple) const {
    return keys_.count(TupleKey(tuple)) > 0;
  }
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

 private:
  std::unordered_set<std::string> keys_;
};

// The reciprocal rank (§6.3): 1/rank of the first relevant answer in
// the ranked list, 0 when none is relevant. Duplicate tuples in the
// ranking are kept as ranked.
double ReciprocalRank(const std::vector<std::vector<Term>>& ranked,
                      const RelevantSet& relevant);

struct PrecisionRecallPoint {
  double recall = 0;
  double precision = 0;
};

// The raw precision/recall curve of a ranked result list: one point per
// rank position (precision@i, recall@i). Duplicate tuples count once
// toward recall.
std::vector<PrecisionRecallPoint> PrecisionRecallCurve(
    const std::vector<std::vector<Term>>& ranked,
    const RelevantSet& relevant);

// Standard 11-point interpolated precision (Figure 9): for each recall
// level r in {0.0, 0.1, ..., 1.0}, the maximum precision at any recall
// ≥ r.
std::vector<PrecisionRecallPoint> InterpolateElevenPoints(
    const std::vector<PrecisionRecallPoint>& curve);

// Set-level precision/recall of an unranked result list.
double Precision(const std::vector<std::vector<Term>>& results,
                 const RelevantSet& relevant);
double Recall(const std::vector<std::vector<Term>>& results,
              const RelevantSet& relevant);

}  // namespace sama

#endif  // SAMA_EVAL_METRICS_H_

#include "eval/metrics.h"

#include <algorithm>

namespace sama {

std::string TupleKey(const std::vector<Term>& tuple) {
  std::string key;
  for (const Term& t : tuple) {
    key += t.ToString();
    key += '\x1f';  // Unit separator: cannot appear in ToString output.
  }
  return key;
}

double ReciprocalRank(const std::vector<std::vector<Term>>& ranked,
                      const RelevantSet& relevant) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.Contains(ranked[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

std::vector<PrecisionRecallPoint> PrecisionRecallCurve(
    const std::vector<std::vector<Term>>& ranked,
    const RelevantSet& relevant) {
  std::vector<PrecisionRecallPoint> curve;
  if (relevant.empty()) return curve;
  std::unordered_set<std::string> found;
  size_t hits = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const std::string key = TupleKey(ranked[i]);
    if (relevant.Contains(ranked[i]) && found.insert(key).second) {
      ++hits;
    }
    PrecisionRecallPoint point;
    point.precision = static_cast<double>(hits) / static_cast<double>(i + 1);
    point.recall =
        static_cast<double>(hits) / static_cast<double>(relevant.size());
    curve.push_back(point);
  }
  return curve;
}

std::vector<PrecisionRecallPoint> InterpolateElevenPoints(
    const std::vector<PrecisionRecallPoint>& curve) {
  std::vector<PrecisionRecallPoint> out;
  out.reserve(11);
  for (int level = 0; level <= 10; ++level) {
    double r = static_cast<double>(level) / 10.0;
    double best = 0;
    for (const PrecisionRecallPoint& p : curve) {
      if (p.recall + 1e-12 >= r) best = std::max(best, p.precision);
    }
    out.push_back(PrecisionRecallPoint{r, best});
  }
  return out;
}

double Precision(const std::vector<std::vector<Term>>& results,
                 const RelevantSet& relevant) {
  if (results.empty()) return 0;
  size_t hits = 0;
  for (const auto& tuple : results) {
    if (relevant.Contains(tuple)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

double Recall(const std::vector<std::vector<Term>>& results,
              const RelevantSet& relevant) {
  if (relevant.empty()) return 0;
  std::unordered_set<std::string> found;
  for (const auto& tuple : results) {
    if (relevant.Contains(tuple)) found.insert(TupleKey(tuple));
  }
  return static_cast<double>(found.size()) /
         static_cast<double>(relevant.size());
}

}  // namespace sama

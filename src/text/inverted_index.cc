#include "text/inverted_index.h"

#include <algorithm>
#include <cstddef>
#include <map>

#include "storage/coding.h"

namespace sama {

void InvertedLabelIndex::Cursor::SeekTo(uint64_t target) {
  if (Done()) return;
  // Gallop then binary search within the located window.
  size_t lo = pos_;
  size_t step = 1;
  while (lo + step < postings_->size() && (*postings_)[lo + step] < target) {
    lo += step;
    step *= 2;
  }
  size_t hi = std::min(lo + step + 1, postings_->size());
  pos_ = static_cast<size_t>(
      std::lower_bound(postings_->begin() + static_cast<std::ptrdiff_t>(lo),
                       postings_->begin() + static_cast<std::ptrdiff_t>(hi),
                       target) -
      postings_->begin());
}

void InvertedLabelIndex::Add(std::string_view label, uint64_t id) {
  finished_ = false;
  DropLookupCache();  // Memoized lookups predate this posting.
  exact_postings_[NormalizeLabel(label)].push_back(id);
  for (const std::string& token : TokenizeLabel(label)) {
    token_postings_[token].push_back(id);
  }
}

void InvertedLabelIndex::AddPrecise(std::string_view label, uint64_t id,
                                    const Thesaurus* thesaurus) {
  finished_ = false;
  InvalidateLabel(label, thesaurus);
  exact_postings_[NormalizeLabel(label)].push_back(id);
  for (const std::string& token : TokenizeLabel(label)) {
    token_postings_[token].push_back(id);
  }
}

void InvertedLabelIndex::InvalidateLabel(std::string_view label,
                                         const Thesaurus* thesaurus) const {
  if (!semantic_cache_) return;
  const std::string changed_norm = NormalizeLabel(label);
  std::vector<std::string> changed_tokens = TokenizeLabel(label);
  std::sort(changed_tokens.begin(), changed_tokens.end());
  const uint64_t live_identity =
      thesaurus == nullptr ? 0 : thesaurus->identity();
  semantic_cache_->EraseIf([&](const std::string& key) {
    // Key layout (LookupSemantic): normalized-label '\x1f' identity.
    // The identity is decimal, so the LAST separator is unambiguous
    // even if the label itself contains '\x1f'.
    size_t sep = key.rfind('\x1f');
    if (sep == std::string::npos) return true;  // Unparseable: drop.
    std::string_view lookup_norm(key.data(), sep);
    if (lookup_norm == changed_norm) return true;
    // The AND-fallback fires when every token of the lookup label
    // occurs in the changed label.
    std::vector<std::string> lookup_tokens = TokenizeLabel(lookup_norm);
    if (!lookup_tokens.empty()) {
      bool contained = true;
      for (const std::string& t : lookup_tokens) {
        if (!std::binary_search(changed_tokens.begin(), changed_tokens.end(),
                                t)) {
          contained = false;
          break;
        }
      }
      if (contained) return true;
    }
    uint64_t entry_identity = 0;
    for (size_t i = sep + 1; i < key.size(); ++i) {
      entry_identity = entry_identity * 10 + (key[i] - '0');
    }
    if (entry_identity == 0) return false;  // Cached without a thesaurus.
    if (thesaurus == nullptr || entry_identity != live_identity) {
      // Memoized under a vocabulary we cannot interrogate: drop it
      // rather than guess at its expansion.
      return true;
    }
    return thesaurus->AreRelated(lookup_norm, label);
  });
}

void InvertedLabelIndex::ConfigureCache(size_t entries, size_t shards) const {
  if (entries == 0) {
    semantic_cache_.reset();
    return;
  }
  semantic_cache_ =
      std::make_unique<ShardedLruCache<std::string, std::vector<uint64_t>>>(
          entries, shards);
}

void InvertedLabelIndex::DropLookupCache() const {
  if (semantic_cache_) semantic_cache_->Clear();
}

CacheCounters InvertedLabelIndex::cache_counters() const {
  return semantic_cache_ ? semantic_cache_->counters() : CacheCounters{};
}

uint64_t InvertedLabelIndex::cache_lock_skips() const {
  return semantic_cache_ ? semantic_cache_->lru_lock_skips() : 0;
}

void InvertedLabelIndex::SortDedup(std::vector<uint64_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

void InvertedLabelIndex::Finish() {
  if (finished_) return;
  for (auto& [token, postings] : token_postings_) SortDedup(&postings);
  for (auto& [label, postings] : exact_postings_) SortDedup(&postings);
  finished_ = true;
}

InvertedLabelIndex::Cursor InvertedLabelIndex::LookupExact(
    std::string_view label) const {
  auto it = exact_postings_.find(NormalizeLabel(label));
  if (it == exact_postings_.end()) return Cursor();
  return Cursor(&it->second);
}

std::vector<uint64_t> InvertedLabelIndex::LookupTokens(
    std::string_view label) const {
  std::vector<std::string> tokens = TokenizeLabel(label);
  if (tokens.empty()) return {};
  // Gather cursors; missing token => empty intersection.
  std::vector<Cursor> cursors;
  cursors.reserve(tokens.size());
  for (const std::string& token : tokens) {
    auto it = token_postings_.find(token);
    if (it == token_postings_.end()) return {};
    cursors.emplace_back(&it->second);
  }
  // k-way intersection driven by the first cursor.
  std::vector<uint64_t> out;
  while (!cursors[0].Done()) {
    uint64_t candidate = cursors[0].Value();
    bool all = true;
    for (size_t i = 1; i < cursors.size(); ++i) {
      cursors[i].SeekTo(candidate);
      if (cursors[i].Done()) return out;
      if (cursors[i].Value() != candidate) {
        cursors[0].SeekTo(cursors[i].Value());
        all = false;
        break;
      }
    }
    if (all) {
      out.push_back(candidate);
      cursors[0].Next();
    }
  }
  return out;
}

std::vector<uint64_t> InvertedLabelIndex::LookupSemantic(
    std::string_view label, const Thesaurus* thesaurus,
    CacheCounters* stats) const {
  std::string normalized = NormalizeLabel(label);
  // Memo key: normalized label + thesaurus content identity, so a
  // mutated or different thesaurus never aliases a cached list.
  std::string cache_key;
  if (semantic_cache_) {
    cache_key = normalized;
    cache_key.push_back('\x1f');
    cache_key +=
        std::to_string(thesaurus == nullptr ? 0 : thesaurus->identity());
    std::vector<uint64_t> cached;
    if (semantic_cache_->Get(cache_key, &cached, stats)) return cached;
  }
  std::vector<uint64_t> out;
  for (Cursor c = LookupExact(label); !c.Done(); c.Next()) {
    out.push_back(c.Value());
  }
  if (thesaurus != nullptr) {
    for (const std::string& alt : thesaurus->Expand(label)) {
      if (alt == normalized) continue;
      for (Cursor c = LookupExact(alt); !c.Done(); c.Next()) {
        out.push_back(c.Value());
      }
    }
  }
  if (out.empty()) {
    out = LookupTokens(label);
  } else {
    SortDedup(&out);
  }
  if (semantic_cache_) semantic_cache_->Put(cache_key, out, stats);
  return out;
}

namespace {

void SerializePostingsMap(
    const std::unordered_map<std::string, std::vector<uint64_t>>& map,
    std::vector<uint8_t>* out) {
  // Keys sorted for a deterministic image.
  std::map<std::string, const std::vector<uint64_t>*> sorted;
  for (const auto& [key, postings] : map) sorted.emplace(key, &postings);
  PutVarint64(out, sorted.size());
  for (const auto& [key, postings] : sorted) {
    PutVarint64(out, key.size());
    out->insert(out->end(), key.begin(), key.end());
    PutVarint64(out, postings->size());
    uint64_t previous = 0;
    for (uint64_t id : *postings) {
      PutVarint64(out, id - previous);  // Sorted: deltas are small.
      previous = id;
    }
  }
}

bool DeserializePostingsMap(
    const std::vector<uint8_t>& buf, size_t* pos,
    std::unordered_map<std::string, std::vector<uint64_t>>* map) {
  map->clear();
  uint64_t entries = 0;
  if (!GetVarint64(buf, pos, &entries)) return false;
  for (uint64_t e = 0; e < entries; ++e) {
    uint64_t key_size = 0;
    if (!GetVarint64(buf, pos, &key_size)) return false;
    if (buf.size() - *pos < key_size) return false;
    std::string key(buf.begin() + static_cast<long>(*pos),
                    buf.begin() + static_cast<long>(*pos + key_size));
    *pos += key_size;
    uint64_t count = 0;
    if (!GetVarint64(buf, pos, &count)) return false;
    std::vector<uint64_t> postings(count);
    uint64_t previous = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t delta = 0;
      if (!GetVarint64(buf, pos, &delta)) return false;
      previous += delta;
      postings[i] = previous;
    }
    map->emplace(std::move(key), std::move(postings));
  }
  return true;
}

}  // namespace

void InvertedLabelIndex::Serialize(std::vector<uint8_t>* out) const {
  SerializePostingsMap(exact_postings_, out);
  SerializePostingsMap(token_postings_, out);
}

bool InvertedLabelIndex::Deserialize(const std::vector<uint8_t>& buf,
                                     size_t* pos) {
  DropLookupCache();  // Contents are about to be replaced wholesale.
  if (!DeserializePostingsMap(buf, pos, &exact_postings_)) return false;
  if (!DeserializePostingsMap(buf, pos, &token_postings_)) return false;
  finished_ = true;  // Serialized images are always Finish()ed.
  return true;
}

uint64_t InvertedLabelIndex::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const auto& [token, postings] : token_postings_) {
    bytes += token.size() + postings.capacity() * sizeof(uint64_t) + 64;
  }
  for (const auto& [label, postings] : exact_postings_) {
    bytes += label.size() + postings.capacity() * sizeof(uint64_t) + 64;
  }
  return bytes;
}

}  // namespace sama

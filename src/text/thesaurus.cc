#include "text/thesaurus.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/string_util.h"

#include "text/tokenizer.h"

namespace sama {

namespace {
// Total AreRelated memo budget per thesaurus; the vocabulary is tiny,
// so this comfortably holds every distinct (pair, hops) probe.
constexpr size_t kRelatedCacheEntries = 1 << 14;
constexpr size_t kRelatedCacheShards = 8;
// Synset ids above this cannot be packed into the memo key; such pairs
// bypass the cache (correct, just unmemoized). 2^28 synsets is far
// beyond any realistic vocabulary.
constexpr uint32_t kMaxPackableSynset = (1u << 28) - 1;
}  // namespace

uint64_t Thesaurus::NextIdentity() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void Thesaurus::Invalidate() {
  identity_ = NextIdentity();
  if (related_cache_) related_cache_->Clear();
}

Thesaurus::Thesaurus()
    : identity_(NextIdentity()),
      related_cache_(std::make_unique<ShardedLruCache<uint64_t, bool>>(
          kRelatedCacheEntries, kRelatedCacheShards)) {}

Thesaurus::Thesaurus(const Thesaurus& other)
    : synsets_(other.synsets_),
      synset_of_(other.synset_of_),
      identity_(other.identity_),
      related_cache_(std::make_unique<ShardedLruCache<uint64_t, bool>>(
          kRelatedCacheEntries, kRelatedCacheShards)) {}

Thesaurus& Thesaurus::operator=(const Thesaurus& other) {
  if (this == &other) return *this;
  synsets_ = other.synsets_;
  synset_of_ = other.synset_of_;
  identity_ = other.identity_;
  if (related_cache_) {
    related_cache_->Clear();
  } else {
    related_cache_ = std::make_unique<ShardedLruCache<uint64_t, bool>>(
        kRelatedCacheEntries, kRelatedCacheShards);
  }
  return *this;
}

CacheCounters Thesaurus::relatedness_cache_counters() const {
  return related_cache_ ? related_cache_->counters() : CacheCounters{};
}

uint64_t Thesaurus::relatedness_cache_lock_skips() const {
  return related_cache_ ? related_cache_->lru_lock_skips() : 0;
}

Thesaurus::SynsetId Thesaurus::SynsetFor(const std::string& word) {
  auto it = synset_of_.find(word);
  if (it != synset_of_.end()) return it->second;
  SynsetId id = static_cast<SynsetId>(synsets_.size());
  synsets_.push_back(Synset{{word}, {}, {}});
  synset_of_.emplace(word, id);
  return id;
}

Thesaurus::SynsetId Thesaurus::FindSynset(std::string_view word) const {
  auto it = synset_of_.find(NormalizeLabel(word));
  return it == synset_of_.end() ? static_cast<SynsetId>(-1) : it->second;
}

void Thesaurus::AddSynonyms(const std::vector<std::string>& words) {
  if (words.empty()) return;
  Invalidate();
  SynsetId target = SynsetFor(NormalizeLabel(words[0]));
  for (size_t i = 1; i < words.size(); ++i) {
    std::string norm = NormalizeLabel(words[i]);
    SynsetId other = SynsetFor(norm);
    if (other == target) continue;
    // Merge `other` into `target`.
    Synset& dst = synsets_[target];
    Synset& src = synsets_[other];
    for (const std::string& w : src.words) {
      synset_of_[w] = target;
      dst.words.push_back(w);
    }
    for (SynsetId h : src.hypernyms) {
      dst.hypernyms.push_back(h);
      auto& back = synsets_[h].hyponyms;
      std::replace(back.begin(), back.end(), other, target);
    }
    for (SynsetId h : src.hyponyms) {
      dst.hyponyms.push_back(h);
      auto& back = synsets_[h].hypernyms;
      std::replace(back.begin(), back.end(), other, target);
    }
    src = Synset{};  // Leave a tombstone; ids stay stable.
  }
}

void Thesaurus::AddHypernym(const std::string& word,
                            const std::string& parent_word) {
  Invalidate();
  SynsetId child = SynsetFor(NormalizeLabel(word));
  SynsetId parent = SynsetFor(NormalizeLabel(parent_word));
  if (child == parent) return;
  Synset& c = synsets_[child];
  if (std::find(c.hypernyms.begin(), c.hypernyms.end(), parent) ==
      c.hypernyms.end()) {
    c.hypernyms.push_back(parent);
    synsets_[parent].hyponyms.push_back(child);
  }
}

bool Thesaurus::AreSynonyms(std::string_view a, std::string_view b) const {
  SynsetId sa = FindSynset(a);
  if (sa == static_cast<SynsetId>(-1)) return false;
  return sa == FindSynset(b);
}

std::vector<Thesaurus::SynsetId> Thesaurus::Neighbors(SynsetId s) const {
  std::vector<SynsetId> out = synsets_[s].hypernyms;
  out.insert(out.end(), synsets_[s].hyponyms.begin(),
             synsets_[s].hyponyms.end());
  return out;
}

bool Thesaurus::AreRelated(std::string_view a, std::string_view b,
                           int max_hops, CacheCounters* stats) const {
  SynsetId sa = FindSynset(a);
  SynsetId sb = FindSynset(b);
  if (sa == static_cast<SynsetId>(-1) || sb == static_cast<SynsetId>(-1)) {
    return false;
  }
  if (sa == sb) return true;
  // Relatedness is symmetric, so memoize on the ordered pair. The key
  // packs (min synset, max synset, hops) into 28+28+8 bits; oversized
  // inputs skip the memo rather than risk aliasing.
  SynsetId lo = std::min(sa, sb);
  SynsetId hi = std::max(sa, sb);
  bool cacheable = related_cache_ != nullptr && lo <= kMaxPackableSynset &&
                   hi <= kMaxPackableSynset && max_hops >= 0 &&
                   max_hops < 256;
  uint64_t key = 0;
  if (cacheable) {
    key = (static_cast<uint64_t>(lo) << 36) |
          (static_cast<uint64_t>(hi) << 8) |
          static_cast<uint64_t>(max_hops);
    bool cached;
    if (related_cache_->Get(key, &cached, stats)) return cached;
  }
  // BFS over is-a links up to max_hops.
  bool related = false;
  std::unordered_set<SynsetId> seen{sa};
  std::deque<std::pair<SynsetId, int>> frontier{{sa, 0}};
  while (!related && !frontier.empty()) {
    auto [s, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_hops) continue;
    for (SynsetId next : Neighbors(s)) {
      if (!seen.insert(next).second) continue;
      if (next == sb) {
        related = true;
        break;
      }
      frontier.emplace_back(next, depth + 1);
    }
  }
  if (cacheable) related_cache_->Put(key, related, stats);
  return related;
}

std::vector<std::string> Thesaurus::Expand(std::string_view word,
                                           int max_hops) const {
  std::vector<std::string> out;
  std::string norm = NormalizeLabel(word);
  SynsetId start = FindSynset(word);
  if (start == static_cast<SynsetId>(-1)) {
    out.push_back(std::move(norm));
    return out;
  }
  std::unordered_set<SynsetId> seen{start};
  std::deque<std::pair<SynsetId, int>> frontier{{start, 0}};
  while (!frontier.empty()) {
    auto [s, depth] = frontier.front();
    frontier.pop_front();
    for (const std::string& w : synsets_[s].words) out.push_back(w);
    if (depth >= max_hops) continue;
    for (SynsetId next : Neighbors(s)) {
      if (seen.insert(next).second) frontier.emplace_back(next, depth + 1);
    }
  }
  return out;
}

Status Thesaurus::LoadFromString(std::string_view text) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_number;
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;

    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fail = [&](const char* what) {
      return Status::ParseError("thesaurus line " +
                                std::to_string(line_number) + ": " + what);
    };
    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) return fail("missing ':'");
    std::string_view kind = TrimWhitespace(trimmed.substr(0, colon));
    std::vector<std::string> words;
    for (std::string_view part :
         SplitString(trimmed.substr(colon + 1), ',')) {
      std::string_view word = TrimWhitespace(part);
      if (!word.empty()) words.emplace_back(word);
    }
    if (kind == "syn") {
      if (words.size() < 2) return fail("syn needs at least two words");
      AddSynonyms(words);
    } else if (kind == "isa") {
      if (words.size() != 2) return fail("isa needs exactly two words");
      AddHypernym(words[0], words[1]);
    } else {
      return fail("unknown entry kind (expected 'syn' or 'isa')");
    }
  }
  return Status::Ok();
}

Status Thesaurus::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open thesaurus file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadFromString(buffer.str());
}

Thesaurus Thesaurus::BuiltinEnglish() {
  Thesaurus t;
  // People & gender (GovTrack-flavoured vocabulary, Figure 1).
  t.AddSynonyms({"male", "man", "masculine"});
  t.AddSynonyms({"female", "woman", "feminine"});
  t.AddSynonyms({"person", "individual", "human"});
  t.AddHypernym("man", "person");
  t.AddHypernym("woman", "person");
  t.AddSynonyms({"sponsor", "backer", "promoter"});
  t.AddSynonyms({"amendment", "revision"});
  t.AddSynonyms({"bill", "measure"});
  t.AddHypernym("amendment", "document");
  t.AddHypernym("bill", "document");
  t.AddSynonyms({"subject", "topic", "theme"});
  // Academia (LUBM/UOBM vocabulary).
  t.AddSynonyms({"professor", "prof"});
  t.AddSynonyms({"teacher", "instructor", "educator"});
  t.AddHypernym("professor", "teacher");
  t.AddHypernym("lecturer", "teacher");
  t.AddSynonyms({"student", "pupil", "learner"});
  t.AddSynonyms({"course", "class"});
  t.AddSynonyms({"university", "college"});
  t.AddHypernym("teacher", "person");
  t.AddHypernym("student", "person");
  t.AddSynonyms({"publication", "paper", "article"});
  t.AddHypernym("publication", "document");
  t.AddSynonyms({"department", "dept"});
  t.AddSynonyms({"advisor", "adviser", "mentor"});
  // LUBM predicate names and their colloquial synonyms, so relaxed
  // queries can swap them (Q6/Q11 of the benchmark workload).
  t.AddSynonyms({"teacherOf", "teaches", "instructs"});
  t.AddSynonyms({"takesCourse", "takes", "attends", "enrolledIn"});
  t.AddSynonyms({"worksFor", "employedBy"});
  t.AddSynonyms({"memberOf", "belongsTo"});
  t.AddSynonyms({"publicationAuthor", "authoredBy", "writtenBy"});
  // Commerce (Berlin vocabulary).
  t.AddSynonyms({"product", "item", "good"});
  t.AddSynonyms({"producer", "manufacturer", "maker"});
  t.AddSynonyms({"vendor", "seller", "retailer"});
  t.AddSynonyms({"offer", "deal"});
  t.AddSynonyms({"review", "evaluation", "critique"});
  t.AddHypernym("review", "document");
  t.AddSynonyms({"price", "cost"});
  // Media (IMDB/DBLP/PBlog vocabulary).
  t.AddSynonyms({"movie", "film", "picture"});
  t.AddSynonyms({"actor", "performer"});
  t.AddHypernym("actor", "person");
  t.AddSynonyms({"director", "filmmaker"});
  t.AddHypernym("director", "person");
  t.AddSynonyms({"author", "writer"});
  t.AddHypernym("author", "person");
  t.AddSynonyms({"blog", "weblog"});
  t.AddSynonyms({"links", "linksto", "references"});
  // Biology (KEGG vocabulary).
  t.AddSynonyms({"gene", "locus"});
  t.AddSynonyms({"pathway", "route"});
  t.AddSynonyms({"enzyme", "catalyst"});
  t.AddSynonyms({"compound", "substance", "chemical"});
  return t;
}

}  // namespace sama

#include "text/tokenizer.h"

#include <cctype>

namespace sama {

std::vector<std::string> TokenizeLabel(std::string_view label) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  char prev = '\0';
  for (char c : label) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      // camelCase boundary: lower/digit followed by upper starts a new
      // token.
      if (std::isupper(uc) &&
          (std::islower(static_cast<unsigned char>(prev)) ||
           std::isdigit(static_cast<unsigned char>(prev)))) {
        flush();
      }
      current.push_back(
          static_cast<char>(std::tolower(uc)));
    } else {
      flush();
    }
    prev = c;
  }
  flush();
  return tokens;
}

std::string NormalizeLabel(std::string_view label) {
  std::string out;
  NormalizeLabelInto(label, &out);
  return out;
}

void NormalizeLabelInto(std::string_view label, std::string* out) {
  out->clear();
  out->reserve(label.size());
  for (char c : label) {
    out->push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
}

bool NormalizedLabelsEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace sama

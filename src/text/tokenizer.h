#ifndef SAMA_TEXT_TOKENIZER_H_
#define SAMA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sama {

// Splits a label into lowercase alphanumeric tokens, additionally
// breaking camelCase boundaries so IRI local names like
// "AssociateProfessor" index as {"associate", "professor"}. This is
// the analysis step of our Lucene-substitute label index.
std::vector<std::string> TokenizeLabel(std::string_view label);

// Lowercased whole-label normalisation (exact-match key).
std::string NormalizeLabel(std::string_view label);

// NormalizeLabel into a caller-owned buffer (cleared first), so hot
// loops can reuse one allocation across calls.
void NormalizeLabelInto(std::string_view label, std::string* out);

// True when the two labels normalise to the same key, without
// materialising either normalised string — the allocation-free form of
// NormalizeLabel(a) == NormalizeLabel(b) for the alignment hot path.
bool NormalizedLabelsEqual(std::string_view a, std::string_view b);

}  // namespace sama

#endif  // SAMA_TEXT_TOKENIZER_H_

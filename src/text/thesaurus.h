#ifndef SAMA_TEXT_THESAURUS_H_
#define SAMA_TEXT_THESAURUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sharded_cache.h"
#include "common/status.h"

namespace sama {

// WordNet substitute (§6.1: "semantically similar entries such as
// synonyms, hyponyms and hypernyms are extracted from WordNet").
// Stores synsets (synonym rings) and is-a links between synsets;
// queries ask whether two labels are semantically related. All lookups
// are case-insensitive on normalised labels.
class Thesaurus {
 public:
  Thesaurus();
  // Copies share the source's content identity (equal content) but get
  // their own empty relatedness cache; a later mutation of either side
  // assigns that side a fresh identity, so cache keys derived from
  // identity() can never alias two different vocabularies.
  Thesaurus(const Thesaurus& other);
  Thesaurus& operator=(const Thesaurus& other);
  Thesaurus(Thesaurus&&) = default;
  Thesaurus& operator=(Thesaurus&&) = default;

  // Declares the given words to be mutual synonyms (merging any synsets
  // they already belong to).
  void AddSynonyms(const std::vector<std::string>& words);

  // Declares `word` is-a `parent_word` (hyponym → hypernym). Both words
  // get singleton synsets if unseen.
  void AddHypernym(const std::string& word, const std::string& parent_word);

  // True when the words share a synset.
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  // True when the words are synonyms or connected through at most
  // `max_hops` is-a links (in either direction, through synsets).
  // `stats` (optional) receives this call's relatedness-memo traffic —
  // the per-query attribution sink (see CacheCounters).
  bool AreRelated(std::string_view a, std::string_view b, int max_hops = 1,
                  CacheCounters* stats = nullptr) const;

  // Every word related to `word` within `max_hops` is-a links,
  // including its synonyms (and `word` itself, normalised).
  std::vector<std::string> Expand(std::string_view word,
                                  int max_hops = 1) const;

  size_t synset_count() const { return synsets_.size(); }
  size_t word_count() const { return synset_of_.size(); }

  // A process-unique token for the current CONTENT of this thesaurus:
  // every mutation (AddSynonyms/AddHypernym/Load*) assigns a fresh
  // value. Query-side caches (inverted-index postings, path-index
  // lookups, the alignment memo) fold it into their keys so entries
  // computed under one vocabulary are never served under another.
  uint64_t identity() const { return identity_; }

  // Hit/miss totals of the internal AreRelated memo (QueryStats).
  CacheCounters relatedness_cache_counters() const;
  // Memo hits that skipped the LRU touch under write contention.
  uint64_t relatedness_cache_lock_skips() const;

  // Seeds the thesaurus with a small built-in English vocabulary
  // covering the benchmark domains (people/gender/teaching/commerce),
  // standing in for the WordNet dump.
  static Thesaurus BuiltinEnglish();

  // Merges entries from a thesaurus file into this instance. Format,
  // one entry per line ('#' comments allowed):
  //   syn: word, word, word     — a synonym ring
  //   isa: child, parent        — a hypernym link
  // Returns ParseError naming the offending line on malformed input.
  Status LoadFromFile(const std::string& path);
  Status LoadFromString(std::string_view text);

 private:
  using SynsetId = uint32_t;

  SynsetId SynsetFor(const std::string& normalized_word);
  SynsetId FindSynset(std::string_view word) const;
  // Union of hypernym/hyponym neighbour synsets of `s`.
  std::vector<SynsetId> Neighbors(SynsetId s) const;

  struct Synset {
    std::vector<std::string> words;
    std::vector<SynsetId> hypernyms;
    std::vector<SynsetId> hyponyms;
  };

  // Fresh process-unique identity; called on construction and on every
  // mutation.
  static uint64_t NextIdentity();
  // Mutation prologue: new identity + empty relatedness cache.
  void Invalidate();

  std::vector<Synset> synsets_;
  std::unordered_map<std::string, SynsetId> synset_of_;
  uint64_t identity_ = 0;
  // Memo over AreRelated's synset-pair BFS. Lookups are symmetric, so
  // the key is the ordered (min, max, hops) triple. Mutable because
  // AreRelated is logically const; internally thread-safe.
  mutable std::unique_ptr<ShardedLruCache<uint64_t, bool>> related_cache_;
};

}  // namespace sama

#endif  // SAMA_TEXT_THESAURUS_H_

#ifndef SAMA_TEXT_THESAURUS_H_
#define SAMA_TEXT_THESAURUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sama {

// WordNet substitute (§6.1: "semantically similar entries such as
// synonyms, hyponyms and hypernyms are extracted from WordNet").
// Stores synsets (synonym rings) and is-a links between synsets;
// queries ask whether two labels are semantically related. All lookups
// are case-insensitive on normalised labels.
class Thesaurus {
 public:
  Thesaurus() = default;

  // Declares the given words to be mutual synonyms (merging any synsets
  // they already belong to).
  void AddSynonyms(const std::vector<std::string>& words);

  // Declares `word` is-a `parent_word` (hyponym → hypernym). Both words
  // get singleton synsets if unseen.
  void AddHypernym(const std::string& word, const std::string& parent_word);

  // True when the words share a synset.
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  // True when the words are synonyms or connected through at most
  // `max_hops` is-a links (in either direction, through synsets).
  bool AreRelated(std::string_view a, std::string_view b,
                  int max_hops = 1) const;

  // Every word related to `word` within `max_hops` is-a links,
  // including its synonyms (and `word` itself, normalised).
  std::vector<std::string> Expand(std::string_view word,
                                  int max_hops = 1) const;

  size_t synset_count() const { return synsets_.size(); }
  size_t word_count() const { return synset_of_.size(); }

  // Seeds the thesaurus with a small built-in English vocabulary
  // covering the benchmark domains (people/gender/teaching/commerce),
  // standing in for the WordNet dump.
  static Thesaurus BuiltinEnglish();

  // Merges entries from a thesaurus file into this instance. Format,
  // one entry per line ('#' comments allowed):
  //   syn: word, word, word     — a synonym ring
  //   isa: child, parent        — a hypernym link
  // Returns ParseError naming the offending line on malformed input.
  Status LoadFromFile(const std::string& path);
  Status LoadFromString(std::string_view text);

 private:
  using SynsetId = uint32_t;

  SynsetId SynsetFor(const std::string& normalized_word);
  SynsetId FindSynset(std::string_view word) const;
  // Union of hypernym/hyponym neighbour synsets of `s`.
  std::vector<SynsetId> Neighbors(SynsetId s) const;

  struct Synset {
    std::vector<std::string> words;
    std::vector<SynsetId> hypernyms;
    std::vector<SynsetId> hyponyms;
  };

  std::vector<Synset> synsets_;
  std::unordered_map<std::string, SynsetId> synset_of_;
};

}  // namespace sama

#endif  // SAMA_TEXT_THESAURUS_H_

#ifndef SAMA_TEXT_INVERTED_INDEX_H_
#define SAMA_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sharded_cache.h"
#include "text/thesaurus.h"
#include "text/tokenizer.h"

namespace sama {

// The Lucene-Domain-index substitute (§6.1): an inverted index from
// label tokens to element ids (node ids, edge ids or path ids,
// depending on what the caller indexes). Lookups return a cursor over
// a sorted postings list; multi-token labels intersect their token
// postings; the thesaurus-aware lookup unions postings over the
// semantic expansion of the label.
class InvertedLabelIndex {
 public:
  // Forward-iterates one postings list (ascending ids).
  class Cursor {
   public:
    Cursor() : postings_(nullptr) {}
    explicit Cursor(const std::vector<uint64_t>* postings)
        : postings_(postings) {}

    bool Done() const {
      return postings_ == nullptr || pos_ >= postings_->size();
    }
    uint64_t Value() const { return (*postings_)[pos_]; }
    void Next() { ++pos_; }
    // Advances to the first posting >= target (galloping).
    void SeekTo(uint64_t target);
    size_t size() const { return postings_ == nullptr ? 0 : postings_->size(); }

   private:
    const std::vector<uint64_t>* postings_;
    size_t pos_ = 0;
  };

  InvertedLabelIndex() = default;

  // Indexes `label` (tokenized + exact form) under element `id`. Ids
  // must be added in non-decreasing order per distinct token for the
  // postings to stay sorted; Finish() sorts and dedups regardless.
  void Add(std::string_view label, uint64_t id);

  // Add() for the live-update path: instead of dropping the whole
  // semantic-lookup memo, erases only the entries `label` could have
  // contributed to (see InvalidateLabel). `thesaurus` is the vocabulary
  // live queries run with; entries memoized under a different thesaurus
  // identity are dropped conservatively.
  void AddPrecise(std::string_view label, uint64_t id,
                  const Thesaurus* thesaurus);

  // Precisely invalidates memoized LookupSemantic results that an
  // element labelled `label` could appear in (or vanish from): entries
  // whose lookup label normalizes equal, whose tokens are all contained
  // in `label`'s tokens (the AND-fallback), or that are thesaurus-
  // related to `label`. A sound superset of LookupSemantic's match
  // semantics — unrelated memo entries survive the update.
  void InvalidateLabel(std::string_view label,
                       const Thesaurus* thesaurus) const;

  // Sorts and dedups every postings list. Idempotent; called once after
  // the build loop.
  void Finish();

  // Cursor over elements whose label normalises exactly to `label`.
  Cursor LookupExact(std::string_view label) const;

  // Elements whose label contains every token of `label` (AND).
  std::vector<uint64_t> LookupTokens(std::string_view label) const;

  // LookupExact unioned over the thesaurus expansion of `label`; falls
  // back to token AND-matching when no exact postings exist. This is
  // the semantic lookup the clustering step uses. `stats` (optional)
  // receives this call's memo traffic — the per-query attribution sink.
  std::vector<uint64_t> LookupSemantic(std::string_view label,
                                       const Thesaurus* thesaurus,
                                       CacheCounters* stats = nullptr) const;

  size_t distinct_tokens() const { return token_postings_.size(); }
  size_t distinct_labels() const { return exact_postings_.size(); }
  uint64_t MemoryBytes() const;

  // Enables (entries > 0) or disables (entries == 0) the memo over
  // LookupSemantic's merged result lists. Purely an optimisation: hot
  // query labels skip the expand + union + dedup work. Entries are
  // keyed on (normalized label, thesaurus identity), so a mutated or
  // swapped thesaurus can never be served stale postings; any Add() or
  // Deserialize() drops the memo outright. Const because lookups are
  // const; the cache itself is thread-safe.
  void ConfigureCache(size_t entries, size_t shards = 8) const;
  // Drops memoized lookups (index rebuilds; also internal on mutation).
  void DropLookupCache() const;
  // Lifetime hit/miss totals of the semantic-lookup memo.
  CacheCounters cache_counters() const;
  // Memo hits that skipped the LRU touch under write contention
  // (ShardedLruCache::lru_lock_skips).
  uint64_t cache_lock_skips() const;

  // Appends a compact binary image (sorted keys, delta-coded postings)
  // to `out`. The index must be Finish()ed first.
  void Serialize(std::vector<uint8_t>* out) const;
  // Restores an index from Serialize() output at buf[*pos...],
  // advancing *pos. Replaces the current contents.
  bool Deserialize(const std::vector<uint8_t>& buf, size_t* pos);

 private:
  static void SortDedup(std::vector<uint64_t>* v);

  std::unordered_map<std::string, std::vector<uint64_t>> token_postings_;
  std::unordered_map<std::string, std::vector<uint64_t>> exact_postings_;
  bool finished_ = false;
  // Memoized LookupSemantic results; see ConfigureCache. Null when
  // disabled.
  mutable std::unique_ptr<ShardedLruCache<std::string, std::vector<uint64_t>>>
      semantic_cache_;
};

}  // namespace sama

#endif  // SAMA_TEXT_INVERTED_INDEX_H_

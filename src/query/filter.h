#ifndef SAMA_QUERY_FILTER_H_
#define SAMA_QUERY_FILTER_H_

#include <string>
#include <vector>

#include "query/transformation.h"
#include "rdf/term.h"

namespace sama {

// One SPARQL FILTER constraint, restricted to the comparisons the
// benchmark workloads use:
//   FILTER(?x = ?y)  FILTER(?x != <iri>)  FILTER(?x = "literal")
//   FILTER regex(?x, "substring")          (plain substring match)
// Multiple FILTER clauses conjoin. Filters are evaluated on the final
// variable bindings (answers whose relevant variables are unbound fail
// equality/regex filters and pass inequality filters vacuously only if
// both sides are unbound).
struct FilterConstraint {
  enum class Kind { kEquals, kNotEquals, kRegex };

  Kind kind = Kind::kEquals;
  std::string left_var;   // Always a variable (without '?').
  // Exactly one of the two is used for the right-hand side:
  std::string right_var;  // Non-empty when comparing two variables.
  Term right_term;        // Used when right_var is empty.
  std::string pattern;    // kRegex: the substring to look for.

  // Evaluates this constraint against `binding`.
  bool Matches(const Substitution& binding) const;
};

// Applies every constraint; true only if all pass.
bool PassesFilters(const std::vector<FilterConstraint>& filters,
                   const Substitution& binding);

}  // namespace sama

#endif  // SAMA_QUERY_FILTER_H_

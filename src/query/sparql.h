#ifndef SAMA_QUERY_SPARQL_H_
#define SAMA_QUERY_SPARQL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/filter.h"
#include "query/query_graph.h"
#include "rdf/triple.h"

namespace sama {

// A parsed SPARQL SELECT query restricted to basic graph patterns —
// the query class the paper evaluates (conjunctive patterns, no
// OPTIONAL/UNION/FILTER).
struct SparqlQuery {
  std::vector<std::string> select_vars;  // Without '?'. Empty + select_all
  bool select_all = false;               // for SELECT *.
  bool distinct = false;                 // SELECT DISTINCT.
  std::vector<Triple> patterns;
  std::vector<FilterConstraint> filters;  // Conjoined FILTER clauses.
  size_t limit = 0;  // 0 = unlimited (the paper's "without imposing k").

  // Builds the query graph, optionally interning into a shared (data
  // graph) dictionary.
  QueryGraph ToQueryGraph(
      std::shared_ptr<TermDictionary> dict = nullptr) const {
    return QueryGraph::FromPatterns(patterns, std::move(dict));
  }
};

// Parses
//   PREFIX ns: <iri>
//   SELECT ?a ?b | * WHERE { triple patterns with ';' and ',' } LIMIT n
// into a SparqlQuery. Variables are written ?name or $name.
Result<SparqlQuery> ParseSparql(std::string_view text);

}  // namespace sama

#endif  // SAMA_QUERY_SPARQL_H_

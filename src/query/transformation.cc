#include "query/transformation.h"

#include <algorithm>

namespace sama {

const char* BasicOpName(BasicOp op) {
  switch (op) {
    case BasicOp::kNodeDelete:
      return "node-delete";
    case BasicOp::kNodeInsert:
      return "node-insert";
    case BasicOp::kEdgeDelete:
      return "edge-delete";
    case BasicOp::kEdgeInsert:
      return "edge-insert";
    case BasicOp::kNodeRelabel:
      return "node-relabel";
    case BasicOp::kEdgeRelabel:
      return "edge-relabel";
  }
  return "unknown";
}

bool Substitution::CompatibleWith(const Substitution& other) const {
  const Substitution* small = this;
  const Substitution* large = &other;
  if (small->bindings_.size() > large->bindings_.size()) {
    std::swap(small, large);
  }
  for (const auto& [var, value] : small->bindings_) {
    const Term* bound = large->Lookup(var);
    if (bound != nullptr && !(*bound == value)) return false;
  }
  return true;
}

bool Substitution::Merge(const Substitution& other) {
  bool consistent = true;
  for (const auto& [var, value] : other.bindings_) {
    // Keep merging past a conflict: the existing binding wins for the
    // conflicting variable, every other variable still transfers.
    if (!Bind(var, value)) consistent = false;
  }
  return consistent;
}

size_t Transformation::Count(BasicOp op) const {
  return static_cast<size_t>(std::count(ops_.begin(), ops_.end(), op));
}

}  // namespace sama

#include "query/sparql.h"

#include <cctype>
#include <map>

#include "common/string_util.h"

namespace sama {
namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

// Character-level scanner shared by the clause parsers.
class SparqlScanner {
 public:
  explicit SparqlScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Take() != '\n') {
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Take() { return text_[pos_++]; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  // Case-insensitive keyword match (consumes on success). The keyword
  // must be followed by a non-name character.
  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    size_t after = pos_ + kw.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::string TakeName() {
    std::string out;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        out.push_back(Take());
      } else {
        break;
      }
    }
    return out;
  }

  Status ErrorHere(std::string what) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError("line " + std::to_string(line) + ": " +
                              std::move(what));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

class SparqlParser {
 public:
  explicit SparqlParser(std::string_view text) : scan_(text) {}

  Result<SparqlQuery> Parse() {
    SparqlQuery query;
    while (scan_.ConsumeKeyword("PREFIX")) {
      SAMA_RETURN_IF_ERROR(ParsePrefix());
    }
    if (!scan_.ConsumeKeyword("SELECT")) {
      return scan_.ErrorHere("expected SELECT");
    }
    if (scan_.ConsumeKeyword("DISTINCT")) query.distinct = true;
    SAMA_RETURN_IF_ERROR(ParseProjection(&query));
    if (!scan_.ConsumeKeyword("WHERE")) {
      return scan_.ErrorHere("expected WHERE");
    }
    scan_.SkipSpace();
    if (!scan_.Consume('{')) return scan_.ErrorHere("expected '{'");
    SAMA_RETURN_IF_ERROR(ParsePatterns(&query));
    if (scan_.ConsumeKeyword("LIMIT")) {
      scan_.SkipSpace();
      std::string digits = scan_.TakeName();
      if (digits.empty()) return scan_.ErrorHere("expected LIMIT count");
      query.limit = 0;
      for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return scan_.ErrorHere("malformed LIMIT count");
        }
        query.limit = query.limit * 10 + static_cast<size_t>(c - '0');
      }
    }
    scan_.SkipSpace();
    if (!scan_.AtEnd()) return scan_.ErrorHere("trailing input after query");
    if (query.patterns.empty()) {
      return scan_.ErrorHere("empty graph pattern");
    }
    return query;
  }

 private:
  Status ParsePrefix() {
    scan_.SkipSpace();
    std::string prefix = scan_.TakeName();
    if (!scan_.Consume(':')) return scan_.ErrorHere("expected ':' in PREFIX");
    scan_.SkipSpace();
    Result<std::string> iri = ParseIriRef();
    if (!iri.ok()) return iri.status();
    prefixes_[prefix] = *iri;
    return Status::Ok();
  }

  Result<std::string> ParseIriRef() {
    if (!scan_.Consume('<')) return scan_.ErrorHere("expected '<'");
    std::string iri;
    while (!scan_.AtEnd()) {
      char c = scan_.Take();
      if (c == '>') return iri;
      iri.push_back(c);
    }
    return scan_.ErrorHere("unterminated IRI");
  }

  Status ParseProjection(SparqlQuery* query) {
    scan_.SkipSpace();
    if (scan_.Consume('*')) {
      query->select_all = true;
      return Status::Ok();
    }
    while (true) {
      scan_.SkipSpace();
      char c = scan_.Peek();
      if (c != '?' && c != '$') break;
      scan_.Take();
      std::string name = scan_.TakeName();
      if (name.empty()) return scan_.ErrorHere("empty variable name");
      query->select_vars.push_back(std::move(name));
    }
    if (query->select_vars.empty()) {
      return scan_.ErrorHere("SELECT needs '*' or at least one variable");
    }
    return Status::Ok();
  }

  Result<Term> ParseTermToken(bool as_predicate) {
    scan_.SkipSpace();
    char c = scan_.Peek();
    if (c == '?' || c == '$') {
      scan_.Take();
      std::string name = scan_.TakeName();
      if (name.empty()) return scan_.ErrorHere("empty variable name");
      return Term::Variable(std::move(name));
    }
    if (c == '<') {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(std::move(*iri));
    }
    if (c == '"') return ParseLiteral();
    if (c == '_') {
      scan_.Take();
      if (!scan_.Consume(':')) return scan_.ErrorHere("expected '_:'");
      return Term::Blank(scan_.TakeName());
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits = scan_.TakeName();
      return Term::Literal(std::move(digits));
    }
    std::string word = scan_.TakeName();
    if (scan_.Peek() == ':') {
      scan_.Take();
      std::string local = scan_.TakeName();
      auto it = prefixes_.find(word);
      if (it == prefixes_.end()) {
        return scan_.ErrorHere("undeclared prefix '" + word + ":'");
      }
      return Term::Iri(it->second + local);
    }
    if (word == "a" && as_predicate) return Term::Iri(std::string(kRdfType));
    return scan_.ErrorHere("unexpected token '" + word + "'");
  }

  Result<Term> ParseLiteral() {
    scan_.Take();  // Opening quote.
    std::string value;
    bool closed = false;
    while (!scan_.AtEnd()) {
      char c = scan_.Take();
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\' && !scan_.AtEnd()) {
        char e = scan_.Take();
        value.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
        continue;
      }
      value.push_back(c);
    }
    if (!closed) return scan_.ErrorHere("unterminated literal");
    if (scan_.Consume('@')) {
      std::string lang = scan_.TakeName();
      return Term::LangLiteral(std::move(value), std::move(lang));
    }
    if (scan_.Peek() == '^') {
      scan_.Take();
      if (!scan_.Consume('^')) return scan_.ErrorHere("expected '^^'");
      Result<Term> dt = ParseTermToken(/*as_predicate=*/false);
      if (!dt.ok()) return dt.status();
      return Term::TypedLiteral(std::move(value), dt->value());
    }
    return Term::Literal(std::move(value));
  }

  // FILTER(?x != ?y) / FILTER(?x = <iri>) / FILTER regex(?x, "sub").
  Status ParseFilter(SparqlQuery* query) {
    scan_.SkipSpace();
    FilterConstraint constraint;
    bool is_regex = scan_.ConsumeKeyword("regex");
    scan_.SkipSpace();
    if (!scan_.Consume('(')) return scan_.ErrorHere("expected '('");
    Result<Term> left = ParseTermToken(/*as_predicate=*/false);
    if (!left.ok()) return left.status();
    if (!left->is_variable()) {
      return scan_.ErrorHere("FILTER left-hand side must be a variable");
    }
    constraint.left_var = left->value();
    scan_.SkipSpace();
    if (is_regex) {
      constraint.kind = FilterConstraint::Kind::kRegex;
      if (!scan_.Consume(',')) return scan_.ErrorHere("expected ','");
      Result<Term> pattern = ParseTermToken(/*as_predicate=*/false);
      if (!pattern.ok()) return pattern.status();
      if (!pattern->is_literal()) {
        return scan_.ErrorHere("regex pattern must be a string literal");
      }
      constraint.pattern = pattern->value();
    } else {
      if (scan_.Consume('!')) {
        constraint.kind = FilterConstraint::Kind::kNotEquals;
        if (!scan_.Consume('=')) return scan_.ErrorHere("expected '!='");
      } else if (scan_.Consume('=')) {
        constraint.kind = FilterConstraint::Kind::kEquals;
      } else {
        return scan_.ErrorHere("expected '=' or '!=' in FILTER");
      }
      Result<Term> right = ParseTermToken(/*as_predicate=*/false);
      if (!right.ok()) return right.status();
      if (right->is_variable()) {
        constraint.right_var = right->value();
      } else {
        constraint.right_term = std::move(*right);
      }
    }
    scan_.SkipSpace();
    if (!scan_.Consume(')')) return scan_.ErrorHere("expected ')'");
    query->filters.push_back(std::move(constraint));
    return Status::Ok();
  }

  Status ParsePatterns(SparqlQuery* query) {
    while (true) {
      scan_.SkipSpace();
      if (scan_.Consume('}')) return Status::Ok();
      if (scan_.AtEnd()) return scan_.ErrorHere("unterminated pattern block");
      if (scan_.ConsumeKeyword("FILTER")) {
        SAMA_RETURN_IF_ERROR(ParseFilter(query));
        scan_.SkipSpace();
        scan_.Consume('.');
        continue;
      }

      Result<Term> subject = ParseTermToken(/*as_predicate=*/false);
      if (!subject.ok()) return subject.status();

      while (true) {
        Result<Term> predicate = ParseTermToken(/*as_predicate=*/true);
        if (!predicate.ok()) return predicate.status();
        while (true) {
          Result<Term> object = ParseTermToken(/*as_predicate=*/false);
          if (!object.ok()) return object.status();
          query->patterns.push_back(
              Triple{*subject, *predicate, std::move(*object)});
          scan_.SkipSpace();
          if (!scan_.Consume(',')) break;
        }
        scan_.SkipSpace();
        if (scan_.Consume(';')) {
          scan_.SkipSpace();
          if (scan_.Peek() == '.' || scan_.Peek() == '}') break;
          continue;
        }
        break;
      }
      scan_.SkipSpace();
      scan_.Consume('.');  // Trailing '.' before '}' is optional.
    }
  }

  SparqlScanner scan_;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SparqlQuery> ParseSparql(std::string_view text) {
  SparqlParser parser(text);
  return parser.Parse();
}

}  // namespace sama

#include "query/filter.h"

#include "text/tokenizer.h"

namespace sama {

bool FilterConstraint::Matches(const Substitution& binding) const {
  const Term* left = binding.Lookup(left_var);
  if (kind == Kind::kRegex) {
    if (left == nullptr) return false;
    // Case-insensitive substring match (the pragmatic core of the
    // regex() calls the workloads use).
    return NormalizeLabel(left->DisplayLabel())
               .find(NormalizeLabel(pattern)) != std::string::npos;
  }

  const Term* right = nullptr;
  Term right_storage;
  if (!right_var.empty()) {
    right = binding.Lookup(right_var);
  } else {
    right_storage = right_term;
    right = &right_storage;
  }

  bool equal;
  if (left == nullptr || right == nullptr) {
    // Unbound variables: only two unbound sides compare equal.
    equal = (left == nullptr && right == nullptr);
  } else {
    equal = (*left == *right);
  }
  return kind == Kind::kEquals ? equal : !equal;
}

bool PassesFilters(const std::vector<FilterConstraint>& filters,
                   const Substitution& binding) {
  for (const FilterConstraint& f : filters) {
    if (!f.Matches(binding)) return false;
  }
  return true;
}

}  // namespace sama

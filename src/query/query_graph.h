#ifndef SAMA_QUERY_QUERY_GRAPH_H_
#define SAMA_QUERY_QUERY_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "graph/path.h"
#include "graph/path_enumerator.h"

namespace sama {

// A query graph Q (Definition 2): a data graph whose node labels range
// over U ∪ L ∪ VAR and whose edge labels range over U ∪ VAR. Wraps a
// DataGraph and precomputes the query's path decomposition PQ, which is
// what the whole answering pipeline consumes.
class QueryGraph {
 public:
  QueryGraph() = default;

  // Builds the graph from triple patterns (variables allowed anywhere a
  // Definition-2 label admits them). When `dict` is provided — normally
  // the data graph's dictionary — query labels intern into the same
  // TermId space as the data, making labels directly comparable.
  static QueryGraph FromPatterns(const std::vector<Triple>& patterns,
                                 std::shared_ptr<TermDictionary> dict =
                                     nullptr);

  const DataGraph& graph() const { return graph_; }
  DataGraph& graph() { return graph_; }
  const TermDictionary& dict() const { return graph_.dict(); }

  // The set PQ of all source→sink paths of Q, computed once by BFS from
  // every source (§5 Preprocessing).
  const std::vector<Path>& paths() const { return paths_; }

  // Distinct variables appearing in the query.
  const std::vector<Term>& variables() const { return variables_; }
  size_t num_variables() const { return variables_.size(); }

  // Total node count (Figure 7b's x axis).
  size_t num_nodes() const { return graph_.node_count(); }

  // Depth h of the query: the maximum path length (node count) over PQ;
  // appears in the O(h·I²) search bound.
  size_t depth() const;

  // Whether `label` (a term id in this query's dictionary) is a
  // variable.
  bool IsVariableLabel(TermId label) const {
    return dict().term(label).is_variable();
  }

  // The last constant value of `q` scanning from the sink backwards —
  // the cluster key when the sink itself is a variable (§5 Clustering).
  // Checks node labels first at each position, then edge labels.
  // Returns kInvalidTermId when the path is all-variable.
  TermId LastConstantFromSink(const Path& q) const;

 private:
  void FinalizePaths();

  DataGraph graph_;
  std::vector<Path> paths_;
  std::vector<Term> variables_;
};

}  // namespace sama

#endif  // SAMA_QUERY_QUERY_GRAPH_H_

#include "query/query_graph.h"

#include <algorithm>
#include <unordered_set>

namespace sama {

QueryGraph QueryGraph::FromPatterns(const std::vector<Triple>& patterns,
                                    std::shared_ptr<TermDictionary> dict) {
  QueryGraph q;
  if (dict != nullptr) q.graph_ = DataGraph(std::move(dict));
  std::unordered_set<std::string> seen_vars;
  auto note_variable = [&](const Term& t) {
    if (t.is_variable() && seen_vars.insert(t.value()).second) {
      q.variables_.push_back(t);
    }
  };
  for (const Triple& t : patterns) {
    NodeId s = q.graph_.AddNode(t.subject);
    NodeId o = q.graph_.AddNode(t.object);
    q.graph_.AddEdge(s, o, t.predicate);
    note_variable(t.subject);
    note_variable(t.predicate);
    note_variable(t.object);
  }
  q.FinalizePaths();
  return q;
}

void QueryGraph::FinalizePaths() {
  paths_ = AllPaths(graph_);
  // Longer (more selective) paths first: the clustering step benefits
  // from processing the most constrained paths before the 1-edge ones.
  std::stable_sort(paths_.begin(), paths_.end(),
                   [](const Path& a, const Path& b) {
                     return a.length() > b.length();
                   });
}

size_t QueryGraph::depth() const {
  size_t h = 0;
  for (const Path& p : paths_) h = std::max(h, p.length());
  return h;
}

TermId QueryGraph::LastConstantFromSink(const Path& q) const {
  for (size_t i = q.node_labels.size(); i-- > 0;) {
    if (!IsVariableLabel(q.node_labels[i])) return q.node_labels[i];
    if (i > 0 && i - 1 < q.edge_labels.size() &&
        !IsVariableLabel(q.edge_labels[i - 1])) {
      return q.edge_labels[i - 1];
    }
  }
  return kInvalidTermId;
}

}  // namespace sama

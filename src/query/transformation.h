#ifndef SAMA_QUERY_TRANSFORMATION_H_
#define SAMA_QUERY_TRANSFORMATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sama {

// The basic update operations a transformation τ is made of
// (Definition 3): insertions, deletions and label modifications of
// nodes and edges.
enum class BasicOp : uint8_t {
  kNodeDelete = 0,  // ε‾N — weight a.
  kNodeInsert,      // ε↑N — weight b.
  kEdgeDelete,      // ε‾E — weight c.
  kEdgeInsert,      // ε↑E — weight d.
  kNodeRelabel,     // ε×N — weight 0 (Theorem 1 proof).
  kEdgeRelabel,     // ε×E — weight 0.
};

const char* BasicOpName(BasicOp op);

// The relevance-weight function ω (Definition 4 / Theorem 1 proof).
// Defaults are the setting used in the paper's experiments (§6.2):
// a=1, b=0.5, c=2, d=1; relabelings are free so an answer gathering
// more labels than Q is not penalised.
struct OpWeights {
  double node_delete = 1.0;   // a
  double node_insert = 0.5;   // b
  double edge_delete = 2.0;   // c
  double edge_insert = 1.0;   // d
  double node_relabel = 0.0;
  double edge_relabel = 0.0;

  double Of(BasicOp op) const {
    switch (op) {
      case BasicOp::kNodeDelete:
        return node_delete;
      case BasicOp::kNodeInsert:
        return node_insert;
      case BasicOp::kEdgeDelete:
        return edge_delete;
      case BasicOp::kEdgeInsert:
        return edge_insert;
      case BasicOp::kNodeRelabel:
        return node_relabel;
      case BasicOp::kEdgeRelabel:
        return edge_relabel;
    }
    return 0.0;
  }
};

// A substitution φ (Definition 3): maps variable names (without '?') to
// the constant terms they are bound to.
class Substitution {
 public:
  // Binds `var` to `value`. Returns false on a conflicting rebinding
  // (the existing binding wins).
  bool Bind(const std::string& var, const Term& value) {
    auto [it, inserted] = bindings_.emplace(var, value);
    return inserted || it->second == value;
  }

  const Term* Lookup(const std::string& var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  size_t size() const { return bindings_.size(); }
  const std::unordered_map<std::string, Term>& bindings() const {
    return bindings_;
  }

  // True when every binding of `other` is compatible with this one.
  bool CompatibleWith(const Substitution& other) const;

  // Merges `other` into this substitution. Returns false when any
  // variable conflicted (the existing binding wins); all other
  // variables transfer regardless.
  bool Merge(const Substitution& other);

 private:
  std::unordered_map<std::string, Term> bindings_;
};

// A transformation τ: the recorded sequence of basic update operations
// that turned φ(Q) (or one of its paths) into an answer path.
class Transformation {
 public:
  void Add(BasicOp op) { ops_.push_back(op); }

  const std::vector<BasicOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

  // The cost γ(τ) (Definition 4): the ω-weighted sum of the operations.
  // The paper's formula carries an extra z· factor (z = |τ|); it cancels
  // in every relevance comparison and would break the γ(τ)=λ(p,q)
  // identity the Theorem-1 proof relies on, so the weighted sum is the
  // default and the factor is opt-in.
  double Cost(const OpWeights& w, bool multiply_by_length = false) const {
    double sum = 0;
    for (BasicOp op : ops_) sum += w.Of(op);
    return multiply_by_length ? static_cast<double>(ops_.size()) * sum : sum;
  }

  // Number of operations of each kind, for introspection/tests.
  size_t Count(BasicOp op) const;

 private:
  std::vector<BasicOp> ops_;
};

}  // namespace sama

#endif  // SAMA_QUERY_TRANSFORMATION_H_

#ifndef SAMA_RDF_TURTLE_H_
#define SAMA_RDF_TURTLE_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace sama {

// Parses a practical subset of Turtle (https://www.w3.org/TR/turtle/):
//   @prefix / @base directives, prefixed names, the 'a' keyword,
//   ';' predicate lists, ',' object lists, quoted literals with
//   language tags and datatypes, numeric and boolean shorthand
//   literals, blank node labels, and '#' comments.
// Unsupported: collections '( )', anonymous blanks '[ ]', multiline
// literals. These return a ParseError naming the construct.
Result<std::vector<Triple>> ParseTurtle(std::string_view text);

// Serialises triples as Turtle: IRIs sharing a namespace (split at the
// last '#' or '/') are compressed through generated @prefix
// declarations, and consecutive triples with the same subject fold into
// ';' predicate lists. The output round-trips through ParseTurtle.
std::string WriteTurtle(const std::vector<Triple>& triples);

}  // namespace sama

#endif  // SAMA_RDF_TURTLE_H_

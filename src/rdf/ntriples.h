#ifndef SAMA_RDF_NTRIPLES_H_
#define SAMA_RDF_NTRIPLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/triple.h"

namespace sama {

// Streaming N-Triples / N-Quads parser
// (https://www.w3.org/TR/n-triples/, https://www.w3.org/TR/n-quads/,
// minus UCHAR escapes beyond \uXXXX). Input is parsed line by line;
// comments ('#' lines) and blank lines are skipped. An optional fourth
// term (the N-Quads graph label) is accepted and discarded — the data
// model is a single graph, as in the paper.
class NTriplesParser {
 public:
  // Parses a whole document into triples. Fails on the first malformed
  // line, reporting its 1-based line number.
  static Result<std::vector<Triple>> ParseDocument(std::string_view text);

  // Parses one statement line ("<s> <p> <o> ." or
  // "<s> <p> <o> <g> ."). Returns NotFound for blank/comment lines so
  // callers can skip them.
  static Result<Triple> ParseLine(std::string_view line);
};

// Serialises triples back to N-Triples text (one statement per line).
std::string WriteNTriples(const std::vector<Triple>& triples);

}  // namespace sama

#endif  // SAMA_RDF_NTRIPLES_H_

#ifndef SAMA_RDF_TERM_H_
#define SAMA_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/hash.h"

namespace sama {

// One RDF term: an IRI, a literal, a blank node, or (in query graphs
// only, Definition 2) a variable. The paper's node-label alphabet is
// ΣN = U ∪ L (∪ VAR for queries) and the edge-label alphabet is
// ΣE = U (∪ VAR); Term covers all of these.
class Term {
 public:
  enum class Kind : uint8_t {
    kIri = 0,
    kLiteral = 1,
    kBlank = 2,
    kVariable = 3,
  };

  Term() : kind_(Kind::kIri) {}

  static Term Iri(std::string value) {
    return Term(Kind::kIri, std::move(value), "", "");
  }
  static Term Literal(std::string value) {
    return Term(Kind::kLiteral, std::move(value), "", "");
  }
  static Term TypedLiteral(std::string value, std::string datatype) {
    return Term(Kind::kLiteral, std::move(value), std::move(datatype), "");
  }
  static Term LangLiteral(std::string value, std::string lang) {
    return Term(Kind::kLiteral, std::move(value), "", std::move(lang));
  }
  static Term Blank(std::string label) {
    return Term(Kind::kBlank, std::move(label), "", "");
  }
  // `name` excludes the leading '?'.
  static Term Variable(std::string name) {
    return Term(Kind::kVariable, std::move(name), "", "");
  }

  Kind kind() const { return kind_; }
  bool is_iri() const { return kind_ == Kind::kIri; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }
  bool is_blank() const { return kind_ == Kind::kBlank; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  // True for IRIs, literals and blanks — anything that can appear in a
  // data graph (variables cannot).
  bool is_constant() const { return kind_ != Kind::kVariable; }

  // The lexical value: full IRI text, literal content, blank label, or
  // variable name without '?'.
  const std::string& value() const { return value_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& language() const { return language_; }

  // N-Triples surface syntax: <iri>, "literal", _:blank, ?var.
  std::string ToString() const;

  // Short human-readable label: the IRI fragment/local name for IRIs,
  // the bare value otherwise. This is what the similarity measure
  // compares and what the inverted label index tokenizes.
  std::string DisplayLabel() const;

  uint64_t Hash() const {
    uint64_t h = Fnv1a64(value_);
    h = HashCombine(h, static_cast<uint64_t>(kind_));
    h = HashCombine(h, Fnv1a64(datatype_));
    h = HashCombine(h, Fnv1a64(language_));
    return h;
  }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.value_ == b.value_ &&
           a.datatype_ == b.datatype_ && a.language_ == b.language_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.value_ != b.value_) return a.value_ < b.value_;
    if (a.datatype_ != b.datatype_) return a.datatype_ < b.datatype_;
    return a.language_ < b.language_;
  }

 private:
  Term(Kind kind, std::string value, std::string datatype, std::string lang)
      : kind_(kind),
        value_(std::move(value)),
        datatype_(std::move(datatype)),
        language_(std::move(lang)) {}

  Kind kind_;
  std::string value_;
  std::string datatype_;
  std::string language_;
};

}  // namespace sama

#endif  // SAMA_RDF_TERM_H_

#ifndef SAMA_RDF_TRIPLE_H_
#define SAMA_RDF_TRIPLE_H_

#include <string>

#include "rdf/term.h"

namespace sama {

// One RDF statement (subject, predicate, object).
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  std::string ToString() const {
    return subject.ToString() + " " + predicate.ToString() + " " +
           object.ToString() + " .";
  }

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

}  // namespace sama

#endif  // SAMA_RDF_TRIPLE_H_

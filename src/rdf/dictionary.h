#ifndef SAMA_RDF_DICTIONARY_H_
#define SAMA_RDF_DICTIONARY_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "rdf/term.h"

namespace sama {

// Dense integer id assigned to an interned Term. Ids are stable for the
// lifetime of the dictionary and index into term(...) in O(1).
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0xffffffffu;

// Interns Terms to dense TermIds so graphs, paths and indexes can store
// 4-byte ids instead of strings.
//
// Thread safety: the dictionary keeps growing at query time (query
// constants and variables intern through the shared handle), so every
// member is safe to call concurrently. The design follows the
// lock-free-read / serialized-write split:
//   * term(id) is wait-free — terms live in fixed-size chunks whose
//     slots never move, and a chunk pointer is published (release)
//     before any id inside it can be observed, so readers need no lock;
//   * Find() takes the shared side of a shared_mutex over the string →
//     id hash map;
//   * Intern() takes the exclusive side only when the term is genuinely
//     new (double-checked after a shared-lock miss).
class TermDictionary {
 public:
  TermDictionary()
      : chunks_(new std::atomic<Term*>[kMaxChunks]()) {}

  ~TermDictionary() {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      Term* chunk = chunks_[c].load(std::memory_order_relaxed);
      if (chunk == nullptr) break;
      delete[] chunk;
    }
  }

  // Dictionaries are shared by reference (shared_ptr) between
  // graph/query/index; accidental copies of a multi-million-entry table
  // are almost always bugs, and moving would invalidate the lock-free
  // readers, so both are disabled.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = delete;
  TermDictionary& operator=(TermDictionary&&) = delete;

  // Returns the id of `term`, interning it on first sight.
  TermId Intern(const Term& term) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = ids_.find(term);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(term);  // Re-check: we may have lost the race.
    if (it != ids_.end()) return it->second;
    size_t n = size_.load(std::memory_order_relaxed);
    size_t chunk_index = n >> kChunkShift;
    assert(chunk_index < kMaxChunks && "term dictionary full");
    Term* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Term[kChunkSize];
      // Release: a reader that learns an id in this chunk (via the map,
      // the size counter, or data derived from them) must see the
      // pointer.
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[n & kChunkMask] = term;
    TermId id = static_cast<TermId>(n);
    ids_.emplace(term, id);
    size_.store(n + 1, std::memory_order_release);
    return id;
  }

  // Returns the id of `term`, or kInvalidTermId when absent.
  TermId Find(const Term& term) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(term);
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  // Requires id < size(). Wait-free; the returned reference stays valid
  // for the dictionary's lifetime (slots never move).
  const Term& term(TermId id) const {
    const Term* chunk =
        chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    return chunk[id & kChunkMask];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Estimated resident bytes (used in Table-1-style space reporting).
  uint64_t MemoryBytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    uint64_t bytes = sizeof(*this) + kMaxChunks * sizeof(std::atomic<Term*>);
    size_t n = size_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const Term& t = term(static_cast<TermId>(i));
      bytes += sizeof(Term) + t.value().size() + t.datatype().size() +
               t.language().size();
    }
    // Hash-map overhead: bucket array plus node bookkeeping.
    bytes += ids_.bucket_count() * sizeof(void*);
    bytes += ids_.size() * (sizeof(void*) * 2 + sizeof(TermId) +
                            sizeof(Term));
    return bytes;
  }

 private:
  struct TermHash {
    size_t operator()(const Term& t) const {
      return static_cast<size_t>(t.Hash());
    }
  };

  // 4096 terms per chunk × 16384 chunks = up to 67M distinct terms; the
  // chunk directory costs 128 KiB per dictionary.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 14;

  mutable std::shared_mutex mu_;
  std::atomic<size_t> size_{0};
  std::unique_ptr<std::atomic<Term*>[]> chunks_;
  std::unordered_map<Term, TermId, TermHash> ids_;
};

}  // namespace sama

#endif  // SAMA_RDF_DICTIONARY_H_

#ifndef SAMA_RDF_DICTIONARY_H_
#define SAMA_RDF_DICTIONARY_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/epoch.h"
#include "rdf/term.h"

namespace sama {

// Dense integer id assigned to an interned Term. Ids are stable for the
// lifetime of the dictionary and index into term(...) in O(1).
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0xffffffffu;

// Interns Terms to dense TermIds so graphs, paths and indexes can store
// 4-byte ids instead of strings.
//
// Thread safety: the dictionary keeps growing at query time (query
// constants, variables and live updates intern through the shared
// handle), so every member is safe to call concurrently. The design is
// the RCU lock-free-read / mutex-coordinated-write split (DESIGN.md
// §13):
//   * term(id) is wait-free — terms live in fixed-size chunks whose
//     slots never move, and a chunk pointer is published (release)
//     before any id inside it can be observed, so readers need no lock;
//   * Find() is a lock-free probe of an open-addressing index table:
//     an epoch pin, an acquire load of the table pointer, and a short
//     linear probe over atomic slots. No reader ever blocks on a
//     writer, and concurrent Finds share nothing but cache lines;
//   * Intern() serializes writers on a plain mutex. New entries are
//     published into the live table with a single release store;
//     growth builds a fresh table, publishes it with a release store
//     of the table pointer, and retires the old table through the
//     epoch manager — readers still probing it finish safely and new
//     readers see the bigger one.
class TermDictionary {
 public:
  explicit TermDictionary(EpochManager* epochs = EpochManager::Global())
      : epochs_(epochs),
        retired_(epochs),
        chunks_(new std::atomic<Term*>[kMaxChunks]()) {
    table_.store(IndexTable::Make(kInitialTableSlots),
                 std::memory_order_release);
  }

  ~TermDictionary() {
    // No readers may be pinned inside a dictionary being destroyed;
    // retired tables drain unconditionally (RetireList teardown).
    IndexTable::Free(table_.load(std::memory_order_relaxed));
    for (size_t c = 0; c < kMaxChunks; ++c) {
      Term* chunk = chunks_[c].load(std::memory_order_relaxed);
      if (chunk == nullptr) break;
      delete[] chunk;
    }
  }

  // Dictionaries are shared by reference (shared_ptr) between
  // graph/query/index; accidental copies of a multi-million-entry table
  // are almost always bugs, and moving would invalidate the lock-free
  // readers, so both are disabled.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = delete;
  TermDictionary& operator=(TermDictionary&&) = delete;

  // Returns the id of `term`, interning it on first sight.
  TermId Intern(const Term& term) {
    uint64_t hash = term.Hash();
    {
      // Fast path: already interned — the common case at query time —
      // resolves with the same lock-free probe Find uses.
      EpochGuard guard(epochs_);
      TermId id = Probe(table_.load(std::memory_order_acquire), term, hash);
      if (id != kInvalidTermId) return id;
    }
    std::lock_guard<std::mutex> lock(write_mu_);
    // Re-check: we may have lost the race to another writer. The table
    // cannot change under us — we are the only writer now.
    IndexTable* table = table_.load(std::memory_order_relaxed);
    TermId id = Probe(table, term, hash);
    if (id != kInvalidTermId) return id;
    size_t n = size_.load(std::memory_order_relaxed);
    size_t chunk_index = n >> kChunkShift;
    assert(chunk_index < kMaxChunks && "term dictionary full");
    Term* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Term[kChunkSize];
      // Release: a reader that learns an id in this chunk (via the
      // index, the size counter, or data derived from them) must see
      // the pointer.
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[n & kChunkMask] = term;
    id = static_cast<TermId>(n);
    if ((table_entries_ + 1) * 4 > table->slot_count * 3) {
      table = Grow(table);
    }
    // Publish: the term bytes above happen-before this release store,
    // so a reader whose probe hits the slot sees a fully-built Term.
    Insert(table, hash, id);
    ++table_entries_;
    size_.store(n + 1, std::memory_order_release);
    return id;
  }

  // Returns the id of `term`, or kInvalidTermId when absent. Lock-free:
  // concurrent writers never block this probe, and a racing Intern is
  // simply either visible (id returned) or not yet (invalid returned) —
  // both linearizable outcomes.
  TermId Find(const Term& term) const {
    EpochGuard guard(epochs_);
    return Probe(table_.load(std::memory_order_acquire), term, term.Hash());
  }

  // Requires id < size(). Wait-free; the returned reference stays valid
  // for the dictionary's lifetime (slots never move).
  const Term& term(TermId id) const {
    const Term* chunk =
        chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    return chunk[id & kChunkMask];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Estimated resident bytes (used in Table-1-style space reporting).
  uint64_t MemoryBytes() const {
    std::lock_guard<std::mutex> lock(write_mu_);
    uint64_t bytes = sizeof(*this) + kMaxChunks * sizeof(std::atomic<Term*>);
    size_t n = size_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const Term& t = term(static_cast<TermId>(i));
      bytes += sizeof(Term) + t.value().size() + t.datatype().size() +
               t.language().size();
    }
    const IndexTable* table = table_.load(std::memory_order_relaxed);
    bytes += sizeof(IndexTable) +
             table->slot_count * sizeof(std::atomic<uint64_t>);
    return bytes;
  }

  EpochManager* epoch_manager() const { return epochs_; }

 private:
  // Open-addressing index over the interned terms. Slots pack a 32-bit
  // hash fingerprint with (id + 1) so one atomic word publishes a whole
  // entry; 0 means empty. Entries are only ever added (terms are never
  // un-interned), so a probe may stop at the first empty slot.
  struct IndexTable {
    size_t slot_count;  // Power of two.
    size_t mask;
    std::atomic<uint64_t>* slots;

    static IndexTable* Make(size_t count) {
      auto* t = new IndexTable();
      t->slot_count = count;
      t->mask = count - 1;
      t->slots = new std::atomic<uint64_t>[count]();
      return t;
    }
    static void Free(IndexTable* t) {
      delete[] t->slots;
      delete t;
    }
  };

  static uint64_t PackSlot(uint64_t hash, TermId id) {
    return (hash >> 32 << 32) | (static_cast<uint64_t>(id) + 1);
  }

  TermId Probe(const IndexTable* table, const Term& t, uint64_t hash) const {
    uint32_t fingerprint = static_cast<uint32_t>(hash >> 32);
    for (size_t i = hash & table->mask;; i = (i + 1) & table->mask) {
      uint64_t slot = table->slots[i].load(std::memory_order_acquire);
      if (slot == 0) return kInvalidTermId;
      if (static_cast<uint32_t>(slot >> 32) != fingerprint) continue;
      TermId id = static_cast<TermId>(slot & 0xffffffffu) - 1;
      if (term(id) == t) return id;
    }
  }

  // Requires write_mu_. Stores into the first free slot (the caller
  // has already established absence).
  void Insert(IndexTable* table, uint64_t hash, TermId id) {
    for (size_t i = hash & table->mask;; i = (i + 1) & table->mask) {
      if (table->slots[i].load(std::memory_order_relaxed) == 0) {
        table->slots[i].store(PackSlot(hash, id), std::memory_order_release);
        return;
      }
    }
  }

  // Requires write_mu_. Publishes a double-size table and retires the
  // old one; returns the new table.
  IndexTable* Grow(IndexTable* old) {
    IndexTable* bigger = IndexTable::Make(old->slot_count * 2);
    for (size_t i = 0; i < old->slot_count; ++i) {
      uint64_t slot = old->slots[i].load(std::memory_order_relaxed);
      if (slot == 0) continue;
      TermId id = static_cast<TermId>(slot & 0xffffffffu) - 1;
      Insert(bigger, term(id).Hash(), id);
    }
    table_.store(bigger, std::memory_order_release);
    retired_.RetireRaw(old, [](void* p) {
      IndexTable::Free(static_cast<IndexTable*>(p));
    });
    return bigger;
  }

  // 4096 terms per chunk × 16384 chunks = up to 67M distinct terms; the
  // chunk directory costs 128 KiB per dictionary.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 14;
  static constexpr size_t kInitialTableSlots = 1024;

  EpochManager* epochs_;
  RetireList retired_;  // Superseded index tables.
  mutable std::mutex write_mu_;
  std::atomic<size_t> size_{0};
  size_t table_entries_ = 0;  // Occupancy; writer-side only.
  std::unique_ptr<std::atomic<Term*>[]> chunks_;
  std::atomic<IndexTable*> table_{nullptr};
};

}  // namespace sama

#endif  // SAMA_RDF_DICTIONARY_H_

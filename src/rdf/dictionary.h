#ifndef SAMA_RDF_DICTIONARY_H_
#define SAMA_RDF_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sama {

// Dense integer id assigned to an interned Term. Ids are stable for the
// lifetime of the dictionary and index into term(...) in O(1).
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0xffffffffu;

// Interns Terms to dense TermIds so graphs, paths and indexes can store
// 4-byte ids instead of strings. Not thread-safe for concurrent writes.
class TermDictionary {
 public:
  TermDictionary() = default;

  // Dictionaries are shared by reference between graph/query/index;
  // accidental copies of a multi-million-entry table are almost always
  // bugs, so copying is disabled.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  // Returns the id of `term`, interning it on first sight.
  TermId Intern(const Term& term) {
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    terms_.push_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
  }

  // Returns the id of `term`, or kInvalidTermId when absent.
  TermId Find(const Term& term) const {
    auto it = ids_.find(term);
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  // Requires id < size().
  const Term& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  // Estimated resident bytes (used in Table-1-style space reporting).
  uint64_t MemoryBytes() const {
    uint64_t bytes = sizeof(*this);
    for (const Term& t : terms_) {
      bytes += sizeof(Term) + t.value().size() + t.datatype().size() +
               t.language().size();
    }
    // Hash-map overhead: bucket array plus node bookkeeping.
    bytes += ids_.bucket_count() * sizeof(void*);
    bytes += ids_.size() * (sizeof(void*) * 2 + sizeof(TermId));
    return bytes;
  }

 private:
  struct TermHash {
    size_t operator()(const Term& t) const {
      return static_cast<size_t>(t.Hash());
    }
  };

  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> ids_;
};

}  // namespace sama

#endif  // SAMA_RDF_DICTIONARY_H_

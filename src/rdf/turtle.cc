#include "rdf/turtle.h"

#include <cctype>
#include <map>
#include <string>

namespace sama {
namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

// Recursive-descent Turtle reader over the whole document.
class TurtleReader {
 public:
  explicit TurtleReader(std::string_view text) : text_(text) {}

  Result<std::vector<Triple>> Parse() {
    std::vector<Triple> out;
    while (true) {
      SkipSpaceAndComments();
      if (AtEnd()) break;
      if (Peek() == '@') {
        SAMA_RETURN_IF_ERROR(ParseDirective());
        continue;
      }
      SAMA_RETURN_IF_ERROR(ParseStatement(&out));
    }
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Take() { return text_[pos_++]; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  void SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Take() != '\n') {
        }
      } else {
        break;
      }
    }
  }

  Status ErrorHere(std::string what) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError("line " + std::to_string(line) + ": " +
                              std::move(what));
  }

  Status ParseDirective() {
    // Caller saw '@'.
    ++pos_;
    std::string keyword = TakeWord();
    SkipSpaceAndComments();
    if (keyword == "prefix") {
      std::string prefix;
      while (!AtEnd() && Peek() != ':') prefix.push_back(Take());
      if (!Consume(':')) return ErrorHere("expected ':' in @prefix");
      SkipSpaceAndComments();
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      prefixes_[prefix] = *iri;
    } else if (keyword == "base") {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      base_ = *iri;
    } else {
      return ErrorHere("unknown directive @" + keyword);
    }
    SkipSpaceAndComments();
    if (!Consume('.')) return ErrorHere("directive must end with '.'");
    return Status::Ok();
  }

  std::string TakeWord() {
    std::string word;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '_')) {
      word.push_back(Take());
    }
    return word;
  }

  Result<std::string> ParseIriRef() {
    if (!Consume('<')) return ErrorHere("expected '<'");
    std::string iri;
    while (!AtEnd()) {
      char c = Take();
      if (c == '>') {
        if (!iri.empty() && iri.find("://") == std::string::npos &&
            !base_.empty()) {
          return base_ + iri;  // Relative IRI resolution (prefix concat).
        }
        return iri;
      }
      iri.push_back(c);
    }
    return ErrorHere("unterminated IRI");
  }

  Result<Term> ParseTermToken(bool as_predicate) {
    SkipSpaceAndComments();
    if (AtEnd()) return ErrorHere("unexpected end of input");
    char c = Peek();
    if (c == '<') {
      Result<std::string> iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(std::move(*iri));
    }
    if (c == '"') return ParseQuotedLiteral();
    if (c == '_') {
      ++pos_;
      if (!Consume(':')) return ErrorHere("expected ':' after '_'");
      std::string label = TakeNameChars();
      if (label.empty()) return ErrorHere("empty blank node label");
      return Term::Blank(std::move(label));
    }
    if (c == '(' || c == '[') {
      return ErrorHere(std::string("unsupported Turtle construct '") + c +
                       "'");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
        c == '-') {
      return ParseNumericLiteral();
    }
    // Prefixed name, 'a', or boolean.
    std::string word = TakeNameChars();
    if (Peek() == ':') {
      ++pos_;
      std::string local = TakeNameChars();
      auto it = prefixes_.find(word);
      if (it == prefixes_.end()) {
        return ErrorHere("undeclared prefix '" + word + ":'");
      }
      return Term::Iri(it->second + local);
    }
    if (word == "a" && !as_predicate) {
      return ErrorHere("'a' is only valid as a predicate");
    }
    if (word == "a") return Term::Iri(std::string(kRdfType));
    if (word == "true" || word == "false") {
      return Term::TypedLiteral(word, std::string(kXsdBoolean));
    }
    if (word.empty()) {
      return ErrorHere(std::string("unexpected character '") + c + "'");
    }
    return ErrorHere("unknown token '" + word + "'");
  }

  std::string TakeNameChars() {
    std::string out;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        // A '.' followed by whitespace/end terminates the statement, not
        // the name.
        if (c == '.') {
          char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
          if (!std::isalnum(static_cast<unsigned char>(next)) &&
              next != '_' && next != '-') {
            break;
          }
        }
        out.push_back(Take());
      } else {
        break;
      }
    }
    return out;
  }

  Result<Term> ParseQuotedLiteral() {
    // Caller saw '"'.
    ++pos_;
    std::string value;
    bool closed = false;
    while (!AtEnd()) {
      char c = Take();
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (AtEnd()) return ErrorHere("dangling escape");
        char e = Take();
        switch (e) {
          case 'n':
            value.push_back('\n');
            break;
          case 't':
            value.push_back('\t');
            break;
          case 'r':
            value.push_back('\r');
            break;
          case '"':
            value.push_back('"');
            break;
          case '\\':
            value.push_back('\\');
            break;
          default:
            return ErrorHere("unknown escape");
        }
        continue;
      }
      value.push_back(c);
    }
    if (!closed) return ErrorHere("unterminated literal");
    if (Consume('@')) {
      std::string lang;
      while (!AtEnd() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '-')) {
        lang.push_back(Take());
      }
      return Term::LangLiteral(std::move(value), std::move(lang));
    }
    if (Peek() == '^') {
      ++pos_;
      if (!Consume('^')) return ErrorHere("expected '^^'");
      Result<Term> dt = ParseTermToken(/*as_predicate=*/false);
      if (!dt.ok()) return dt.status();
      if (!dt->is_iri()) return ErrorHere("datatype must be an IRI");
      return Term::TypedLiteral(std::move(value), dt->value());
    }
    return Term::Literal(std::move(value));
  }

  Result<Term> ParseNumericLiteral() {
    std::string num;
    bool is_decimal = false;
    if (Peek() == '+' || Peek() == '-') num.push_back(Take());
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        num.push_back(Take());
      } else if (c == '.') {
        char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
        if (!std::isdigit(static_cast<unsigned char>(next))) break;
        is_decimal = true;
        num.push_back(Take());
      } else {
        break;
      }
    }
    if (num.empty() || num == "+" || num == "-") {
      return ErrorHere("malformed number");
    }
    return Term::TypedLiteral(
        num, std::string(is_decimal ? kXsdDecimal : kXsdInteger));
  }

  Status ParseStatement(std::vector<Triple>* out) {
    Result<Term> subject = ParseTermToken(/*as_predicate=*/false);
    if (!subject.ok()) return subject.status();
    if (subject->is_literal()) return ErrorHere("literal subject");

    while (true) {
      Result<Term> predicate = ParseTermToken(/*as_predicate=*/true);
      if (!predicate.ok()) return predicate.status();
      if (!predicate->is_iri()) return ErrorHere("predicate must be an IRI");

      while (true) {
        Result<Term> object = ParseTermToken(/*as_predicate=*/false);
        if (!object.ok()) return object.status();
        out->push_back(Triple{*subject, *predicate, std::move(*object)});
        SkipSpaceAndComments();
        if (!Consume(',')) break;
      }
      SkipSpaceAndComments();
      if (Consume(';')) {
        SkipSpaceAndComments();
        // A ';' may be immediately followed by '.', ending the statement.
        if (Consume('.')) return Status::Ok();
        continue;
      }
      break;
    }
    SkipSpaceAndComments();
    if (!Consume('.')) return ErrorHere("statement must end with '.'");
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Result<std::vector<Triple>> ParseTurtle(std::string_view text) {
  TurtleReader reader(text);
  return reader.Parse();
}

namespace {

// Splits an IRI at its last '#' or '/' into (namespace, local name).
// Returns false when the local part is empty or not a plain name (so
// the IRI must be written in full <...> form).
bool SplitIri(const std::string& iri, std::string* ns,
              std::string* local) {
  size_t cut = iri.find_last_of("#/");
  if (cut == std::string::npos || cut + 1 >= iri.size()) return false;
  for (size_t i = cut + 1; i < iri.size(); ++i) {
    char c = iri[i];
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  // A local name starting with a digit would not re-parse as a name.
  if (std::isdigit(static_cast<unsigned char>(iri[cut + 1]))) return false;
  *ns = iri.substr(0, cut + 1);
  *local = iri.substr(cut + 1);
  return true;
}

std::string EscapeTurtleLiteral(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string WriteTurtle(const std::vector<Triple>& triples) {
  // Pass 1: assign prefixes to the namespaces in use.
  std::map<std::string, std::string> prefix_of_ns;
  auto claim = [&prefix_of_ns](const Term& t) {
    if (!t.is_iri()) return;
    std::string ns, local;
    if (!SplitIri(t.value(), &ns, &local)) return;
    if (prefix_of_ns.count(ns)) return;
    prefix_of_ns.emplace(ns,
                         "ns" + std::to_string(prefix_of_ns.size()));
  };
  for (const Triple& t : triples) {
    claim(t.subject);
    claim(t.predicate);
    claim(t.object);
  }

  auto render = [&prefix_of_ns](const Term& t) -> std::string {
    switch (t.kind()) {
      case Term::Kind::kIri: {
        std::string ns, local;
        if (SplitIri(t.value(), &ns, &local)) {
          auto it = prefix_of_ns.find(ns);
          if (it != prefix_of_ns.end()) return it->second + ":" + local;
        }
        return "<" + t.value() + ">";
      }
      case Term::Kind::kLiteral: {
        std::string out = "\"" + EscapeTurtleLiteral(t.value()) + "\"";
        if (!t.language().empty()) {
          out += "@" + t.language();
        } else if (!t.datatype().empty()) {
          out += "^^<" + t.datatype() + ">";
        }
        return out;
      }
      case Term::Kind::kBlank:
        return "_:" + t.value();
      case Term::Kind::kVariable:
        return "?" + t.value();  // Not valid Turtle; debugging aid only.
    }
    return t.ToString();
  };

  std::string out;
  for (const auto& [ns, prefix] : prefix_of_ns) {
    out += "@prefix " + prefix + ": <" + ns + "> .\n";
  }
  if (!prefix_of_ns.empty()) out += "\n";

  // Pass 2: statements, folding consecutive same-subject triples.
  for (size_t i = 0; i < triples.size(); ++i) {
    if (i > 0 && triples[i].subject == triples[i - 1].subject) {
      out += " ;\n    " + render(triples[i].predicate) + " " +
             render(triples[i].object);
    } else {
      if (i > 0) out += " .\n";
      out += render(triples[i].subject) + " " +
             render(triples[i].predicate) + " " +
             render(triples[i].object);
    }
  }
  if (!triples.empty()) out += " .\n";
  return out;
}

}  // namespace sama

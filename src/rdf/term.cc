#include "rdf/term.h"

namespace sama {
namespace {

// Escapes a literal body per N-Triples rules.
std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kIri:
      return "<" + value_ + ">";
    case Kind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(value_) + "\"";
      if (!language_.empty()) {
        out += "@" + language_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
    case Kind::kBlank:
      return "_:" + value_;
    case Kind::kVariable:
      return "?" + value_;
  }
  return value_;
}

std::string Term::DisplayLabel() const {
  if (kind_ == Kind::kIri) {
    // Prefer the fragment, then the last path segment.
    size_t hash = value_.rfind('#');
    if (hash != std::string::npos && hash + 1 < value_.size()) {
      return value_.substr(hash + 1);
    }
    size_t slash = value_.rfind('/');
    if (slash != std::string::npos && slash + 1 < value_.size()) {
      return value_.substr(slash + 1);
    }
    return value_;
  }
  if (kind_ == Kind::kVariable) return "?" + value_;
  return value_;
}

}  // namespace sama

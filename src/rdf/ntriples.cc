#include "rdf/ntriples.h"

#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace sama {
namespace {

// Cursor over one statement line.
class LineScanner {
 public:
  explicit LineScanner(std::string_view line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return AtEnd() ? '\0' : line_[pos_]; }
  char Take() { return line_[pos_++]; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  size_t pos() const { return pos_; }

  // Decodes a backslash escape after the '\' was consumed. Appends the
  // decoded character(s) to `out`.
  Status TakeEscape(std::string* out) {
    if (AtEnd()) return Status::ParseError("dangling escape");
    char c = Take();
    switch (c) {
      case 't':
        out->push_back('\t');
        return Status::Ok();
      case 'n':
        out->push_back('\n');
        return Status::Ok();
      case 'r':
        out->push_back('\r');
        return Status::Ok();
      case '"':
        out->push_back('"');
        return Status::Ok();
      case '\\':
        out->push_back('\\');
        return Status::Ok();
      case 'u': {
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
          if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
            return Status::ParseError("bad \\u escape");
          }
          char h = Take();
          code = code * 16 +
                 (std::isdigit(static_cast<unsigned char>(h))
                      ? static_cast<uint32_t>(h - '0')
                      : static_cast<uint32_t>(
                            std::tolower(static_cast<unsigned char>(h)) -
                            'a' + 10));
        }
        AppendUtf8(code, out);
        return Status::Ok();
      }
      default:
        return Status::ParseError("unknown escape");
    }
  }

 private:
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string_view line_;
  size_t pos_ = 0;
};

Result<Term> ParseIri(LineScanner* scan) {
  // Caller consumed '<'.
  std::string value;
  while (!scan->AtEnd()) {
    char c = scan->Take();
    if (c == '>') return Term::Iri(std::move(value));
    if (c == '\\') {
      SAMA_RETURN_IF_ERROR(scan->TakeEscape(&value));
      continue;
    }
    value.push_back(c);
  }
  return Status::ParseError("unterminated IRI");
}

Result<Term> ParseBlank(LineScanner* scan) {
  // Caller consumed '_'.
  if (!scan->Consume(':')) return Status::ParseError("expected ':' in blank");
  std::string label;
  while (!scan->AtEnd() && (std::isalnum(static_cast<unsigned char>(
                                scan->Peek())) ||
                            scan->Peek() == '_' || scan->Peek() == '-' ||
                            scan->Peek() == '.')) {
    label.push_back(scan->Take());
  }
  if (label.empty()) return Status::ParseError("empty blank node label");
  return Term::Blank(std::move(label));
}

Result<Term> ParseLiteral(LineScanner* scan) {
  // Caller consumed '"'.
  std::string value;
  bool closed = false;
  while (!scan->AtEnd()) {
    char c = scan->Take();
    if (c == '"') {
      closed = true;
      break;
    }
    if (c == '\\') {
      SAMA_RETURN_IF_ERROR(scan->TakeEscape(&value));
      continue;
    }
    value.push_back(c);
  }
  if (!closed) return Status::ParseError("unterminated literal");
  if (scan->Consume('@')) {
    std::string lang;
    while (!scan->AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(scan->Peek())) ||
            scan->Peek() == '-')) {
      lang.push_back(scan->Take());
    }
    if (lang.empty()) return Status::ParseError("empty language tag");
    return Term::LangLiteral(std::move(value), std::move(lang));
  }
  if (scan->Consume('^')) {
    if (!scan->Consume('^') || !scan->Consume('<')) {
      return Status::ParseError("malformed datatype");
    }
    Result<Term> dt = ParseIri(scan);
    if (!dt.ok()) return dt.status();
    return Term::TypedLiteral(std::move(value), dt->value());
  }
  return Term::Literal(std::move(value));
}

Result<Term> ParseTerm(LineScanner* scan) {
  scan->SkipSpace();
  if (scan->AtEnd()) return Status::ParseError("unexpected end of statement");
  char c = scan->Take();
  switch (c) {
    case '<':
      return ParseIri(scan);
    case '_':
      return ParseBlank(scan);
    case '"':
      return ParseLiteral(scan);
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "'");
  }
}

}  // namespace

Result<Triple> NTriplesParser::ParseLine(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  LineScanner scan(trimmed);

  Result<Term> subject = ParseTerm(&scan);
  if (!subject.ok()) return subject.status();
  if (subject->is_literal()) {
    return Status::ParseError("literal subject is not allowed");
  }

  Result<Term> predicate = ParseTerm(&scan);
  if (!predicate.ok()) return predicate.status();
  if (!predicate->is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }

  Result<Term> object = ParseTerm(&scan);
  if (!object.ok()) return object.status();

  scan.SkipSpace();
  if (scan.Peek() == '<' || scan.Peek() == '_') {
    // N-Quads graph label: parsed for validity, then discarded.
    Result<Term> graph_label = ParseTerm(&scan);
    if (!graph_label.ok()) return graph_label.status();
    scan.SkipSpace();
  }
  if (!scan.Consume('.')) {
    return Status::ParseError("statement must end with '.'");
  }
  scan.SkipSpace();
  if (!scan.AtEnd()) {
    return Status::ParseError("trailing characters after '.'");
  }
  return Triple{std::move(subject).value(), std::move(predicate).value(),
                std::move(object).value()};
}

Result<std::vector<Triple>> NTriplesParser::ParseDocument(
    std::string_view text) {
  std::vector<Triple> triples;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_number;
    Result<Triple> t = ParseLine(line);
    if (t.ok()) {
      triples.push_back(std::move(t).value());
    } else if (t.status().code() != Status::Code::kNotFound) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "line %zu: ", line_number);
      return Status::ParseError(buf + t.status().message());
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return triples;
}

std::string WriteNTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sama

#ifndef SAMA_COMMON_SHARDED_CACHE_H_
#define SAMA_COMMON_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch.h"

namespace sama {

// Hit/miss/eviction counters of one cache (or the aggregate over its
// shards), also used as a per-query attribution sink: Get/Put accept an
// optional CacheCounters* that receives the same increments as the
// shard's lifetime counters. Per-query stats MUST come from such scoped
// sinks — diffing the shared lifetime counters around a query windows
// in every concurrent query's traffic too (the attribution bug fixed in
// PR 4; see tests/obs/engine_obs_test.cc).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;

  uint64_t lookups() const { return hits + misses; }
  // Hits over lookups; 0 when the cache was never consulted.
  double HitRate() const;
  // "123/456 hits (27.0%), 78 evicted" — for --stats output.
  std::string ToString() const;

  CacheCounters& operator+=(const CacheCounters& other);
  CacheCounters operator-(const CacheCounters& other) const;
};

// Thread-safe accumulator for CacheCounters deltas: ParallelFor chunk
// workers tally into plain chunk-local CacheCounters and merge them
// here at chunk end, so the hot path stays free of shared atomics.
struct AtomicCacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> insertions{0};

  void Merge(const CacheCounters& d) {
    if (d.hits) hits.fetch_add(d.hits, std::memory_order_relaxed);
    if (d.misses) misses.fetch_add(d.misses, std::memory_order_relaxed);
    if (d.evictions) evictions.fetch_add(d.evictions, std::memory_order_relaxed);
    if (d.insertions) {
      insertions.fetch_add(d.insertions, std::memory_order_relaxed);
    }
  }

  CacheCounters Snapshot() const {
    CacheCounters out;
    out.hits = hits.load(std::memory_order_relaxed);
    out.misses = misses.load(std::memory_order_relaxed);
    out.evictions = evictions.load(std::memory_order_relaxed);
    out.insertions = insertions.load(std::memory_order_relaxed);
    return out;
  }
};

// A generic thread-safe LRU cache, sharded by key hash. Lookups are
// LOCK-FREE (DESIGN.md §13): Get pins the epoch, walks an atomic
// collision chain with acquire loads, and copies the value out — no
// shard mutex, no allocation, no contention between readers on hits OR
// misses. Writers (Put/EraseIf/Clear and eviction) serialize on the
// shard mutex; superseded nodes are retired through the epoch manager
// so a reader mid-probe never touches freed memory.
//
// LRU recency on hits is best-effort by design: a hit updates the LRU
// list only when the shard mutex is free (try_lock). Under write
// contention the touch is skipped and counted (lru_lock_skips), so the
// read path never blocks; single-threaded use always acquires the
// uncontended mutex, keeping eviction order exact where tests rely on
// it. Eviction itself (under the write mutex) is exact LRU over the
// recency list. Values are returned by copy: the caller owns its
// snapshot and the cache can evict freely.
//
// The cache is an optimisation layer only — every user must produce
// identical results with the cache disabled. In particular a value must
// never be Put() unless it is the verified, durable answer for its key
// (e.g. a path record that failed its checksum is NEVER cached; see
// PathIndex::GetPath).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  // `capacity` is the total entry budget across `shards` shards (each
  // shard gets an equal slice, minimum one entry).
  explicit ShardedLruCache(size_t capacity, size_t shards = 8,
                           EpochManager* epochs = EpochManager::Global())
      : epochs_(epochs),
        per_shard_capacity_(
            capacity / (shards == 0 ? 1 : shards) +
            (capacity % (shards == 0 ? 1 : shards) != 0 ? 1 : 0)) {
    if (shards == 0) shards = 1;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    size_t buckets = NextPow2(per_shard_capacity_ * 2);
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(buckets, epochs));
    }
  }

  ~ShardedLruCache() {
    // No readers may be pinned inside a cache being destroyed; live
    // nodes are freed here, retired ones by the shard RetireLists.
    for (auto& shard : shards_) {
      for (auto& bucket : shard->buckets) {
        Node* node = bucket.load(std::memory_order_relaxed);
        while (node != nullptr) {
          Node* next = node->next.load(std::memory_order_relaxed);
          delete node;
          node = next;
        }
      }
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Copies the cached value for `key` into `*out` and (best-effort)
  // marks the entry most-recently-used. Returns false (and counts a
  // miss) when absent. `scoped` (optional) receives the same hit/miss
  // increment, letting a query attribute traffic to itself without
  // touching other queries. Lock-free: never blocks on writers.
  bool Get(const Key& key, Value* out, CacheCounters* scoped = nullptr) {
    uint64_t h = Mix(Hash{}(key));
    Shard& shard = *shards_[h % shards_.size()];
    EpochGuard guard(epochs_);
    Node* node =
        shard.buckets[BucketIndex(shard, h)].load(std::memory_order_acquire);
    while (node != nullptr && !(node->key == key)) {
      node = node->next.load(std::memory_order_acquire);
    }
    if (node == nullptr) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      if (scoped) ++scoped->misses;
      return false;
    }
    *out = node->value;  // Copied while pinned; the node cannot be freed.
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    if (scoped) ++scoped->hits;
    // Optional LRU touch: skip rather than contend. `unlinked` (set
    // under the mutex when a node leaves the chain) keeps a racing
    // eviction from resurrecting the node into the recency list.
    if (shard.mu.try_lock()) {
      if (!node->unlinked) MoveToFront(shard, node);
      shard.mu.unlock();
    } else {
      shard.lru_lock_skips.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  // Inserts or overwrites the value for `key`, evicting the
  // least-recently-used entry of the key's shard when full. Writers
  // serialize per shard; readers are never blocked (superseded nodes
  // are retired, not freed in place).
  void Put(const Key& key, Value value, CacheCounters* scoped = nullptr) {
    uint64_t h = Mix(Hash{}(key));
    Shard& shard = *shards_[h % shards_.size()];
    size_t b = BucketIndex(shard, h);
    std::lock_guard<std::mutex> lock(shard.mu);
    Node* fresh = new Node(key, std::move(value));
    Node* old = FindLocked(shard, b, key);
    // Publish first, then unlink any old node: a concurrent probe sees
    // the new value as soon as possible and never a gap.
    fresh->next.store(shard.buckets[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    shard.buckets[b].store(fresh, std::memory_order_release);
    LinkFront(shard, fresh);
    if (old != nullptr) {
      UnlinkLocked(shard, b, old);
      shard.retired.Retire(old);
      return;  // Overwrite: entry count unchanged, no insertion tick.
    }
    if (shard.entries.load(std::memory_order_relaxed) >=
        per_shard_capacity_) {
      Node* victim = shard.lru_tail;
      if (victim == fresh) victim = victim->lru_prev;  // Never self-evict.
      if (victim != nullptr) {
        UnlinkLocked(shard, BucketIndex(shard, Mix(Hash{}(victim->key))),
                     victim);
        shard.retired.Retire(victim);
        shard.entries.fetch_sub(1, std::memory_order_relaxed);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
        if (scoped) ++scoped->evictions;
      }
    }
    shard.entries.fetch_add(1, std::memory_order_relaxed);
    shard.insertions.fetch_add(1, std::memory_order_relaxed);
    if (scoped) ++scoped->insertions;
  }

  // Drops every entry (index rebuilds, DropCaches). Counters are kept:
  // they are lifetime totals, and per-query deltas subtract out.
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (size_t b = 0; b < shard->buckets.size(); ++b) {
        Node* node = shard->buckets[b].load(std::memory_order_relaxed);
        while (node != nullptr) {
          Node* next = node->next.load(std::memory_order_relaxed);
          node->unlinked = true;
          shard->retired.Retire(node);
          node = next;
        }
        shard->buckets[b].store(nullptr, std::memory_order_release);
      }
      shard->lru_head = nullptr;
      shard->lru_tail = nullptr;
      shard->entries.store(0, std::memory_order_relaxed);
    }
  }

  // Removes every entry whose key satisfies `pred`, returning the
  // number removed. This is the precise-invalidation primitive for
  // live updates: a mutation erases only the entries its touched
  // labels could have contributed to instead of flushing the whole
  // cache. Concurrent readers keep probing lock-free throughout.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (size_t b = 0; b < shard->buckets.size(); ++b) {
        Node* prev = nullptr;
        Node* node = shard->buckets[b].load(std::memory_order_relaxed);
        while (node != nullptr) {
          Node* next = node->next.load(std::memory_order_relaxed);
          if (pred(node->key)) {
            if (prev == nullptr) {
              shard->buckets[b].store(next, std::memory_order_release);
            } else {
              prev->next.store(next, std::memory_order_release);
            }
            node->unlinked = true;
            UnlinkLru(*shard, node);
            shard->retired.Retire(node);
            shard->entries.fetch_sub(1, std::memory_order_relaxed);
            ++erased;
          } else {
            prev = node;
          }
          node = next;
        }
      }
    }
    return erased;
  }

  CacheCounters counters() const {
    CacheCounters total;
    for (const auto& shard : shards_) {
      total.hits += shard->hits.load(std::memory_order_relaxed);
      total.misses += shard->misses.load(std::memory_order_relaxed);
      total.evictions += shard->evictions.load(std::memory_order_relaxed);
      total.insertions += shard->insertions.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Hits that skipped the LRU touch because a writer held the shard
  // mutex — the cache's latch-contention signal (sama_cache_lru_lock_
  // skips). Zero in single-threaded use.
  uint64_t lru_lock_skips() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->lru_lock_skips.load(std::memory_order_relaxed);
    }
    return total;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      n += shard->entries.load(std::memory_order_relaxed);
    }
    return n;
  }

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Node {
    Node(const Key& k, Value v) : key(k), value(std::move(v)) {}
    const Key key;
    const Value value;  // Immutable once published; overwrite = new node.
    std::atomic<Node*> next{nullptr};  // Collision chain (atomic for readers).
    // LRU recency links; guarded by the shard mutex.
    Node* lru_prev = nullptr;
    Node* lru_next = nullptr;
    // Set (under the mutex) when the node leaves the chain, so a
    // concurrent hit's deferred LRU touch cannot resurrect it.
    bool unlinked = false;
  };

  struct Shard {
    Shard(size_t bucket_count, EpochManager* epochs)
        : buckets(bucket_count), retired(epochs) {}
    mutable std::mutex mu;  // Writers + LRU bookkeeping only.
    std::vector<std::atomic<Node*>> buckets;
    Node* lru_head = nullptr;  // Most recently used.
    Node* lru_tail = nullptr;  // Least recently used; eviction victim.
    RetireList retired;
    std::atomic<size_t> entries{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> lru_lock_skips{0};
  };

  static size_t NextPow2(size_t n) {
    size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  // Finalizer-style mix: std::hash may be the identity on integral
  // keys, whose low bits often carry structure.
  static uint64_t Mix(size_t raw) {
    uint64_t h = static_cast<uint64_t>(raw);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  // Shard selection consumes the mix modulo shard count (low bits);
  // bucket selection uses an independent slice so the keys of one
  // shard spread over all its buckets.
  static size_t BucketIndex(const Shard& shard, uint64_t h) {
    return (h >> 16) & (shard.buckets.size() - 1);
  }

  // Requires the shard mutex.
  Node* FindLocked(Shard& shard, size_t bucket, const Key& key) {
    Node* node = shard.buckets[bucket].load(std::memory_order_relaxed);
    while (node != nullptr && !(node->key == key)) {
      node = node->next.load(std::memory_order_relaxed);
    }
    return node;
  }

  // Requires the shard mutex. Removes `node` from its collision chain
  // and the LRU list; the node itself stays intact (readers may still
  // be traversing through it) until the epoch grace period passes.
  void UnlinkLocked(Shard& shard, size_t bucket, Node* node) {
    Node* prev = nullptr;
    Node* cur = shard.buckets[bucket].load(std::memory_order_relaxed);
    while (cur != node) {
      prev = cur;
      cur = cur->next.load(std::memory_order_relaxed);
    }
    Node* next = node->next.load(std::memory_order_relaxed);
    if (prev == nullptr) {
      shard.buckets[bucket].store(next, std::memory_order_release);
    } else {
      prev->next.store(next, std::memory_order_release);
    }
    node->unlinked = true;
    UnlinkLru(shard, node);
  }

  // Requires the shard mutex.
  void UnlinkLru(Shard& shard, Node* node) {
    if (node->lru_prev != nullptr) {
      node->lru_prev->lru_next = node->lru_next;
    } else if (shard.lru_head == node) {
      shard.lru_head = node->lru_next;
    }
    if (node->lru_next != nullptr) {
      node->lru_next->lru_prev = node->lru_prev;
    } else if (shard.lru_tail == node) {
      shard.lru_tail = node->lru_prev;
    }
    node->lru_prev = nullptr;
    node->lru_next = nullptr;
  }

  // Requires the shard mutex.
  void LinkFront(Shard& shard, Node* node) {
    node->lru_prev = nullptr;
    node->lru_next = shard.lru_head;
    if (shard.lru_head != nullptr) shard.lru_head->lru_prev = node;
    shard.lru_head = node;
    if (shard.lru_tail == nullptr) shard.lru_tail = node;
  }

  // Requires the shard mutex.
  void MoveToFront(Shard& shard, Node* node) {
    if (shard.lru_head == node) return;
    UnlinkLru(shard, node);
    LinkFront(shard, node);
  }

  EpochManager* epochs_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sama

#endif  // SAMA_COMMON_SHARDED_CACHE_H_

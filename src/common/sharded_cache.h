#ifndef SAMA_COMMON_SHARDED_CACHE_H_
#define SAMA_COMMON_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sama {

// Hit/miss/eviction counters of one cache (or the aggregate over its
// shards), also used as a per-query attribution sink: Get/Put accept an
// optional CacheCounters* that receives the same increments as the
// shard's lifetime counters. Per-query stats MUST come from such scoped
// sinks — diffing the shared lifetime counters around a query windows
// in every concurrent query's traffic too (the attribution bug fixed in
// PR 4; see tests/obs/engine_obs_test.cc).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;

  uint64_t lookups() const { return hits + misses; }
  // Hits over lookups; 0 when the cache was never consulted.
  double HitRate() const;
  // "123/456 hits (27.0%), 78 evicted" — for --stats output.
  std::string ToString() const;

  CacheCounters& operator+=(const CacheCounters& other);
  CacheCounters operator-(const CacheCounters& other) const;
};

// Thread-safe accumulator for CacheCounters deltas: ParallelFor chunk
// workers tally into plain chunk-local CacheCounters and merge them
// here at chunk end, so the hot path stays free of shared atomics.
struct AtomicCacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> insertions{0};

  void Merge(const CacheCounters& d) {
    if (d.hits) hits.fetch_add(d.hits, std::memory_order_relaxed);
    if (d.misses) misses.fetch_add(d.misses, std::memory_order_relaxed);
    if (d.evictions) evictions.fetch_add(d.evictions, std::memory_order_relaxed);
    if (d.insertions) {
      insertions.fetch_add(d.insertions, std::memory_order_relaxed);
    }
  }

  CacheCounters Snapshot() const {
    CacheCounters out;
    out.hits = hits.load(std::memory_order_relaxed);
    out.misses = misses.load(std::memory_order_relaxed);
    out.evictions = evictions.load(std::memory_order_relaxed);
    out.insertions = insertions.load(std::memory_order_relaxed);
    return out;
  }
};

// A generic thread-safe LRU cache, sharded by key hash so concurrent
// query threads contend on different mutexes. Each shard pre-allocates
// its node arena up front (capacity/shards slots) and recycles slots on
// eviction, so a warm cache performs no allocation besides the value
// payloads themselves. Values are returned by copy: the caller owns its
// snapshot and the cache can evict freely.
//
// The cache is an optimisation layer only — every user must produce
// identical results with the cache disabled. In particular a value must
// never be Put() unless it is the verified, durable answer for its key
// (e.g. a path record that failed its checksum is NEVER cached; see
// PathIndex::GetPath).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  // `capacity` is the total entry budget across `shards` shards (each
  // shard gets an equal slice, minimum one entry).
  explicit ShardedLruCache(size_t capacity, size_t shards = 8)
      : per_shard_capacity_(
            capacity / (shards == 0 ? 1 : shards) +
            (capacity % (shards == 0 ? 1 : shards) != 0 ? 1 : 0)) {
    if (shards == 0) shards = 1;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->arena.reserve(per_shard_capacity_);
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Copies the cached value for `key` into `*out` and marks the entry
  // most-recently-used. Returns false (and counts a miss) when absent.
  // `scoped` (optional) receives the same hit/miss increment, letting a
  // query attribute traffic to itself without touching other queries.
  bool Get(const Key& key, Value* out, CacheCounters* scoped = nullptr) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      if (scoped) ++scoped->misses;
      return false;
    }
    MoveToFront(shard, it->second);
    *out = shard.arena[it->second].value;
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    if (scoped) ++scoped->hits;
    return true;
  }

  // Inserts or overwrites the value for `key`, evicting the
  // least-recently-used entry of the key's shard when full.
  void Put(const Key& key, Value value, CacheCounters* scoped = nullptr) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.arena[it->second].value = std::move(value);
      MoveToFront(shard, it->second);
      return;
    }
    uint32_t slot;
    if (!shard.free_slots.empty()) {
      // Reuse a slot released by EraseIf before growing the arena.
      slot = shard.free_slots.back();
      shard.free_slots.pop_back();
    } else if (shard.arena.size() < per_shard_capacity_) {
      slot = static_cast<uint32_t>(shard.arena.size());
      shard.arena.push_back(Node{});
    } else {
      // Recycle the LRU tail slot.
      slot = shard.tail;
      Unlink(shard, slot);
      shard.map.erase(shard.arena[slot].key);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      if (scoped) ++scoped->evictions;
    }
    Node& node = shard.arena[slot];
    node.key = key;
    node.value = std::move(value);
    LinkFront(shard, slot);
    shard.map.emplace(key, slot);
    shard.insertions.fetch_add(1, std::memory_order_relaxed);
    if (scoped) ++scoped->insertions;
  }

  // Drops every entry (index rebuilds, DropCaches). Counters are kept:
  // they are lifetime totals, and per-query deltas subtract out.
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
      shard->arena.clear();
      shard->free_slots.clear();
      shard->head = kNil;
      shard->tail = kNil;
    }
  }

  // Removes every entry whose key satisfies `pred`, returning the
  // number removed. Freed slots are recycled by later Puts. This is the
  // precise-invalidation primitive for live updates: a mutation erases
  // only the entries its touched labels could have contributed to
  // instead of flushing the whole cache.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto it = shard->map.begin(); it != shard->map.end();) {
        if (pred(it->first)) {
          uint32_t slot = it->second;
          Unlink(*shard, slot);
          shard->arena[slot] = Node{};
          shard->free_slots.push_back(slot);
          it = shard->map.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  CacheCounters counters() const {
    CacheCounters total;
    for (const auto& shard : shards_) {
      total.hits += shard->hits.load(std::memory_order_relaxed);
      total.misses += shard->misses.load(std::memory_order_relaxed);
      total.evictions += shard->evictions.load(std::memory_order_relaxed);
      total.insertions += shard->insertions.load(std::memory_order_relaxed);
    }
    return total;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->map.size();
    }
    return n;
  }

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t shard_count() const { return shards_.size(); }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    Key key{};
    Value value{};
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Node> arena;  // Fixed-capacity slab; slots recycled.
    std::vector<uint32_t> free_slots;  // Slots released by EraseIf.
    std::unordered_map<Key, uint32_t, Hash> map;
    uint32_t head = kNil;  // Most recently used.
    uint32_t tail = kNil;  // Least recently used.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> insertions{0};
  };

  Shard& ShardFor(const Key& key) {
    // Finalizer-style mix: std::hash may be the identity on integral
    // keys, whose low bits often carry structure.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  void Unlink(Shard& shard, uint32_t slot) {
    Node& node = shard.arena[slot];
    if (node.prev != kNil) {
      shard.arena[node.prev].next = node.next;
    } else {
      shard.head = node.next;
    }
    if (node.next != kNil) {
      shard.arena[node.next].prev = node.prev;
    } else {
      shard.tail = node.prev;
    }
    node.prev = kNil;
    node.next = kNil;
  }

  void LinkFront(Shard& shard, uint32_t slot) {
    Node& node = shard.arena[slot];
    node.prev = kNil;
    node.next = shard.head;
    if (shard.head != kNil) shard.arena[shard.head].prev = slot;
    shard.head = slot;
    if (shard.tail == kNil) shard.tail = slot;
  }

  void MoveToFront(Shard& shard, uint32_t slot) {
    if (shard.head == slot) return;
    Unlink(shard, slot);
    LinkFront(shard, slot);
  }

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sama

#endif  // SAMA_COMMON_SHARDED_CACHE_H_

#ifndef SAMA_COMMON_RANDOM_H_
#define SAMA_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>

namespace sama {

// Deterministic xorshift128+ pseudo-random generator. The dataset
// generators depend on determinism so that every benchmark run and test
// sees an identical graph for a given seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bULL) {
    state0_ = seed ^ 0x9e3779b97f4a7c15ULL;
    state1_ = seed * 0xbf58476d1ce4e5b9ULL + 1;
    // Warm up so that low-entropy seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    uint64_t s1 = state0_;
    const uint64_t s0 = state1_;
    state0_ = s0;
    s1 ^= s1 << 23;
    state1_ = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
    return state1_ + s0;
  }

  // Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace sama

#endif  // SAMA_COMMON_RANDOM_H_

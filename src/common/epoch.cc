#include "common/epoch.h"

#include <cstdio>
#include <cstdlib>

namespace sama {
namespace {

// Managers that are still alive, keyed by their process-unique id.
// Thread-exit cleanup must not touch a manager that was destroyed
// while the thread's TLS cache still pointed at it (a test-scoped
// manager, say), so both sides go through this registry under one
// mutex: the manager constructor/destructor registers/unregisters, and
// the TLS destructor releases a cached slot only when its manager id
// is still registered.
struct ManagerRegistry {
  std::mutex mu;
  std::vector<uint64_t> alive;

  static ManagerRegistry* Get() {
    static ManagerRegistry* r = new ManagerRegistry();  // Leaked.
    return r;
  }

  void Register(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    alive.push_back(id);
  }
  void Unregister(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = 0; i < alive.size(); ++i) {
      if (alive[i] == id) {
        alive[i] = alive.back();
        alive.pop_back();
        return;
      }
    }
  }
  bool IsAlive(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    for (uint64_t a : alive) {
      if (a == id) return true;
    }
    return false;
  }
};

std::atomic<uint64_t> next_manager_id{1};

}  // namespace

// Per-thread pin state: the claimed slot and nesting depth for each
// manager this thread has pinned. A thread rarely touches more than
// the global manager plus perhaps one test-local one, so a tiny linear
// array beats any map.
struct ThreadEpochState {
  struct Entry {
    uint64_t manager_id = 0;
    EpochManager* manager = nullptr;
    EpochManager::Slot* slot = nullptr;
    uint32_t nest = 0;
  };
  static constexpr size_t kMaxManagers = 8;
  Entry entries[kMaxManagers];
  size_t used = 0;

  Entry* Find(const EpochManager* manager, uint64_t id) {
    for (size_t i = 0; i < used; ++i) {
      if (entries[i].manager == manager && entries[i].manager_id == id) {
        return &entries[i];
      }
    }
    return nullptr;
  }

  Entry* Add(EpochManager* manager, uint64_t id, EpochManager::Slot* slot) {
    // Compact entries whose manager has died so a long-lived thread
    // outliving many test-scoped managers never exhausts the array.
    if (used == kMaxManagers) {
      ManagerRegistry* reg = ManagerRegistry::Get();
      size_t w = 0;
      for (size_t i = 0; i < used; ++i) {
        if (reg->IsAlive(entries[i].manager_id)) entries[w++] = entries[i];
      }
      used = w;
    }
    if (used == kMaxManagers) {
      std::fprintf(stderr,
                   "EpochManager: thread pinned against more than %zu live "
                   "managers\n",
                   kMaxManagers);
      std::abort();
    }
    entries[used] = Entry{id, manager, slot, 0};
    return &entries[used++];
  }

  ~ThreadEpochState() {
    ManagerRegistry* reg = ManagerRegistry::Get();
    for (size_t i = 0; i < used; ++i) {
      if (reg->IsAlive(entries[i].manager_id)) {
        entries[i].manager->ReleaseSlot(entries[i].slot);
      }
    }
  }
};

namespace {
thread_local ThreadEpochState tls_epoch_state;
}  // namespace

EpochManager::EpochManager()
    : id_(next_manager_id.fetch_add(1, std::memory_order_relaxed)) {
  ManagerRegistry::Get()->Register(id_);
}

EpochManager::~EpochManager() { ManagerRegistry::Get()->Unregister(id_); }

EpochManager* EpochManager::Global() {
  static EpochManager* g = new EpochManager();  // Leaked on purpose.
  return g;
}

EpochManager::Slot* EpochManager::ClaimSlot() {
  for (size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
        slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      // Grow the scan watermark to cover this slot.
      size_t want = i + 1;
      size_t seen = slot_watermark_.load(std::memory_order_relaxed);
      while (seen < want && !slot_watermark_.compare_exchange_weak(
                                seen, want, std::memory_order_acq_rel)) {
      }
      return &slots_[i];
    }
  }
  std::fprintf(stderr,
               "EpochManager: more than %zu live reader threads\n", kMaxSlots);
  std::abort();
}

void EpochManager::ReleaseSlot(Slot* slot) {
  slot->state.store(0, std::memory_order_seq_cst);
  slot->claimed.store(false, std::memory_order_release);
}

EpochManager::Slot* EpochManager::SlotForThisThread() {
  ThreadEpochState::Entry* e = tls_epoch_state.Find(this, id_);
  if (e == nullptr) {
    e = tls_epoch_state.Add(this, id_, ClaimSlot());
  }
  return e->slot;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = epoch_.load(std::memory_order_seq_cst);
  size_t n = slot_watermark_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    // seq_cst pairs with the pin store: either the pinned reader is
    // seen here, or its unpin release-store happened-before this load
    // and every access it made is ordered before any free we allow.
    uint64_t s = slots_[i].state.load(std::memory_order_seq_cst);
    if (s != 0 && s - 1 < min) min = s - 1;
  }
  return min;
}

bool EpochManager::TryAdvance() {
  uint64_t current = epoch_.load(std::memory_order_seq_cst);
  size_t n = slot_watermark_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = slots_[i].state.load(std::memory_order_seq_cst);
    if (s != 0 && s - 1 != current) return false;  // Straggler reader.
  }
  if (epoch_.compare_exchange_strong(current, current + 1,
                                     std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;  // Lost the race; the other advancer did the work.
}

EpochManager::Stats EpochManager::stats() const {
  Stats s;
  s.epoch = epoch_.load(std::memory_order_relaxed);
  s.advances = advances_.load(std::memory_order_relaxed);
  s.retired = retired_.load(std::memory_order_relaxed);
  s.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  s.pins = pins_.load(std::memory_order_relaxed);
  return s;
}

size_t EpochManager::active_slots() const {
  size_t n = slot_watermark_.load(std::memory_order_acquire);
  size_t claimed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (slots_[i].claimed.load(std::memory_order_acquire)) ++claimed;
  }
  return claimed;
}

EpochGuard::EpochGuard(EpochManager* manager) : manager_(manager) {
  ThreadEpochState::Entry* e =
      tls_epoch_state.Find(manager, manager->id_);
  if (e == nullptr) {
    e = tls_epoch_state.Add(manager, manager->id_, manager->ClaimSlot());
  }
  slot_ = e->slot;
  nested_ = e->nest > 0;
  ++e->nest;
  if (nested_) return;  // Outer guard already pinned this thread.
  manager->pins_.fetch_add(1, std::memory_order_relaxed);
  // Publish the epoch we pin in, then re-read: the slot store must be
  // visible before we trust the epoch value, or an advance racing
  // between our read and our store could strand us one epoch behind
  // without TryAdvance ever seeing it.
  uint64_t e0 = manager->epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot_->state.store(e0 + 1, std::memory_order_seq_cst);
    uint64_t e1 = manager->epoch_.load(std::memory_order_seq_cst);
    if (e1 == e0) break;
    e0 = e1;
  }
}

EpochGuard::~EpochGuard() {
  ThreadEpochState::Entry* e =
      tls_epoch_state.Find(manager_, manager_->id_);
  --e->nest;
  if (nested_) return;
  // Release: everything this reader did inside the critical section is
  // ordered before any reclaimer that observes the slot idle.
  slot_->state.store(0, std::memory_order_seq_cst);
}

RetireList::RetireList(EpochManager* manager) : manager_(manager) {}

RetireList::~RetireList() { DrainAll(); }

void RetireList::RetireRaw(void* ptr, void (*deleter)(void*)) {
  manager_->NoteRetired(1);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{ptr, deleter, manager_->epoch()});
  // Amortized housekeeping: nudge the epoch forward and reclaim every
  // few retires, so garbage is bounded without a background thread and
  // without any work on the read path.
  if (++retires_since_reclaim_ >= 8) {
    retires_since_reclaim_ = 0;
    manager_->TryAdvance();
    uint64_t safe = MinSafeBefore();
    ReclaimLocked(safe);
  }
}

// The first epoch whose garbage must be kept: entries retired at
// epochs < this value are free to go.
uint64_t RetireList::MinSafeBefore() const {
  uint64_t global = manager_->epoch();
  uint64_t min_active = manager_->MinActiveEpoch();
  uint64_t bound = min_active < global ? min_active : global;
  // Retired at e is safe once bound >= e + 2  <=>  e < bound - 1.
  return bound >= 2 ? bound - 1 : 0;
}

size_t RetireList::ReclaimLocked(uint64_t safe_before) {
  size_t freed = 0;
  size_t w = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].epoch < safe_before) {
      entries_[i].deleter(entries_[i].ptr);
      ++freed;
    } else {
      entries_[w++] = entries_[i];
    }
  }
  entries_.resize(w);
  if (freed) manager_->NoteReclaimed(freed);
  return freed;
}

size_t RetireList::Reclaim() {
  manager_->TryAdvance();
  uint64_t safe = MinSafeBefore();
  std::lock_guard<std::mutex> lock(mu_);
  return ReclaimLocked(safe);
}

size_t RetireList::DrainAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  for (Entry& e : entries_) {
    e.deleter(e.ptr);
    ++freed;
  }
  entries_.clear();
  if (freed) manager_->NoteReclaimed(freed);
  return freed;
}

size_t RetireList::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace sama

#ifndef SAMA_COMMON_NET_H_
#define SAMA_COMMON_NET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sama {

// Shared POSIX listener setup for the embedded servers (ObsHttpServer
// and BinaryQueryServer): socket + SO_REUSEADDR + bind + listen, with
// ephemeral-port resolution so `port = 0` callers learn the bound
// port. Centralised here so the two servers cannot drift on socket
// options or error reporting.
struct ListenerOptions {
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; BindListener reports the bound one.
  uint16_t port = 0;
  int backlog = 64;
  // O_NONBLOCK on the listening socket — required by epoll-style
  // accept loops, harmless for blocking accept loops that tolerate
  // EAGAIN (the HTTP server keeps the default blocking accept).
  bool nonblocking = false;
};

// Creates, binds and listens. On success *fd is the listening socket
// and *bound_port the resolved port (equal to options.port when it was
// non-zero). On failure nothing is leaked and *fd is -1.
Status BindListener(const ListenerOptions& options, int* fd,
                    uint16_t* bound_port);

// Sets O_NONBLOCK on an arbitrary fd (accepted connections).
Status SetNonBlocking(int fd);

}  // namespace sama

#endif  // SAMA_COMMON_NET_H_

#ifndef SAMA_COMMON_TIMER_H_
#define SAMA_COMMON_TIMER_H_

#include <chrono>

namespace sama {

// Elapsed-time stopwatch used by the benchmark harnesses and the
// engine's phase timers. Deliberately steady_clock: monotonic, immune
// to NTP steps — never read wall time for durations (the slow-query
// log's unix_millis stamp is the one sanctioned wall-clock read).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sama

#endif  // SAMA_COMMON_TIMER_H_

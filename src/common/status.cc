#include "common/status.h"

namespace sama {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kIoError:
      return "IO_ERROR";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kParseError:
      return "PARSE_ERROR";
    case Status::Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Status::Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sama

#ifndef SAMA_COMMON_STRING_UTIL_H_
#define SAMA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sama {

// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// ASCII-lowercases `s`.
std::string ToLowerAscii(std::string_view s);

// Formats a byte count as "12.3 MB" style text (for Table 1 reporting).
std::string HumanBytes(uint64_t bytes);

// Formats a duration in milliseconds as "1 sec" / "4 min" style text.
std::string HumanMillis(double millis);

}  // namespace sama

#endif  // SAMA_COMMON_STRING_UTIL_H_

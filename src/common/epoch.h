#ifndef SAMA_COMMON_EPOCH_H_
#define SAMA_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sama {

// Epoch-based reclamation (EBR) — the concurrency kernel behind the
// lock-free read paths (DESIGN.md §13). The pattern follows the
// objmapper RCU index design: readers take no lock at all, writers
// serialize on their own mutex, and memory freed by writers is only
// reclaimed once every reader that could still hold a pointer into it
// has provably moved on.
//
// Protocol:
//   * A reader wraps each lookup in an EpochGuard. Pinning records the
//     global epoch in the thread's slot (a handful of nanoseconds, no
//     shared writes besides the slot itself); unpinning clears it.
//   * A writer removes an object from its structure (making it
//     unreachable for NEW readers), then hands it to a RetireList,
//     which stamps it with the current global epoch.
//   * The global epoch advances only when every pinned thread has been
//     observed in the current epoch (TryAdvance). An object retired in
//     epoch e is freed once the epoch has advanced twice past e AND no
//     currently-pinned reader remains below e + 2 — at that point any
//     reader that could have seen the object has unpinned, and its
//     release-store/acquire-load pair on the slot orders every access
//     it made before the free.
//
// Invariant table (what writers may free, when):
//   | object state                  | may free?                        |
//   |-------------------------------|----------------------------------|
//   | reachable from the structure  | never — remove first             |
//   | removed, not retired          | never — a pinned reader may hold |
//   | retired at epoch e            | once epoch >= e+2 and            |
//   |                               | MinActiveEpoch() >= e+2          |
//   | retired, no reader ever pins  | DrainAll() (owner teardown)      |
//
// A raw pointer obtained under a guard is only valid until the guard
// drops: copy what you need out of the protected structure before
// unpinning, never cache protected pointers across pins.
class EpochManager {
 public:
  // Per-process reader-slot budget. Slots are claimed on a thread's
  // first pin against this manager and released when the thread exits,
  // so the bound is on *live* threads, not lifetime thread count.
  static constexpr size_t kMaxSlots = 512;

  struct Stats {
    uint64_t epoch = 0;      // Current global epoch (starts at 1).
    uint64_t advances = 0;   // Successful epoch advances.
    uint64_t retired = 0;    // Objects handed to RetireLists.
    uint64_t reclaimed = 0;  // Objects actually freed.
    uint64_t pins = 0;       // EpochGuard pin operations.
    // Retired - reclaimed; deferred frees currently outstanding.
    uint64_t pending() const { return retired - reclaimed; }
  };

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // The process-wide manager every hot structure uses by default.
  // Leaked on purpose: reader threads may still unpin during static
  // destruction.
  static EpochManager* Global();

  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  // The smallest epoch any currently-pinned thread was observed in, or
  // the current epoch when nobody is pinned. Monotone per call site
  // only in the sense reclamation needs: a reader pinned before the
  // scan is either seen (blocking the free) or has unpinned (ordering
  // the free after its reads).
  uint64_t MinActiveEpoch() const;

  // Advances the global epoch iff every pinned thread has been observed
  // in the current epoch. Amortized O(live threads); called
  // opportunistically by RetireList, so no background thread is needed.
  bool TryAdvance();

  Stats stats() const;

  // Test hook: number of currently-claimed reader slots.
  size_t active_slots() const;

 private:
  friend class EpochGuard;
  friend class RetireList;
  friend struct ThreadEpochState;

  // One cache line per slot: a pinned thread spins on nothing but its
  // own line, and the TryAdvance scan is the only cross-line traffic.
  struct alignas(64) Slot {
    // 0 = idle; otherwise (epoch + 1) of the pinned thread.
    std::atomic<uint64_t> state{0};
    std::atomic<bool> claimed{false};
  };

  Slot* ClaimSlot();              // Called from TLS on first pin.
  void ReleaseSlot(Slot* slot);   // Called from TLS at thread exit.
  Slot* SlotForThisThread();      // TLS lookup, claiming on first use.

  void NoteRetired(uint64_t n) {
    retired_.fetch_add(n, std::memory_order_relaxed);
  }
  void NoteReclaimed(uint64_t n) {
    reclaimed_.fetch_add(n, std::memory_order_relaxed);
  }

  const uint64_t id_;  // Process-unique, never reused (TLS staleness check).
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> pins_{0};
  // Scan bound: slots at index >= high watermark were never claimed.
  std::atomic<size_t> slot_watermark_{0};
  std::vector<Slot> slots_{kMaxSlots};
};

// RAII epoch pin. Nestable (inner guards are free); neither copyable
// nor movable — a pin belongs to the stack frame that took it.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager = EpochManager::Global());
  ~EpochGuard();

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
  EpochManager::Slot* slot_;
  bool nested_;
};

// A deferred-destruction list owned by one structure (dictionary index
// tables, cache nodes, buffer-pool frames). Retire() is called by
// writers — which the owning structures already serialize on a write
// mutex — so an internal mutex keeps this simple without adding reader
// contention. Reclamation runs inline, amortized over retires: no
// background reclaimer thread, no reclamation on the read path.
//
// Ownership: entries belong to this list until freed. The owner's
// destructor runs DrainAll() (via ~RetireList), which frees everything
// unconditionally — valid because destroying the owning structure
// already asserts no concurrent readers exist.
class RetireList {
 public:
  explicit RetireList(EpochManager* manager = EpochManager::Global());
  ~RetireList();  // DrainAll().

  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;

  // Defers `delete ptr` until no reader can hold it.
  template <typename T>
  void Retire(T* ptr) {
    RetireRaw(ptr, [](void* p) { delete static_cast<T*>(p); });
  }

  // Defers an arbitrary deleter (for array or composite frees).
  void RetireRaw(void* ptr, void (*deleter)(void*));

  // Frees every entry whose grace period has passed; returns the
  // number freed. Safe to call concurrently with readers.
  size_t Reclaim();

  // Frees everything regardless of epochs. Only valid when the caller
  // guarantees no reader is pinned inside the owning structure
  // (owner teardown).
  size_t DrainAll();

  size_t pending() const;

 private:
  struct Entry {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  uint64_t MinSafeBefore() const;
  size_t ReclaimLocked(uint64_t safe_before);

  EpochManager* manager_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // FIFO in retire-epoch order.
  uint64_t retires_since_reclaim_ = 0;
};

}  // namespace sama

#endif  // SAMA_COMMON_EPOCH_H_

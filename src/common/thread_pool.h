#ifndef SAMA_COMMON_THREAD_POOL_H_
#define SAMA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace sama {

// Work-stealing thread pool shared by the query engine's parallel
// phases (clustering, forest search) and the index builder. Each
// worker owns a deque; Submit distributes round-robin and idle workers
// steal from the back of their siblings' deques, so a burst of uneven
// tasks (one huge cluster next to many tiny ones) still keeps every
// core busy.
//
// The pool itself never blocks task-on-task: ParallelFor below has the
// calling thread chew through the iteration space alongside the
// workers, which makes nested parallel sections (a worker submitting
// its own ParallelFor) deadlock-free by construction — the nested
// caller drains its own range even when every worker is occupied.
class ThreadPool {
 public:
  // Spawns `num_workers` worker threads (clamped to >= 1; pass
  // HardwareThreads() - 1 to saturate the machine including the
  // caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for asynchronous execution. Safe to call from any
  // thread, including pool workers (nested submission). Tasks still
  // queued at destruction time are executed before shutdown completes.
  void Submit(std::function<void()> task);

  size_t worker_count() const { return workers_.size(); }

  // max(1, std::thread::hardware_concurrency()).
  static size_t HardwareThreads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Pops a task (own queue front, else steal a sibling's back) and runs
  // it. Returns false when every queue is empty.
  bool TryRunOneTask(size_t home);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards the sleep/wake protocol: queued_ is incremented under
  // idle_mu_ so a worker checking "anything to do?" cannot miss a
  // submission that lands between its check and its wait.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

// Runs body(i) for every i in [0, n), recruiting `pool`'s workers when
// one is provided (nullptr or an empty range runs inline). The calling
// thread always participates. Exceptions thrown by `body` are captured
// as Status::Internal. On failure the returned Status is the error of
// the LOWEST failing index, independent of thread interleaving, so
// error reporting is as deterministic as the results themselves.
//
// `busy_nanos`, when non-null, accumulates the summed wall time every
// participating thread spent inside `body` — the numerator of the
// per-phase speedup estimate busy / elapsed.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& body,
                   std::atomic<uint64_t>* busy_nanos = nullptr);

}  // namespace sama

#endif  // SAMA_COMMON_THREAD_POOL_H_

#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sama {

Status BindListener(const ListenerOptions& options, int* fd,
                    uint16_t* bound_port) {
  *fd = -1;
  int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(sock, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(sock);
    return Status::InvalidArgument("bad listen host: " + options.host);
  }
  if (::bind(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError(std::string("bind ") + options.host + ":" +
                                std::to_string(options.port) + ": " +
                                std::strerror(errno));
    ::close(sock);
    return st;
  }
  if (::listen(sock, options.backlog) < 0) {
    Status st = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(sock);
    return st;
  }
  if (options.nonblocking) {
    Status st = SetNonBlocking(sock);
    if (!st.ok()) {
      ::close(sock);
      return st;
    }
  }
  // Resolve the ephemeral port; fall back to the requested one if the
  // (unlikely) getsockname fails on a fixed-port bind.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  } else {
    *bound_port = options.port;
  }
  *fd = sock;
  return Status::Ok();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace sama

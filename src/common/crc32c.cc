#include "common/crc32c.h"

namespace sama {
namespace {

// 256-entry lookup table for the reflected Castagnoli polynomial,
// generated once on first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPolyReflected = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = Table().entries;
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sama

#ifndef SAMA_COMMON_HASH_H_
#define SAMA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sama {

// 64-bit FNV-1a over a byte range. Deterministic across platforms, used
// for label hashing in the index (paper §6.1 step (i)).
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Mixes `value` into an accumulated hash (boost-style combiner widened to
// 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace sama

#endif  // SAMA_COMMON_HASH_H_

#ifndef SAMA_COMMON_RESULT_H_
#define SAMA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sama {

// Holds either a value of type T or a non-OK Status explaining why the
// value could not be produced. The value accessors assert on misuse; call
// ok() first.
//
// Example:
//   Result<DataGraph> g = ParseNTriples(input);
//   if (!g.ok()) return g.status();
//   Use(g.value());
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse (`return graph;` / `return Status::ParseError(...)`), matching
  // the StatusOr convention.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Returns the error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Unwraps a Result into `lhs`, propagating errors to the caller.
#define SAMA_ASSIGN_OR_RETURN(lhs, expr)              \
  auto sama_result_##__LINE__ = (expr);               \
  if (!sama_result_##__LINE__.ok())                   \
    return sama_result_##__LINE__.status();           \
  lhs = std::move(sama_result_##__LINE__).value()

}  // namespace sama

#endif  // SAMA_COMMON_RESULT_H_

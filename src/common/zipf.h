// Zipf-distributed popularity over a named catalogue, shared by the
// load benchmarks. Two deliberate properties fix bugs the original
// bench-local implementation had:
//
//   1. Weights follow the CANONICAL rank of an item (names sorted
//      lexicographically), not its declaration position — reordering
//      or filtering a query mix no longer silently reshapes the
//      sampled distribution.
//   2. Sampling walks a precomputed cumulative distribution with the
//      final bucket clamped: a uniform draw landing in the
//      floating-point shortfall above the last cumulative sum maps to
//      the last index instead of falling off the end.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"

namespace sama {

// Normalized Zipf weights for `names`: the item with rank r in the
// canonical order (names sorted lexicographically; ties keep their
// original relative order) gets weight proportional to 1/(r+1)^s.
// The returned vector is parallel to `names` and sums to 1.
inline std::vector<double> ZipfWeights(const std::vector<std::string>& names,
                                       double s) {
  const size_t n = names.size();
  std::vector<size_t> by_name(n);
  for (size_t i = 0; i < n; ++i) by_name[i] = i;
  std::sort(by_name.begin(), by_name.end(), [&](size_t a, size_t b) {
    if (names[a] != names[b]) return names[a] < names[b];
    return a < b;
  });
  std::vector<double> weights(n, 0.0);
  double total = 0;
  for (size_t r = 0; r < n; ++r) {
    double w = 1.0 / std::pow(static_cast<double>(r + 1), s);
    weights[by_name[r]] = w;
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

// Samples indices proportionally to a fixed weight vector via its
// cumulative distribution (O(log n) per draw).
class ZipfSampler {
 public:
  ZipfSampler() = default;
  explicit ZipfSampler(const std::vector<double>& weights) : cum_(weights) {
    double acc = 0;
    for (double& c : cum_) {
      acc += c;
      c = acc;
    }
  }

  // The bucket a uniform draw u in [0, 1) lands in: the first index
  // whose cumulative weight strictly exceeds u, clamped to the last
  // bucket so round-off in the cumulative sum can never push a draw
  // past the end. Zero-weight entries occupy an empty half-open
  // interval and are never selected.
  size_t IndexFor(double u) const {
    auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
    if (it == cum_.end()) return cum_.size() - 1;
    return static_cast<size_t>(it - cum_.begin());
  }

  size_t Sample(Random* rng) const { return IndexFor(rng->NextDouble()); }

  bool empty() const { return cum_.empty(); }

 private:
  std::vector<double> cum_;
};

}  // namespace sama

#ifndef SAMA_COMMON_STATUS_H_
#define SAMA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace sama {

// The outcome of an operation that can fail. Mirrors the Status idiom used
// by storage engines: cheap to copy in the OK case, carries a code and a
// message otherwise. Functions in this codebase report failure through
// Status (or Result<T>) instead of throwing exceptions.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kIoError,
    kCorruption,
    kParseError,
    kUnimplemented,
    kInternal,
  };

  // Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK status to the caller.
#define SAMA_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::sama::Status sama_status_ = (expr);           \
    if (!sama_status_.ok()) return sama_status_;    \
  } while (false)

}  // namespace sama

#endif  // SAMA_COMMON_STATUS_H_

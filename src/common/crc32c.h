#ifndef SAMA_COMMON_CRC32C_H_
#define SAMA_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sama {

// CRC-32C (Castagnoli polynomial 0x1EDC6F41, bit-reflected), the page
// checksum used by iSCSI, ext4 and most storage engines. Software
// table-driven implementation; deterministic across platforms.

// Extends a running CRC with `n` more bytes. Start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace sama

#endif  // SAMA_COMMON_CRC32C_H_

#include "common/thread_pool.h"

#include <chrono>
#include <exception>
#include <string>

namespace sama {

ThreadPool::ThreadPool(size_t num_workers) {
  size_t n = num_workers == 0 ? 1 : num_workers;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    // queued_ increments under idle_mu_ so a worker deciding to sleep
    // cannot miss this submission (its predicate re-check holds the
    // same mutex).
    std::lock_guard<std::mutex> lock(idle_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(size_t home) {
  std::function<void()> task;
  const size_t n = queues_.size();
  for (size_t probe = 0; probe < n; ++probe) {
    size_t q = (home + probe) % n;
    WorkerQueue& wq = *queues_[q];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.tasks.empty()) continue;
    if (probe == 0) {
      // Own queue: FIFO keeps submission order for fairness.
      task = std::move(wq.tasks.front());
      wq.tasks.pop_front();
    } else {
      // Steal from the back to minimise contention with the owner.
      task = std::move(wq.tasks.back());
      wq.tasks.pop_back();
    }
    break;
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  while (true) {
    if (TryRunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

namespace {

// Shared state of one ParallelFor call. Helper tasks may outlive the
// call (they stay queued until a worker gets to them and then find the
// range exhausted), hence the shared_ptr ownership.
struct ParallelForState {
  size_t n = 0;
  const std::function<Status(size_t)>* body = nullptr;
  std::atomic<uint64_t>* busy_nanos = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};

  std::mutex mu;
  std::condition_variable cv;
  // Error of the lowest failing index (deterministic across runs).
  size_t error_index = SIZE_MAX;
  Status error;
};

// Claims indices until the range is exhausted. Runs in the caller and
// in every recruited helper task.
void DrainRange(const std::shared_ptr<ParallelForState>& state) {
  using Clock = std::chrono::steady_clock;
  while (true) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) return;
    Clock::time_point start = Clock::now();
    Status s;
    try {
      s = (*state->body)(i);
    } catch (const std::exception& e) {
      s = Status::Internal(std::string("uncaught exception: ") + e.what());
    } catch (...) {
      s = Status::Internal("uncaught non-std exception");
    }
    if (state->busy_nanos != nullptr) {
      uint64_t nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      state->busy_nanos->fetch_add(nanos, std::memory_order_relaxed);
    }
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (i < state->error_index) {
        state->error_index = i;
        state->error = s;
      }
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->n) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& body,
                   std::atomic<uint64_t>* busy_nanos) {
  if (n == 0) return Status::Ok();
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->body = &body;
  state->busy_nanos = busy_nanos;
  size_t helpers =
      pool == nullptr ? 0 : std::min(pool->worker_count(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { DrainRange(state); });
  }
  DrainRange(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == n;
    });
    return state->error;
  }
}

}  // namespace sama

#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace sama {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

std::string HumanMillis(double millis) {
  char buf[32];
  if (millis < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", millis);
  } else if (millis < 60.0 * 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f sec", millis / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", millis / 60000.0);
  }
  return buf;
}

}  // namespace sama

#include "common/fault_injection.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

namespace sama {
namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kSync:
      return "sync";
    case IoOp::kRename:
      return "rename";
    case IoOp::kRemove:
      return "remove";
    case IoOp::kOpCount:
      break;
  }
  return "unknown";
}

// --- Env (POSIX default implementation) ---

Result<int> Env::OpenFile(const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  return fd;
}

Status Env::CloseFile(int fd, const std::string& path) {
  if (::close(fd) != 0) return Status::IoError(Errno("close", path));
  return Status::Ok();
}

Result<size_t> Env::PRead(int fd, const std::string& path, uint64_t offset,
                          void* buf, size_t n) {
  size_t got = 0;
  uint8_t* out = static_cast<uint8_t*>(buf);
  while (got < n) {
    ssize_t r = ::pread(fd, out + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("pread", path));
    }
    if (r == 0) break;  // End of file.
    got += static_cast<size_t>(r);
  }
  return got;
}

Status Env::PWrite(int fd, const std::string& path, uint64_t offset,
                   const void* buf, size_t n) {
  size_t put = 0;
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  while (put < n) {
    ssize_t w = ::pwrite(fd, in + put, n - put,
                         static_cast<off_t>(offset + put));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("pwrite", path));
    }
    put += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status Env::SyncFile(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return Status::IoError(Errno("fsync", path));
  return Status::Ok();
}

Result<uint64_t> Env::FileSizeFd(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return Status::IoError(Errno("fstat", path));
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<uint8_t>> Env::ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError(Errno("fstat", path));
    ::close(fd);
    return s;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  auto got = PRead(fd, path, 0, bytes.data(), bytes.size());
  ::close(fd);
  if (!got.ok()) return got.status();
  if (*got != bytes.size()) {
    // The file shrank between fstat and read — report both counts.
    return Status::IoError("read '" + path + "': got " +
                           std::to_string(*got) + " of " +
                           std::to_string(bytes.size()) + " bytes");
  }
  return bytes;
}

Status Env::WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  auto fd = OpenFile(path, /*truncate=*/true);
  if (!fd.ok()) return fd.status();
  Status s = PWrite(*fd, path, 0, bytes.data(), bytes.size());
  if (s.ok()) s = SyncFile(*fd, path);
  Status close_status = CloseFile(*fd, path);
  return s.ok() ? close_status : s;
}

Status Env::AppendFileBytes(const std::string& path,
                            const std::vector<uint8_t>& bytes) {
  auto fd = OpenFile(path, /*truncate=*/false);
  if (!fd.ok()) return fd.status();
  auto size = FileSizeFd(*fd, path);
  Status s = size.ok() ? Status::Ok() : size.status();
  if (s.ok()) s = PWrite(*fd, path, *size, bytes.data(), bytes.size());
  Status close_status = CloseFile(*fd, path);
  return s.ok() ? close_status : s;
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename '" + from + "' -> '" + to +
                           "': " + std::strerror(errno));
  }
  return Status::Ok();
}

Status Env::TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError(Errno("truncate", path));
  }
  return Status::Ok();
}

Status Env::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(Errno("unlink", path));
  }
  return Status::Ok();
}

bool Env::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status Env::CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(Errno("mkdir", path));
  }
  return Status::Ok();
}

Result<std::vector<std::string>> Env::ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Status::IoError(Errno("opendir", path));
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(dir);
  return names;
}

Status Env::RemoveDir(const std::string& path) {
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(Errno("rmdir", path));
  }
  return Status::Ok();
}

Status Env::SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(Errno("open dir", path));
  Status s;
  if (::fsync(fd) != 0) s = Status::IoError(Errno("fsync dir", path));
  ::close(fd);
  return s;
}

Env* Env::Default() {
  static Env env;
  return &env;
}

// --- FaultyEnv ---

FaultyEnv::FaultyEnv(Env* base, uint64_t seed)
    : base_(base == nullptr ? Env::Default() : base),
      rng_state_(seed == 0 ? 1 : seed) {}

void FaultyEnv::Arm(IoOp op, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[op] = spec;
}

void FaultyEnv::Disarm(IoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.erase(op);
}

void FaultyEnv::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  crashed_ = false;
  rng_state_ = seed == 0 ? 1 : seed;
  std::memset(counts_, 0, sizeof(counts_));
}

void FaultyEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultyEnv::op_count(IoOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<size_t>(op)];
}

Status FaultyEnv::Account(IoOp op, const std::string& target, size_t n,
                          size_t* torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IoError("injected crash: env is down (" +
                           std::string(IoOpName(op)) + " '" + target + "')");
  }
  uint64_t ordinal = counts_[static_cast<size_t>(op)]++;
  auto it = faults_.find(op);
  if (it == faults_.end()) return Status::Ok();
  const FaultSpec& spec = it->second;
  bool fire = ordinal >= spec.fail_after;
  if (!fire && spec.probability > 0.0) {
    // xorshift64*: deterministic for a fixed seed.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    uint64_t draw = rng_state_ * 0x2545F4914F6CDD1DULL;
    fire = static_cast<double>(draw >> 11) / 9007199254740992.0 <
           spec.probability;
  }
  if (!fire) return Status::Ok();
  if (spec.torn && torn_prefix != nullptr && n > 0) {
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    *torn_prefix = static_cast<size_t>(
        (rng_state_ * 0x2545F4914F6CDD1DULL) % n);
  }
  if (spec.crash) crashed_ = true;
  std::string kind = spec.torn ? "torn " : "";
  return Status::IoError("injected " + kind + std::string(IoOpName(op)) +
                         " failure after " + std::to_string(ordinal) +
                         " ops ('" + target + "')");
}

Result<int> FaultyEnv::OpenFile(const std::string& path, bool truncate) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kOpen, path));
  return base_->OpenFile(path, truncate);
}

Status FaultyEnv::CloseFile(int fd, const std::string& path) {
  // Closing is always allowed — a dead process's descriptors close too.
  return base_->CloseFile(fd, path);
}

Result<size_t> FaultyEnv::PRead(int fd, const std::string& path,
                                uint64_t offset, void* buf, size_t n) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRead, path));
  return base_->PRead(fd, path, offset, buf, n);
}

Status FaultyEnv::PWrite(int fd, const std::string& path, uint64_t offset,
                         const void* buf, size_t n) {
  size_t torn_prefix = 0;
  Status injected = Account(IoOp::kWrite, path, n, &torn_prefix);
  if (!injected.ok()) {
    if (torn_prefix > 0) {
      // Persist the torn prefix through the base env, then fail: the
      // on-disk page now holds a mix of old and new bytes.
      (void)base_->PWrite(fd, path, offset, buf, torn_prefix);
    }
    return injected;
  }
  return base_->PWrite(fd, path, offset, buf, n);
}

Status FaultyEnv::SyncFile(int fd, const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kSync, path));
  return base_->SyncFile(fd, path);
}

Result<uint64_t> FaultyEnv::FileSizeFd(int fd, const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRead, path));
  return base_->FileSizeFd(fd, path);
}

Result<std::vector<uint8_t>> FaultyEnv::ReadFileBytes(
    const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRead, path));
  return base_->ReadFileBytes(path);
}

Status FaultyEnv::WriteFileBytes(const std::string& path,
                                 const std::vector<uint8_t>& bytes) {
  size_t torn_prefix = 0;
  Status injected = Account(IoOp::kWrite, path, bytes.size(), &torn_prefix);
  if (!injected.ok()) {
    if (torn_prefix > 0) {
      std::vector<uint8_t> prefix(bytes.begin(),
                                  bytes.begin() + static_cast<long>(torn_prefix));
      (void)base_->WriteFileBytes(path, prefix);
    }
    return injected;
  }
  return base_->WriteFileBytes(path, bytes);
}

Status FaultyEnv::AppendFileBytes(const std::string& path,
                                  const std::vector<uint8_t>& bytes) {
  size_t torn_prefix = 0;
  Status injected = Account(IoOp::kWrite, path, bytes.size(), &torn_prefix);
  if (!injected.ok()) {
    if (torn_prefix > 0) {
      std::vector<uint8_t> prefix(bytes.begin(),
                                  bytes.begin() + static_cast<long>(torn_prefix));
      (void)base_->AppendFileBytes(path, prefix);
    }
    return injected;
  }
  return base_->AppendFileBytes(path, bytes);
}

Status FaultyEnv::RenameFile(const std::string& from, const std::string& to) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRename, from));
  return base_->RenameFile(from, to);
}

Status FaultyEnv::TruncateFile(const std::string& path, uint64_t size) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kWrite, path));
  return base_->TruncateFile(path, size);
}

Status FaultyEnv::RemoveFile(const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRemove, path));
  return base_->RemoveFile(path);
}

bool FaultyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultyEnv::CreateDir(const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kWrite, path));
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultyEnv::ListDir(const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRead, path));
  return base_->ListDir(path);
}

Status FaultyEnv::RemoveDir(const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kRemove, path));
  return base_->RemoveDir(path);
}

Status FaultyEnv::SyncDir(const std::string& path) {
  SAMA_RETURN_IF_ERROR(Account(IoOp::kSync, path));
  return base_->SyncDir(path);
}

// --- FailPoints ---

namespace {

struct FailPointState {
  std::mutex mu;
  std::map<std::string, std::pair<Status, FaultyEnv*>> armed;
  std::set<std::string> seen;
};

FailPointState& Points() {
  static FailPointState state;
  return state;
}

}  // namespace

Status FailPoints::Trigger(const std::string& name) {
  FailPointState& state = Points();
  std::lock_guard<std::mutex> lock(state.mu);
  state.seen.insert(name);
  auto it = state.armed.find(name);
  if (it == state.armed.end()) return Status::Ok();
  if (it->second.second != nullptr) it->second.second->Crash();
  return it->second.first;
}

void FailPoints::Arm(const std::string& name, Status status, FaultyEnv* env) {
  FailPointState& state = Points();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed[name] = {std::move(status), env};
}

void FailPoints::ClearAll() {
  FailPointState& state = Points();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed.clear();
}

std::vector<std::string> FailPoints::Seen() {
  FailPointState& state = Points();
  std::lock_guard<std::mutex> lock(state.mu);
  return std::vector<std::string>(state.seen.begin(), state.seen.end());
}

}  // namespace sama

#include "common/sharded_cache.h"

#include <cstdio>

namespace sama {

double CacheCounters::HitRate() const {
  uint64_t total = lookups();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::string CacheCounters::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "%llu/%llu hits (%.1f%%), %llu evicted",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(lookups()),
                100.0 * HitRate(),
                static_cast<unsigned long long>(evictions));
  return buf;
}

CacheCounters& CacheCounters::operator+=(const CacheCounters& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  insertions += other.insertions;
  return *this;
}

CacheCounters CacheCounters::operator-(const CacheCounters& other) const {
  CacheCounters delta;
  delta.hits = hits - other.hits;
  delta.misses = misses - other.misses;
  delta.evictions = evictions - other.evictions;
  delta.insertions = insertions - other.insertions;
  return delta;
}

}  // namespace sama

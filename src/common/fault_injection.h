#ifndef SAMA_COMMON_FAULT_INJECTION_H_
#define SAMA_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sama {

// The I/O seam under the storage layer. Every byte PageFile and the
// manifest writers move to or from disk flows through an Env, so tests
// can substitute a FaultyEnv that injects I/O errors, short/torn
// writes, fsync failures and crash points deterministically — the
// failure-model contract (DESIGN.md "Failure model") is enforced by
// torture tests driving this seam, never by hoping the disk misbehaves
// on cue.
class Env {
 public:
  virtual ~Env() = default;

  // --- Descriptor-based primitives (PageFile). ---

  // Opens (creating if needed) `path` for read/write.
  virtual Result<int> OpenFile(const std::string& path, bool truncate);
  virtual Status CloseFile(int fd, const std::string& path);
  // Positional read; returns the byte count, which is < `n` only at end
  // of file. An I/O error is kIoError; a short count is the caller's
  // evidence of a truncated file.
  virtual Result<size_t> PRead(int fd, const std::string& path,
                               uint64_t offset, void* buf, size_t n);
  // Writes exactly `n` bytes at `offset` or fails.
  virtual Status PWrite(int fd, const std::string& path, uint64_t offset,
                        const void* buf, size_t n);
  virtual Status SyncFile(int fd, const std::string& path);
  virtual Result<uint64_t> FileSizeFd(int fd, const std::string& path);

  // --- Whole-file and directory primitives (manifest writers and the
  // index-build commit protocol). ---

  virtual Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);
  // Creates/truncates `path` with `bytes` and fsyncs it.
  virtual Status WriteFileBytes(const std::string& path,
                                const std::vector<uint8_t>& bytes);
  // Appends `bytes` at the end of `path` (creating it if needed). No
  // fsync: append streams (the slow-query JSONL sink) trade durability
  // of the tail for not paying a sync per record.
  virtual Status AppendFileBytes(const std::string& path,
                                 const std::vector<uint8_t>& bytes);
  virtual Status RenameFile(const std::string& from, const std::string& to);
  // Truncates `path` to exactly `size` bytes. Used to durably discard a
  // torn WAL tail; counted as a write by FaultyEnv.
  virtual Status TruncateFile(const std::string& path, uint64_t size);
  virtual Status RemoveFile(const std::string& path);
  virtual bool FileExists(const std::string& path);
  virtual Status CreateDir(const std::string& path);  // OK if it exists.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path);
  virtual Status RemoveDir(const std::string& path);  // Must be empty.
  // fsyncs a directory so renames inside it are durable.
  virtual Status SyncDir(const std::string& path);

  // The process-wide POSIX environment.
  static Env* Default();
};

// The I/O operation classes a FaultyEnv can target.
enum class IoOp {
  kOpen = 0,
  kRead,
  kWrite,   // PWrite and WriteFileBytes.
  kSync,    // SyncFile and SyncDir.
  kRename,
  kRemove,
  kOpCount,
};

const char* IoOpName(IoOp op);

// One armed fault: fires after a fixed number of successful calls
// (deterministic), with a per-call probability (seeded, deterministic
// for a fixed seed), or both.
struct FaultSpec {
  // The first `fail_after` calls of the op succeed; every later call
  // fails. UINT64_MAX = never (count trigger disabled).
  uint64_t fail_after = UINT64_MAX;
  // Independent per-call failure probability in [0, 1].
  double probability = 0.0;
  // Failing writes persist a pseudo-random prefix of the buffer first —
  // a torn write. Detected by page checksums, not by the writer.
  bool torn = false;
  // A firing fault also downs the whole env (see FaultyEnv::Crash),
  // simulating the process dying at that exact operation.
  bool crash = false;
};

// An Env wrapper that injects faults per the armed FaultSpecs. All
// randomness derives from the constructor seed, so a given seed always
// yields the same failure sequence. Thread-safe (the buffer pool calls
// from query workers).
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(Env* base = nullptr, uint64_t seed = 0x5a5aF417ULL);

  void Arm(IoOp op, FaultSpec spec);
  void Disarm(IoOp op);
  // Disarms everything, zeroes counters, revives a crashed env and
  // reseeds the RNG.
  void Reset(uint64_t seed);

  // Downs the env: every subsequent operation (reads included) fails
  // with kIoError until Reset. Simulates a killed process — nothing the
  // caller does afterwards reaches the disk.
  void Crash();
  bool crashed() const;

  // Operations of class `op` attempted so far (fired faults included).
  uint64_t op_count(IoOp op) const;

  Result<int> OpenFile(const std::string& path, bool truncate) override;
  Status CloseFile(int fd, const std::string& path) override;
  Result<size_t> PRead(int fd, const std::string& path, uint64_t offset,
                       void* buf, size_t n) override;
  Status PWrite(int fd, const std::string& path, uint64_t offset,
                const void* buf, size_t n) override;
  Status SyncFile(int fd, const std::string& path) override;
  Result<uint64_t> FileSizeFd(int fd, const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) override;
  Status WriteFileBytes(const std::string& path,
                        const std::vector<uint8_t>& bytes) override;
  Status AppendFileBytes(const std::string& path,
                         const std::vector<uint8_t>& bytes) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  // Returns the injected failure for one `op` call, OK to proceed.
  // When a write fault is torn, *torn_prefix is set to the number of
  // bytes (< n) the caller should persist before failing.
  Status Account(IoOp op, const std::string& target, size_t n = 0,
                 size_t* torn_prefix = nullptr);

  Env* base_;
  mutable std::mutex mu_;
  uint64_t rng_state_;
  bool crashed_ = false;
  uint64_t counts_[static_cast<size_t>(IoOp::kOpCount)] = {};
  std::map<IoOp, FaultSpec> faults_;
};

// Named failpoints for crash-consistency tests: code under test calls
// Trigger(name) at interesting protocol points (see
// PathIndex::BuildCrashPoints()); a test arms the point to make it
// return an error and optionally down a FaultyEnv — simulating a crash
// exactly there. Unarmed points are free no-ops beyond a mutex.
class FailPoints {
 public:
  // The status armed for `name`, OK when unarmed.
  static Status Trigger(const std::string& name);
  // Arms `name`: the next Trigger returns `status` after crashing `env`
  // (when non-null). Stays armed until ClearAll.
  static void Arm(const std::string& name, Status status,
                  FaultyEnv* env = nullptr);
  static void ClearAll();
  // Every point name Trigger() has ever seen (for catalogue tests).
  static std::vector<std::string> Seen();
};

}  // namespace sama

#endif  // SAMA_COMMON_FAULT_INJECTION_H_

#include "obs/slo.h"

#include <cmath>
#include <cstdio>

namespace sama {
namespace {

void AppendNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

SloTracker::SloTracker(SloOptions options, const TimeSeriesRing* ring,
                       MetricsRegistry* registry)
    : options_(options), ring_(ring) {
  MetricsRegistry* reg = registry ? registry : MetricsRegistry::Global();
  degraded_gauge_ = reg->GetGauge(
      "sama_slo_degraded",
      "1 when any SLO burn rate is at or above its threshold");
  latency_p99_gauge_ = reg->GetGauge(
      "sama_slo_latency_p99_millis",
      "Windowed p99 request latency the SLO tracker evaluated");
  latency_burn_gauge_ = reg->GetGauge(
      "sama_slo_latency_burn_rate",
      "Slow-request ratio over the allowed ratio (1.0 = at budget)");
  error_burn_gauge_ = reg->GetGauge(
      "sama_slo_error_burn_rate",
      "Error ratio over the allowed ratio (1.0 = at budget)");
  shed_burn_gauge_ = reg->GetGauge(
      "sama_slo_shed_burn_rate",
      "Shed ratio over the allowed ratio (1.0 = at budget)");
}

void SloTracker::Evaluate() {
  if (!options_.enabled || !ring_) return;
  TimeSeriesRing::TopSummary top =
      ring_->Summarize(options_.window_seconds, options_.latency_millis);

  Health h;
  h.evaluated = true;
  h.window_seconds = options_.window_seconds;
  h.latency_p99_millis = std::isnan(top.p99_millis) ? 0.0 : top.p99_millis;
  h.latency_burn = options_.latency_bad_ratio > 0
                       ? top.slow_ratio / options_.latency_bad_ratio
                       : 0.0;
  h.error_burn =
      options_.error_ratio > 0 ? top.error_ratio / options_.error_ratio : 0.0;
  h.shed_burn =
      options_.shed_ratio > 0 ? top.shed_ratio / options_.shed_ratio : 0.0;
  if (h.latency_burn >= options_.burn_threshold) {
    h.violations.push_back("latency");
  }
  if (h.error_burn >= options_.burn_threshold) h.violations.push_back("errors");
  if (h.shed_burn >= options_.burn_threshold) h.violations.push_back("shed");
  h.degraded = !h.violations.empty();

  degraded_gauge_->Set(h.degraded ? 1.0 : 0.0);
  latency_p99_gauge_->Set(h.latency_p99_millis);
  latency_burn_gauge_->Set(h.latency_burn);
  error_burn_gauge_->Set(h.error_burn);
  shed_burn_gauge_->Set(h.shed_burn);

  std::lock_guard<std::mutex> lock(mu_);
  health_ = std::move(h);
}

SloTracker::Health SloTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

std::string SloTracker::RenderJson() const {
  Health h = Snapshot();
  std::string out = "{\"status\":\"";
  out += h.degraded ? "degraded" : "ok";
  out += "\",\"evaluated\":";
  out += h.evaluated ? "true" : "false";
  out += ",\"window_seconds\":";
  AppendNumber(&out, h.window_seconds);
  out += ",\"burn_threshold\":";
  AppendNumber(&out, options_.burn_threshold);
  out += ",\"objectives\":{\"latency\":{\"threshold_ms\":";
  AppendNumber(&out, options_.latency_millis);
  out += ",\"allowed_bad_ratio\":";
  AppendNumber(&out, options_.latency_bad_ratio);
  out += ",\"p99_ms\":";
  AppendNumber(&out, h.latency_p99_millis);
  out += ",\"burn_rate\":";
  AppendNumber(&out, h.latency_burn);
  out += "},\"errors\":{\"allowed_bad_ratio\":";
  AppendNumber(&out, options_.error_ratio);
  out += ",\"burn_rate\":";
  AppendNumber(&out, h.error_burn);
  out += "},\"shed\":{\"allowed_bad_ratio\":";
  AppendNumber(&out, options_.shed_ratio);
  out += ",\"burn_rate\":";
  AppendNumber(&out, h.shed_burn);
  out += "}},\"violations\":[";
  for (size_t i = 0; i < h.violations.size(); ++i) {
    if (i) out.push_back(',');
    out += "\"" + h.violations[i] + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace sama

#ifndef SAMA_OBS_SLOW_QUERY_LOG_H_
#define SAMA_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"

namespace sama {

// One slow query, as captured by the engine after execution. Durations
// are steady-clock measurements; `unix_millis` is a wall-clock stamp
// for the JSONL sink only and plays no part in any latency math.
struct SlowQueryRecord {
  std::string label;  // Optional caller-provided query label.
  // Propagated request identity (DESIGN.md §15): the trace-id hex and
  // the wire request id the server received the query under, so a slow
  // server-side query is joinable to the client that sent it. Empty/0
  // for local (non-served) queries.
  std::string trace_id;
  uint64_t request_id = 0;
  double total_millis = 0.0;
  double preprocess_millis = 0.0;
  double clustering_millis = 0.0;
  double search_millis = 0.0;
  uint64_t num_query_paths = 0;
  uint64_t num_candidate_paths = 0;
  uint64_t num_answers = 0;
  uint64_t search_expansions = 0;
  bool search_truncated = false;
  uint64_t corrupt_records_skipped = 0;
  uint64_t io_retries = 0;
  int threads = 0;
  int64_t unix_millis = 0;
};

// Bounded in-memory ring of the most recent slow queries, with an
// optional JSONL file sink routed through Env so fault-injection tests
// cover the sink like any other write path. Recording is off the query
// hot path by construction — only queries over the threshold get here.
// A sink failure never fails the query: it is counted, remembered in
// last_sink_status(), and the in-memory ring still records.
class SlowQueryLog {
 public:
  struct Options {
    // Queries at or above this total latency are recorded. <= 0
    // disables the log entirely (ShouldRecord always false).
    double threshold_millis = 100.0;
    size_t capacity = 128;  // Ring size; oldest records are overwritten.
    std::string jsonl_path;  // Empty = in-memory ring only.
    Env* env = nullptr;      // Defaults to Env::Default() when a path is set.
  };

  explicit SlowQueryLog(Options options);

  bool enabled() const { return options_.threshold_millis > 0; }
  bool ShouldRecord(double total_millis) const {
    return enabled() && total_millis >= options_.threshold_millis;
  }

  // Records unconditionally (the threshold check is the caller's, via
  // ShouldRecord, so callers can also force-record). Appends one JSON
  // line to the sink when configured.
  void Record(const SlowQueryRecord& record);

  // Oldest-to-newest view of the ring.
  std::vector<SlowQueryRecord> Snapshot() const;

  uint64_t total_recorded() const;
  uint64_t sink_failures() const;
  Status last_sink_status() const;
  const Options& options() const { return options_; }

  static std::string ToJsonLine(const SlowQueryRecord& record);

 private:
  Options options_;
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> ring_;  // ring_[i] valid for i < filled_.
  size_t next_ = 0;                    // Next write slot.
  size_t filled_ = 0;
  uint64_t total_recorded_ = 0;
  uint64_t sink_failures_ = 0;
  Status last_sink_status_;
};

}  // namespace sama

#endif  // SAMA_OBS_SLOW_QUERY_LOG_H_

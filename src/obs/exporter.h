#ifndef SAMA_OBS_EXPORTER_H_
#define SAMA_OBS_EXPORTER_H_

#include <string>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace sama {

// Renders a QueryProfile as a postgres-style EXPLAIN ANALYZE text
// tree: one line per aggregated phase node with wall/self time, span
// and thread counts, plus indented resource lines (cache hit/miss,
// pages fetched/read/evicted, bytes read, retries) for nodes that
// carry counters. Deterministic for a fixed profile — the golden test
// in tests/obs/exporter_test.cc locks the format, which sama_cli
// --explain and the /debug/profile?format=text endpoint both emit.
std::string RenderExplainAnalyze(const QueryProfile& profile);

// Renders the profile's raw spans as Chrome trace-event JSON (the
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// format), loadable in Perfetto or chrome://tracing: one complete
// ("ph":"X") event per span with microsecond timestamps, thread_name
// metadata events for every per-trace thread ordinal, and the phase
// resource counters attached as args on the first span of each phase.
// Written by sama_cli --profile-out and served by /debug/profile.
std::string RenderChromeTrace(const QueryProfile& profile);

// Same trace-event JSON for a raw span list — the shape /debug/trace
// serves for propagated traces (DESIGN.md §15), which have no
// QueryProfile (a trace can span several requests, so the single-query
// profile aggregation does not apply). Span attributes become string
// args; `trace_id` labels the Perfetto process row.
std::string RenderSpansChromeTrace(const std::vector<TraceSpan>& spans,
                                   const std::string& trace_id);

// Recomputes the P50/P95/P99 latency quantiles from the engine's
// latency histograms (sama_query_latency_millis and the per-phase
// sama_query_phase_millis series) and publishes them as
// sama_query_latency_seconds{quantile="..."} /
// sama_query_phase_seconds{phase="...",quantile="..."} gauges in
// `registry`. Quantiles are linearly interpolated inside the bucket
// (Histogram::Quantile); histograms with no observations publish
// nothing. Call before rendering /metrics — scrape-time computation
// keeps the query hot path free of quantile math.
void RefreshLatencyQuantiles(MetricsRegistry* registry);

// Publishes the global epoch manager's reclamation state as gauges in
// `registry`: sama_epoch_current (the epoch number), sama_epoch_pins
// (lifetime pin operations), and sama_epoch_pending_reclaims (retired
// objects whose grace period has not yet passed — a stuck reader shows
// up as this value growing without bound). Call before rendering
// /metrics, like RefreshLatencyQuantiles: scrape-time publication
// keeps the lock-free read paths free of metrics traffic.
void RefreshEpochMetrics(MetricsRegistry* registry);

}  // namespace sama

#endif  // SAMA_OBS_EXPORTER_H_

#ifndef SAMA_OBS_METRICS_H_
#define SAMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sama {

// Process-wide metrics: named counters, gauges and fixed-bucket
// histograms with Prometheus text exposition. Instrument pointers are
// stable for the registry's lifetime, so callers resolve a name once
// (registration takes a mutex) and then update through the pointer —
// the update path is a relaxed atomic op, never a lock. This is the
// single telemetry surface DESIGN.md "Observability" describes; the
// per-query QueryStats struct is a snapshot view layered on top of it.

// Label set attached to one time series, e.g. {{"cache", "postings"}}.
// Keys are sorted at registration so the exposition order (and the
// identity of a series) is independent of argument order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

// One series' state at a moment, as captured by
// MetricsRegistry::Collect. Counters/gauges fill `value`; histograms
// fill count/sum/buckets/bounds (buckets are NON-cumulative and carry
// one extra trailing +Inf slot, mirroring Histogram's layout).
struct MetricSample {
  std::string name;
  std::string labels;  // Rendered "{k=\"v\",...}" or "".
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<uint64_t> buckets;
  std::vector<double> bounds;

  // The series key the time-series layer addresses samples by.
  std::string Key() const { return name + labels; }
};

// Monotonic counter. Exposed as TYPE counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value. Exposed as TYPE gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket upper bounds are set at registration
// and never change; Observe is a bucket search plus two relaxed atomic
// adds. Exposition renders cumulative _bucket{le=...} counts plus _sum
// and _count, per the Prometheus histogram convention.
class Histogram {
 public:
  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Observations <= bounds()[i]; non-cumulative.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Observations above the last finite bound (the +Inf bucket).
  uint64_t OverflowCount() const {
    return buckets_[bounds_.size()].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }

  // Estimates the q-quantile (q in [0,1]) with linear interpolation
  // inside the bucket the rank lands in, matching PromQL's
  // histogram_quantile: the selected bucket is the FIRST whose
  // cumulative count reaches the rank (an empty selected bucket —
  // boundary-exact ranks only — yields its lower edge), the first
  // bucket interpolates from 0 (or returns its bound when that bound
  // is <= 0), and a rank in the +Inf bucket returns the largest
  // finite bound. NaN when the histogram has no observations. Totals
  // come from one bucket snapshot, so a concurrent Observe cannot put
  // the rank outside the counted mass.
  double Quantile(double q) const;

  // Default latency bounds in milliseconds: 0.25ms .. ~8s, powers of two.
  static std::vector<double> LatencyBucketsMillis();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // Sorted, strictly increasing, finite.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Each getter returns the existing series when (name, labels) was
  // registered before — `help` and histogram bounds are fixed by the
  // first registration — and nullptr when `name` is already registered
  // as a different instrument type. Pointers remain valid for the
  // registry's lifetime.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, MetricLabels labels = {});

  // Prometheus text exposition (version 0.0.4): families sorted by
  // name, series sorted by label string, so output is deterministic.
  std::string RenderText() const;

  // Value snapshot of every registered series, ordered like RenderText
  // (family name, then label text). This is the sampling surface the
  // TimeSeriesRing scrapes — values are relaxed-atomic reads, and the
  // registry mutex is held only to walk the registration maps.
  std::vector<MetricSample> Collect() const;

  // Zeroes every value while keeping all registrations (and the
  // pointers callers hold) valid. Test/bench isolation only.
  void ResetValuesForTest();

  // The process-wide registry production code defaults to.
  static MetricsRegistry* Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_text;  // Rendered "{k=\"v\",...}" or "".
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string help;
    // label_text -> series; map keeps exposition sorted.
    std::map<std::string, Series> series;
  };

  static std::string RenderLabels(const MetricLabels& labels);

  Family* GetFamily(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;  // Registration and render; never the hot path.
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace sama

#endif  // SAMA_OBS_METRICS_H_

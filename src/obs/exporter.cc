#include "obs/exporter.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "common/string_util.h"

namespace sama {
namespace {

std::string Millis(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", v);
  return buf;
}

// Micros for the trace-event timebase (ts/dur are microseconds).
std::string Micros(double millis) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", millis * 1000.0);
  return buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void JsonEscapeTo(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

// " [cache 34 hit / 3 miss, pages 12 fetched / 2 read / 1 evicted,
//    8.0 KB read, io 2 retried / 1 corrupt, 840 expansions]"
std::string CounterText(const ProfileCounters& c) {
  std::vector<std::string> parts;
  if (c.cache_hits || c.cache_misses) {
    std::string s = "cache ";
    AppendU64(&s, c.cache_hits);
    s += " hit / ";
    AppendU64(&s, c.cache_misses);
    s += " miss";
    parts.push_back(std::move(s));
  }
  if (c.pages_fetched || c.pages_read || c.pages_evicted) {
    std::string s = "pages ";
    AppendU64(&s, c.pages_fetched);
    s += " fetched / ";
    AppendU64(&s, c.pages_read);
    s += " read / ";
    AppendU64(&s, c.pages_evicted);
    s += " evicted";
    parts.push_back(std::move(s));
  }
  if (c.bytes_read) parts.push_back(HumanBytes(c.bytes_read) + " read");
  if (c.io_retries || c.corrupt_skipped) {
    std::string s = "io ";
    AppendU64(&s, c.io_retries);
    s += " retried / ";
    AppendU64(&s, c.corrupt_skipped);
    s += " corrupt";
    parts.push_back(std::move(s));
  }
  if (c.search_expansions) {
    std::string s;
    AppendU64(&s, c.search_expansions);
    s += " expansions";
    parts.push_back(std::move(s));
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += parts[i];
  }
  return out;
}

void RenderNode(const QueryProfile& profile, size_t index,
                const std::string& prefix, const std::string& child_prefix,
                std::string* out) {
  const ProfileNode& node = profile.nodes()[index];
  *out += prefix + node.name + "  (wall " + Millis(node.wall_millis) +
          ", self " + Millis(node.self_millis);
  if (node.spans > 1) {
    *out += ", ";
    AppendU64(out, node.spans);
    *out += " spans";
  }
  if (node.threads > 1) {
    *out += " on ";
    AppendU64(out, node.threads);
    *out += " threads";
  }
  *out += ")\n";
  if (node.counters.any()) {
    *out += child_prefix + "  [" + CounterText(node.counters) + "]\n";
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    bool last = i + 1 == node.children.size();
    RenderNode(profile, node.children[i],
               child_prefix + (last ? "└─ " : "├─ "),
               child_prefix + (last ? "   " : "│  "), out);
  }
}

}  // namespace

std::string RenderExplainAnalyze(const QueryProfile& profile) {
  const ProfileSummary& s = profile.summary();
  std::string out = "EXPLAIN ANALYZE";
  if (!s.label.empty()) out += "  " + s.label;
  out += "\n  answers: ";
  AppendU64(&out, s.num_answers);
  out += "   query paths: ";
  AppendU64(&out, s.num_query_paths);
  out += "   candidate paths: ";
  AppendU64(&out, s.num_candidate_paths);
  out += "   threads: ";
  AppendU64(&out, s.threads_used);
  out += "\n  total: " + Millis(s.total_millis);
  if (s.search_truncated) out += "   [TRUNCATED by the anytime budget]";
  out += "\n";
  for (size_t root : profile.roots()) {
    RenderNode(profile, root, "", "", &out);
  }
  return out;
}

std::string RenderChromeTrace(const QueryProfile& profile) {
  // Phase counters rendered as args on the FIRST span of each
  // counter-carrying node name (the aggregated node folds its
  // same-name siblings, so the first span stands for the group).
  std::unordered_map<std::string, const ProfileCounters*> counters_by_name;
  for (const ProfileNode& node : profile.nodes()) {
    if (node.counters.any()) counters_by_name.emplace(node.name, &node.counters);
  }
  const ProfileSummary& s = profile.summary();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"sama query\"}}";
  std::set<uint32_t> threads;
  for (const TraceSpan& span : profile.spans()) threads.insert(span.thread);
  for (uint32_t tid : threads) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(&out, tid);
    out += ",\"args\":{\"name\":\"";
    out += tid == 0 ? "query thread" : "worker " + std::to_string(tid);
    out += "\"}}";
  }
  for (const TraceSpan& span : profile.spans()) {
    out += ",\n{\"name\":\"";
    JsonEscapeTo(&out, span.name);
    out += "\",\"cat\":\"sama\",\"ph\":\"X\",\"ts\":";
    out += Micros(span.start_millis);
    out += ",\"dur\":";
    out += Micros(span.duration_millis < 0 ? 0.0 : span.duration_millis);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, span.thread);
    out += ",\"args\":{\"span_id\":";
    AppendU64(&out, span.id);
    if (span.parent != 0) {
      out += ",\"parent\":";
      AppendU64(&out, span.parent);
    }
    if (span.parent == 0) {
      // Root span carries the query-level facts.
      out += ",\"answers\":";
      AppendU64(&out, s.num_answers);
      out += ",\"query_paths\":";
      AppendU64(&out, s.num_query_paths);
      out += ",\"candidate_paths\":";
      AppendU64(&out, s.num_candidate_paths);
      out += ",\"truncated\":";
      out += s.search_truncated ? "true" : "false";
    }
    auto it = counters_by_name.find(span.name);
    if (it != counters_by_name.end()) {
      const ProfileCounters& c = *it->second;
      out += ",\"cache_hits\":";
      AppendU64(&out, c.cache_hits);
      out += ",\"cache_misses\":";
      AppendU64(&out, c.cache_misses);
      out += ",\"pages_fetched\":";
      AppendU64(&out, c.pages_fetched);
      out += ",\"pages_read\":";
      AppendU64(&out, c.pages_read);
      out += ",\"pages_evicted\":";
      AppendU64(&out, c.pages_evicted);
      out += ",\"bytes_read\":";
      AppendU64(&out, c.bytes_read);
      if (c.io_retries) {
        out += ",\"io_retries\":";
        AppendU64(&out, c.io_retries);
      }
      if (c.corrupt_skipped) {
        out += ",\"corrupt_skipped\":";
        AppendU64(&out, c.corrupt_skipped);
      }
      if (c.search_expansions) {
        out += ",\"expansions\":";
        AppendU64(&out, c.search_expansions);
      }
      counters_by_name.erase(it);  // First span of the group only.
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string RenderSpansChromeTrace(const std::vector<TraceSpan>& spans,
                                   const std::string& trace_id) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"sama trace ";
  JsonEscapeTo(&out, trace_id);
  out += "\"}}";
  std::set<uint32_t> threads;
  for (const TraceSpan& span : spans) threads.insert(span.thread);
  for (uint32_t tid : threads) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(&out, tid);
    out += ",\"args\":{\"name\":\"";
    out += tid == 0 ? "request thread" : "worker " + std::to_string(tid);
    out += "\"}}";
  }
  for (const TraceSpan& span : spans) {
    out += ",\n{\"name\":\"";
    JsonEscapeTo(&out, span.name);
    out += "\",\"cat\":\"sama\",\"ph\":\"X\",\"ts\":";
    out += Micros(span.start_millis);
    out += ",\"dur\":";
    out += Micros(span.duration_millis < 0 ? 0.0 : span.duration_millis);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, span.thread);
    out += ",\"args\":{\"span_id\":";
    AppendU64(&out, span.id);
    if (span.parent != 0) {
      out += ",\"parent\":";
      AppendU64(&out, span.parent);
    }
    for (const auto& [key, value] : span.attrs) {
      out += ",\"";
      JsonEscapeTo(&out, key);
      out += "\":\"";
      JsonEscapeTo(&out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void RefreshLatencyQuantiles(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  static constexpr struct {
    double q;
    const char* text;
  } kQuantiles[] = {{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};

  auto publish = [&](Histogram* hist, const char* gauge_name,
                     const char* help, MetricLabels base_labels) {
    if (hist == nullptr || hist->Count() == 0) return;
    for (const auto& quantile : kQuantiles) {
      MetricLabels labels = base_labels;
      labels.emplace_back("quantile", quantile.text);
      Gauge* gauge = registry->GetGauge(gauge_name, help, std::move(labels));
      if (gauge != nullptr) {
        gauge->Set(hist->Quantile(quantile.q) / 1000.0);
      }
    }
  };

  auto bounds = Histogram::LatencyBucketsMillis();
  publish(registry->GetHistogram("sama_query_latency_millis",
                                 "End-to-end query latency.", bounds),
          "sama_query_latency_seconds",
          "End-to-end query latency quantiles (seconds), interpolated "
          "from the histogram at scrape time.",
          {});
  for (const char* phase : {"preprocess", "clustering", "search"}) {
    publish(registry->GetHistogram("sama_query_phase_millis",
                                   "Per-phase query latency.", bounds,
                                   {{"phase", phase}}),
            "sama_query_phase_seconds",
            "Per-phase query latency quantiles (seconds), interpolated "
            "from the histogram at scrape time.",
            {{"phase", phase}});
  }
}

void RefreshEpochMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const EpochManager::Stats s = EpochManager::Global()->stats();
  Gauge* current = registry->GetGauge(
      "sama_epoch_current", "Current global reclamation epoch.");
  if (current != nullptr) current->Set(static_cast<double>(s.epoch));
  Gauge* pins = registry->GetGauge(
      "sama_epoch_pins", "Lifetime epoch pin operations (EpochGuard).");
  if (pins != nullptr) pins->Set(static_cast<double>(s.pins));
  Gauge* pending = registry->GetGauge(
      "sama_epoch_pending_reclaims",
      "Retired objects whose grace period has not yet passed; unbounded "
      "growth means a reader is stuck pinned.");
  if (pending != nullptr) pending->Set(static_cast<double>(s.pending()));
}

}  // namespace sama

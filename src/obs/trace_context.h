#ifndef SAMA_OBS_TRACE_CONTEXT_H_
#define SAMA_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sama {

class QueryTrace;

// Propagated request identity: a 128-bit trace id, the caller's span id
// (the parent for the first span opened on this side of the wire), and
// a sampling flag. Carried in the v2 binary-protocol header extension
// and settable from the CLI tools, so a client, the server request
// handler, per-shard searches and WAL appends all stamp spans into the
// same tree. A zero trace id means "no context" — the server generates
// one in that case.
struct TraceContext {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t parent_span = 0;
  bool sampled = true;

  bool valid() const { return trace_id_hi != 0 || trace_id_lo != 0; }

  // 32 lowercase hex characters (hi then lo), the wire/debug spelling.
  std::string TraceIdHex() const;

  // Accepts 1..32 hex digits (short ids are zero-extended on the left,
  // so `--trace-id=beef` works from a shell). Returns false — leaving
  // *ctx untouched — on empty, overlong or non-hex input, and on the
  // all-zero id, which is reserved for "absent".
  static bool ParseTraceId(std::string_view hex, TraceContext* ctx);

  // Fresh random 128-bit id, sampled. Not deterministic by design —
  // trace ids must not collide across processes.
  static TraceContext Generate();
};

inline bool operator==(const TraceContext& a, const TraceContext& b) {
  return a.trace_id_hi == b.trace_id_hi && a.trace_id_lo == b.trace_id_lo &&
         a.parent_span == b.parent_span && a.sampled == b.sampled;
}

// Bounded keep-alive map from trace-id hex to the QueryTrace collecting
// that trace's spans. GetOrCreate returns the SAME trace for repeated
// requests carrying one trace id, which is what stitches a client's
// UPDATE and QUERY (or a retry fan-out) into one tree. Oldest traces
// are evicted first once `capacity` distinct ids are live; callers
// holding the shared_ptr keep an evicted trace readable.
class TraceStore {
 public:
  explicit TraceStore(size_t capacity = 256);

  // Returns the trace registered under ctx's id, creating (and
  // stamping the context into) it on first sight. Invalid contexts
  // yield a fresh unregistered trace so callers never branch.
  std::shared_ptr<QueryTrace> GetOrCreate(const TraceContext& ctx);

  std::shared_ptr<QueryTrace> Find(std::string_view trace_id_hex) const;

  // Registered ids, most recently created first.
  std::vector<std::string> Ids() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  // Insertion order, oldest at the front; entries hold their order
  // iterator so eviction and lookup are both O(log n).
  std::list<std::string> order_;
  struct Entry {
    std::shared_ptr<QueryTrace> trace;
    std::list<std::string>::iterator where;
  };
  std::map<std::string, Entry, std::less<>> traces_;
};

}  // namespace sama

#endif  // SAMA_OBS_TRACE_CONTEXT_H_

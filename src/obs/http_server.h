#ifndef SAMA_OBS_HTTP_SERVER_H_
#define SAMA_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace sama {

// One parsed request. `path` is the request target with the query
// string stripped; `params` holds the percent-decoded query
// parameters; `body` is present when the client sent Content-Length.
struct HttpRequest {
  std::string method;
  std::string target;  // Raw request target, e.g. "/debug/profile?id=3".
  std::string path;    // "/debug/profile"
  std::map<std::string, std::string> params;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Minimal embedded HTTP/1.1 server backing `sama_cli serve`: a
// blocking accept loop over POSIX sockets on a background thread, one
// connection at a time, Connection: close on every response. This is a
// diagnostics endpoint for a scraper and a curl-wielding operator, not
// a web server — no keep-alive, no TLS, no chunked encoding, request
// heads capped at 64 KiB. Handlers are registered before Start and run
// on the server thread, so they must be thread-safe against the
// engine, which every registered handler is (they read snapshot-style
// APIs: MetricsRegistry::RenderText, SlowQueryLog::Snapshot,
// ProfileLog::Get).
class ObsHttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string host = "127.0.0.1";
    // 0 picks an ephemeral port; port() reports the bound one.
    uint16_t port = 0;
  };

  explicit ObsHttpServer(Options options);
  ~ObsHttpServer();

  ObsHttpServer(const ObsHttpServer&) = delete;
  ObsHttpServer& operator=(const ObsHttpServer&) = delete;

  // Registers `handler` for exact-match `path` (query string excluded).
  // Must be called before Start.
  void Handle(std::string path, Handler handler);

  // Binds, listens, and launches the accept thread. Fails on bind
  // errors (port in use, bad host).
  Status Start();

  // Stops the accept loop and joins the thread. Safe to call twice.
  void Stop();

  // The bound port (resolves port 0); valid after Start succeeds.
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  // Requests served since Start, including 404s. For tests and the
  // sama_http_requests_total metric.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, Handler> handlers_;
  // Atomic: Stop() tears the fd down concurrently with the accept
  // loop's read of it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread thread_;
};

// Percent-decodes `s` ("%2Fa+b" -> "/a b"). Invalid escapes pass
// through verbatim. Exposed for tests.
std::string UrlDecode(std::string_view s);

}  // namespace sama

#endif  // SAMA_OBS_HTTP_SERVER_H_

#ifndef SAMA_OBS_SLO_H_
#define SAMA_OBS_SLO_H_

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace sama {

// Service-level objectives evaluated over the telemetry ring. Three
// objectives, each expressed as "at most this fraction of requests may
// be bad" over a rolling window:
//   latency: a request is bad when it lands above `latency_millis`
//            (bucket granularity — the threshold snaps up to the
//            enclosing histogram bound);
//   errors:  error frames / requests;
//   shed:    shed responses / offered load.
// The burn rate for an objective is observed-bad-ratio divided by the
// allowed bad ratio: 1.0 means "consuming budget exactly as fast as
// allowed", >= `burn_threshold` marks the objective violated and the
// process degraded. This is the standard multiwindow-free form of SRE
// burn-rate alerting, sized for one process.
struct SloOptions {
  bool enabled = true;
  double window_seconds = 60.0;
  double burn_threshold = 1.0;
  double latency_millis = 250.0;   // Objective latency threshold.
  double latency_bad_ratio = 0.01;  // <=1% of requests may exceed it.
  double error_ratio = 0.01;       // <=1% of requests may error.
  double shed_ratio = 0.05;        // <=5% of offered load may shed.
};

class SloTracker {
 public:
  // `registry` defaults to Global(); gauges are published there under
  // sama_slo_*. The tracker does not own the ring.
  SloTracker(SloOptions options, const TimeSeriesRing* ring,
             MetricsRegistry* registry = nullptr);

  // Recomputes burn rates from the ring's current window and publishes
  // the sama_slo_* gauges. Wire this to TimeSeriesRing::SetOnSample so
  // it runs once per sampling tick.
  void Evaluate();

  struct Health {
    bool evaluated = false;  // False until the first Evaluate.
    bool degraded = false;
    double latency_p99_millis = 0.0;
    double latency_burn = 0.0;
    double error_burn = 0.0;
    double shed_burn = 0.0;
    double window_seconds = 0.0;
    std::vector<std::string> violations;  // "latency", "errors", "shed".
  };
  Health Snapshot() const;

  // {"status":"ok"|"degraded","window_seconds":...,"objectives":{...}}
  std::string RenderJson() const;

  const SloOptions& options() const { return options_; }

 private:
  SloOptions options_;
  const TimeSeriesRing* ring_;

  Gauge* degraded_gauge_;
  Gauge* latency_p99_gauge_;
  Gauge* latency_burn_gauge_;
  Gauge* error_burn_gauge_;
  Gauge* shed_burn_gauge_;

  mutable std::mutex mu_;
  Health health_;
};

}  // namespace sama

#endif  // SAMA_OBS_SLO_H_

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace sama {
namespace {

// The thread's current span, per trace: a query's phase spans live on
// the caller thread while pool workers record chunk spans for the same
// trace, so the current-span slot must not leak across traces.
struct CurrentSpanSlot {
  const QueryTrace* trace = nullptr;
  uint64_t id = 0;
};
thread_local CurrentSpanSlot tls_current_span;

void JsonEscapeTo(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

double QueryTrace::NowMillis() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - anchor_)
      .count();
}

uint64_t QueryTrace::BeginSpan(std::string_view name, uint64_t parent) {
  const double start = NowMillis();
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t ordinal;
  auto it = thread_ordinals_.find(std::this_thread::get_id());
  if (it == thread_ordinals_.end()) {
    ordinal = static_cast<uint32_t>(thread_ordinals_.size());
    thread_ordinals_.emplace(std::this_thread::get_id(), ordinal);
  } else {
    ordinal = it->second;
  }
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::string(name);
  span.start_millis = start;
  span.duration_millis = -1.0;
  span.thread = ordinal;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint64_t id) {
  const double end = NowMillis();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  TraceSpan& span = spans_[id - 1];
  if (span.duration_millis < 0) {
    span.duration_millis = end - span.start_millis;
    if (span.duration_millis < 0) span.duration_millis = 0;
  }
}

void QueryTrace::SetSpanAttr(uint64_t id, std::string_view key,
                             std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::string(key), std::string(value));
}

void QueryTrace::SetContext(const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  context_ = ctx;
}

TraceContext QueryTrace::context() const {
  std::lock_guard<std::mutex> lock(mu_);
  return context_;
}

std::vector<TraceSpan> QueryTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t QueryTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string QueryTrace::ToJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  const TraceContext ctx = context();
  // Snapshot preserves allocation order (== id order) already; keep the
  // sort so the contract survives internal changes.
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.id < b.id; });
  std::string out = "{";
  if (ctx.valid()) {
    out += "\"trace_id\":\"" + ctx.TraceIdHex() + "\",";
  }
  out += "\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i) out.push_back(',');
    char buf[128];
    out += "{\"id\":";
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)s.id);
    out += buf;
    out += ",\"parent\":";
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)s.parent);
    out += buf;
    out += ",\"name\":\"";
    JsonEscapeTo(&out, s.name);
    out += "\",\"thread\":";
    std::snprintf(buf, sizeof(buf), "%u", s.thread);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"start_ms\":%.3f,\"dur_ms\":%.3f",
                  s.start_millis,
                  s.duration_millis < 0 ? 0.0 : s.duration_millis);
    out += buf;
    if (!s.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t a = 0; a < s.attrs.size(); ++a) {
        if (a) out.push_back(',');
        out.push_back('"');
        JsonEscapeTo(&out, s.attrs[a].first);
        out += "\":\"";
        JsonEscapeTo(&out, s.attrs[a].second);
        out.push_back('"');
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void ObsSpan::Open(QueryTrace* trace, std::string_view name, uint64_t parent) {
  trace_ = trace;
  if (!trace_) return;
  id_ = trace_->BeginSpan(name, parent);
  if (tls_current_span.trace == trace_) {
    saved_current_ = tls_current_span.id;
  } else {
    tls_current_span.trace = trace_;
    saved_current_ = 0;
  }
  tls_current_span.id = id_;
}

ObsSpan::ObsSpan(QueryTrace* trace, std::string_view name) {
  Open(trace, name, CurrentId(trace));
}

ObsSpan::ObsSpan(QueryTrace* trace, std::string_view name, uint64_t parent_id) {
  Open(trace, name, parent_id);
}

void ObsSpan::Close() {
  if (!trace_) return;
  trace_->EndSpan(id_);
  if (tls_current_span.trace == trace_ && tls_current_span.id == id_) {
    tls_current_span.id = saved_current_;
    if (saved_current_ == 0) tls_current_span.trace = nullptr;
  }
  trace_ = nullptr;
  id_ = 0;
}

ObsSpan::~ObsSpan() { Close(); }

ObsSpan::ObsSpan(ObsSpan&& other) noexcept
    : trace_(other.trace_), id_(other.id_), saved_current_(other.saved_current_) {
  other.trace_ = nullptr;
  other.id_ = 0;
}

ObsSpan& ObsSpan::operator=(ObsSpan&& other) noexcept {
  if (this != &other) {
    Close();
    trace_ = other.trace_;
    id_ = other.id_;
    saved_current_ = other.saved_current_;
    other.trace_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void ObsSpan::SetAttr(std::string_view key, std::string_view value) {
  if (trace_) trace_->SetSpanAttr(id_, key, value);
}

uint64_t ObsSpan::CurrentId(const QueryTrace* trace) {
  if (trace && tls_current_span.trace == trace) return tls_current_span.id;
  return 0;
}

}  // namespace sama

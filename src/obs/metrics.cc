#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace sama {
namespace {

// Shortest representation that round-trips a double; integers render
// without a trailing ".0" so counter-like values stay stable in goldens.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  if (parsed == v) {
    // Try shorter forms for readability; keep the first that round-trips.
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// HELP text escaping per the exposition format: only backslash and
// newline (label values additionally escape the double quote, which
// HELP text must NOT — EscapeLabelValue is not reusable here).
std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  while (!bounds_.empty() && !std::isfinite(bounds_.back())) bounds_.pop_back();
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  if (std::isnan(v)) return;  // NaN is unattributable; drop, don't poison.
  // First bound >= v (le semantics); above the last bound lands in +Inf.
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  std::vector<uint64_t> counts(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  double rank = q * static_cast<double>(total);
  // PromQL bucketQuantile semantics: select the FIRST bucket whose
  // cumulative count reaches the rank — even an empty one (possible
  // only when the rank lands exactly on the boundary below it, e.g.
  // q=0 with empty leading buckets). Skipping empty buckets here
  // would misreport such boundary ranks as the next non-empty
  // bucket's range. An empty selected bucket has no observations to
  // interpolate over, so its lower edge is the answer.
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    uint64_t below = cum;
    cum += counts[i];
    if (static_cast<double>(cum) >= rank) {
      if (i == 0 && bounds_[0] <= 0) return bounds_[0];
      double lower = i == 0 ? 0.0 : bounds_[i - 1];
      if (counts[i] == 0) return lower;
      double frac = (rank - static_cast<double>(below)) /
                    static_cast<double>(counts[i]);
      return lower + (bounds_[i] - lower) * frac;
    }
  }
  // The rank fell into the +Inf bucket; the largest finite bound is
  // the best defensible estimate (histogram_quantile's behaviour).
  return bounds_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : bounds_.back();
}

std::vector<double> Histogram::LatencyBucketsMillis() {
  std::vector<double> b;
  for (double v = 0.25; v <= 8192.0; v *= 2.0) b.push_back(v);
  return b;
}

std::string MetricsRegistry::RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i) out.push_back(',');
    out += sorted[i].first;
    out += "=\"";
    out += EscapeLabelValue(sorted[i].second);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(std::string_view name,
                                                    std::string_view help,
                                                    Kind kind) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family fam;
    fam.kind = kind;
    fam.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(fam)).first;
  } else if (it->second.kind != kind) {
    return nullptr;  // Same name, different instrument type.
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, help, Kind::kCounter);
  if (!fam) return nullptr;
  std::string key = RenderLabels(labels);
  Series& s = fam->series[key];
  if (!s.counter) {
    s.label_text = key;
    s.counter.reset(new Counter());
  }
  return s.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, help, Kind::kGauge);
  if (!fam) return nullptr;
  std::string key = RenderLabels(labels);
  Series& s = fam->series[key];
  if (!s.gauge) {
    s.label_text = key;
    s.gauge.reset(new Gauge());
  }
  return s.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds,
                                         MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, help, Kind::kHistogram);
  if (!fam) return nullptr;
  std::string key = RenderLabels(labels);
  Series& s = fam->series[key];
  if (!s.histogram) {
    s.label_text = key;
    s.histogram.reset(new Histogram(std::move(bounds)));
  }
  return s.histogram.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      out += "# HELP " + name + " " + EscapeHelp(fam.help) + "\n";
    }
    out += "# TYPE " + name + " ";
    out += KindName(static_cast<int>(fam.kind));
    out.push_back('\n');
    for (const auto& [label_text, s] : fam.series) {
      switch (fam.kind) {
        case Kind::kCounter:
          out += name + label_text + " " +
                 FormatValue(static_cast<double>(s.counter->Value())) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_text + " " + FormatValue(s.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *s.histogram;
          // _bucket series carry the extra le label; splice it into the
          // existing label set (cumulative counts, per the text format).
          uint64_t cum = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cum += h.BucketCount(i);
            std::string le = "le=\"" + FormatValue(h.bounds()[i]) + "\"";
            std::string lbl = label_text.empty()
                                  ? "{" + le + "}"
                                  : label_text.substr(0, label_text.size() - 1) +
                                        "," + le + "}";
            out += name + "_bucket" + lbl + " " +
                   FormatValue(static_cast<double>(cum)) + "\n";
          }
          cum += h.OverflowCount();
          std::string lbl = label_text.empty()
                                ? "{le=\"+Inf\"}"
                                : label_text.substr(0, label_text.size() - 1) +
                                      ",le=\"+Inf\"}";
          out += name + "_bucket" + lbl + " " +
                 FormatValue(static_cast<double>(cum)) + "\n";
          out += name + "_sum" + label_text + " " + FormatValue(h.Sum()) + "\n";
          out += name + "_count" + label_text + " " +
                 FormatValue(static_cast<double>(h.Count())) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [label_text, s] : fam.series) {
      MetricSample sample;
      sample.name = name;
      sample.labels = label_text;
      switch (fam.kind) {
        case Kind::kCounter:
          sample.kind = MetricKind::kCounter;
          sample.value = static_cast<double>(s.counter->Value());
          break;
        case Kind::kGauge:
          sample.kind = MetricKind::kGauge;
          sample.value = s.gauge->Value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *s.histogram;
          sample.kind = MetricKind::kHistogram;
          sample.count = h.Count();
          sample.sum = h.Sum();
          sample.bounds = h.bounds();
          sample.buckets.reserve(sample.bounds.size() + 1);
          for (size_t i = 0; i < sample.bounds.size(); ++i) {
            sample.buckets.push_back(h.BucketCount(i));
          }
          sample.buckets.push_back(h.OverflowCount());
          break;
        }
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

void MetricsRegistry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fam] : families_) {
    (void)name;
    for (auto& [label_text, s] : fam.series) {
      (void)label_text;
      if (s.counter) s.counter->value_.store(0);
      if (s.gauge) s.gauge->value_.store(0.0);
      if (s.histogram) {
        Histogram& h = *s.histogram;
        for (size_t i = 0; i <= h.bounds_.size(); ++i) h.buckets_[i].store(0);
        h.count_.store(0);
        h.sum_.store(0.0);
      }
    }
  }
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace sama

#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sama {
namespace {

double WallSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

const MetricSample* FindSample(const std::vector<MetricSample>& samples,
                               std::string_view key) {
  for (const MetricSample& s : samples) {
    if (s.name.size() + s.labels.size() == key.size() &&
        key.compare(0, s.name.size(), s.name) == 0 &&
        key.compare(s.name.size(), s.labels.size(), s.labels) == 0) {
      return &s;
    }
  }
  return nullptr;
}

// Sum of values across every series of one family (ignores labels).
double SumByName(const std::vector<MetricSample>& samples,
                 std::string_view name) {
  double total = 0.0;
  for (const MetricSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

// Windowed quantile over non-cumulative bucket deltas, mirroring
// Histogram::Quantile's PromQL interpolation.
double DeltaQuantile(const std::vector<double>& bounds,
                     const std::vector<uint64_t>& deltas, double q) {
  uint64_t total = 0;
  for (uint64_t d : deltas) total += d;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    uint64_t below = cum;
    cum += deltas[i];
    if (static_cast<double>(cum) >= rank) {
      if (i == 0 && bounds[0] <= 0) return bounds[0];
      double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (deltas[i] == 0) return lower;
      double frac = (rank - static_cast<double>(below)) /
                    static_cast<double>(deltas[i]);
      return lower + (bounds[i] - lower) * frac;
    }
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

// Bucket deltas (clamped at zero per bucket, so a histogram reset
// reads as "no observations", never negative mass) between the first
// and last snapshot of one histogram series in a window. Also sums
// histogram family series across labels.
struct HistWindow {
  std::vector<double> bounds;
  std::vector<uint64_t> deltas;
  uint64_t count_delta = 0;
  bool any = false;
};

}  // namespace

TimeSeriesRing::TimeSeriesRing() : TimeSeriesRing(Options()) {}

TimeSeriesRing::TimeSeriesRing(Options options)
    : options_(options),
      registry_(options.registry ? options.registry
                                 : MetricsRegistry::Global()),
      anchor_(std::chrono::steady_clock::now()) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.interval_seconds <= 0) options_.interval_seconds = 1.0;
  ring_.resize(options_.capacity);
}

TimeSeriesRing::~TimeSeriesRing() { Stop(); }

void TimeSeriesRing::Start() {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  stop_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void TimeSeriesRing::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void TimeSeriesRing::SamplerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sampler_mu_);
      sampler_cv_.wait_for(
          lock,
          std::chrono::duration<double>(options_.interval_seconds),
          [this] { return stop_; });
      if (stop_) return;
    }
    SampleOnce();
  }
}

void TimeSeriesRing::SampleOnce() {
  Snapshot snap;
  snap.samples = registry_->Collect();
  snap.wall_seconds = WallSecondsNow();
  snap.steady_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - anchor_)
          .count();
  std::function<void(const TimeSeriesRing&)> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[total_ % options_.capacity] = std::move(snap);
    ++total_;
    cb = on_sample_;
  }
  if (cb) cb(*this);
}

void TimeSeriesRing::SetOnSample(
    std::function<void(const TimeSeriesRing&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  on_sample_ = std::move(cb);
}

size_t TimeSeriesRing::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::min(total_, options_.capacity);
}

std::vector<TimeSeriesRing::Snapshot> TimeSeriesRing::WindowLocked(
    double window_seconds) const {
  std::vector<Snapshot> out;
  const size_t n = std::min(total_, options_.capacity);
  if (n == 0) return out;
  const Snapshot& newest = ring_[(total_ - 1) % options_.capacity];
  const double cutoff = window_seconds > 0
                            ? newest.steady_seconds - window_seconds
                            : -1.0;
  // Oldest retained snapshot first.
  for (size_t i = total_ - n; i < total_; ++i) {
    const Snapshot& s = ring_[i % options_.capacity];
    if (s.steady_seconds >= cutoff) out.push_back(s);
  }
  return out;
}

std::vector<TimeSeriesRing::Snapshot> TimeSeriesRing::Window(
    double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowLocked(window_seconds);
}

std::vector<std::string> TimeSeriesRing::MetricKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  if (total_ == 0) return keys;
  const Snapshot& newest = ring_[(total_ - 1) % options_.capacity];
  keys.reserve(newest.samples.size());
  for (const MetricSample& s : newest.samples) keys.push_back(s.Key());
  return keys;
}

std::string TimeSeriesRing::RenderIndexJson() const {
  std::string out = "{\"interval_seconds\":";
  AppendNumber(&out, options_.interval_seconds);
  out += ",\"capacity\":";
  AppendNumber(&out, static_cast<double>(options_.capacity));
  out += ",\"samples\":";
  AppendNumber(&out, static_cast<double>(num_samples()));
  out += ",\"metrics\":[";
  std::vector<std::string> keys = MetricKeys();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out.push_back(',');
    AppendQuoted(&out, keys[i]);
  }
  out += "]}";
  return out;
}

std::string TimeSeriesRing::RenderJson(std::string_view metric,
                                       double window_seconds) const {
  if (metric.empty()) return RenderIndexJson();
  std::vector<Snapshot> window = Window(window_seconds);

  // Collect the per-snapshot view of this one series.
  struct Point {
    double wall = 0.0, steady = 0.0;
    const MetricSample* sample = nullptr;
  };
  std::vector<Point> points;
  for (const Snapshot& snap : window) {
    const MetricSample* s = FindSample(snap.samples, metric);
    if (s) points.push_back({snap.wall_seconds, snap.steady_seconds, s});
  }
  if (points.empty()) {
    std::string out = "{\"error\":\"unknown metric\",\"metric\":";
    AppendQuoted(&out, metric);
    out += ",\"metrics\":[";
    std::vector<std::string> keys = MetricKeys();
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i) out.push_back(',');
      AppendQuoted(&out, keys[i]);
    }
    out += "]}";
    return out;
  }

  const MetricKind kind = points.back().sample->kind;
  std::string out = "{\"metric\":";
  AppendQuoted(&out, metric);
  out += ",\"kind\":";
  AppendQuoted(&out, kind == MetricKind::kCounter   ? "counter"
                     : kind == MetricKind::kGauge   ? "gauge"
                                                    : "histogram");
  out += ",\"window_seconds\":";
  AppendNumber(&out, window_seconds);
  out += ",\"samples\":";
  AppendNumber(&out, static_cast<double>(points.size()));

  const double span =
      points.size() > 1 ? points.back().steady - points.front().steady : 0.0;

  if (kind == MetricKind::kHistogram) {
    const MetricSample* first = points.front().sample;
    const MetricSample* last = points.back().sample;
    std::vector<uint64_t> deltas(last->buckets.size(), 0);
    uint64_t count_delta = 0;
    if (points.size() > 1 && first->buckets.size() == last->buckets.size()) {
      for (size_t i = 0; i < deltas.size(); ++i) {
        deltas[i] = last->buckets[i] >= first->buckets[i]
                        ? last->buckets[i] - first->buckets[i]
                        : 0;
      }
      count_delta = last->count >= first->count ? last->count - first->count : 0;
    } else {
      deltas = last->buckets;
      count_delta = last->count;
    }
    out += ",\"rate_per_sec\":";
    AppendNumber(&out, span > 0 ? static_cast<double>(count_delta) / span : 0.0);
    out += ",\"count\":";
    AppendNumber(&out, static_cast<double>(count_delta));
    out += ",\"p50\":";
    AppendNumber(&out, DeltaQuantile(last->bounds, deltas, 0.50));
    out += ",\"p90\":";
    AppendNumber(&out, DeltaQuantile(last->bounds, deltas, 0.90));
    out += ",\"p99\":";
    AppendNumber(&out, DeltaQuantile(last->bounds, deltas, 0.99));
    out += "}";
    return out;
  }

  if (kind == MetricKind::kCounter) {
    double increase = 0.0;
    for (size_t i = 1; i < points.size(); ++i) {
      double d = points[i].sample->value - points[i - 1].sample->value;
      if (d > 0) increase += d;  // A reset clamps to 0, never negative.
    }
    out += ",\"rate_per_sec\":";
    AppendNumber(&out, span > 0 ? increase / span : 0.0);
    out += ",\"increase\":";
    AppendNumber(&out, increase);
  } else {
    out += ",\"last\":";
    AppendNumber(&out, points.back().sample->value);
  }
  out += ",\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i) out.push_back(',');
    out += "{\"t\":";
    AppendNumber(&out, points[i].wall);
    out += ",\"v\":";
    AppendNumber(&out, points[i].sample->value);
    out += "}";
  }
  out += "]}";
  return out;
}

TimeSeriesRing::TopSummary TimeSeriesRing::Summarize(
    double window_seconds, double slow_threshold_millis) const {
  TopSummary top;
  top.window_seconds = window_seconds;
  std::vector<Snapshot> window = Window(window_seconds);
  top.samples = window.size();
  if (window.empty()) return top;
  const Snapshot& first = window.front();
  const Snapshot& last = window.back();
  const double span = last.steady_seconds - first.steady_seconds;

  auto counter_increase = [&](std::string_view name) {
    double prev = -1.0, increase = 0.0;
    for (const Snapshot& snap : window) {
      double v = SumByName(snap.samples, name);
      if (prev >= 0 && v > prev) increase += v - prev;
      prev = v;
    }
    return increase;
  };

  double requests = counter_increase("sama_server_requests_total");
  const char* latency_metric = "sama_server_request_millis";
  if (requests == 0.0) {
    // Not serving the binary protocol; fall back to the engine's view.
    requests = counter_increase("sama_queries_total");
    latency_metric = "sama_query_latency_millis";
  }
  const double shed = counter_increase("sama_server_shed_total");
  const double errors = counter_increase("sama_server_errors_total");
  top.requests_in_window = static_cast<uint64_t>(requests);
  top.qps = span > 0 ? requests / span : 0.0;
  top.shed_per_sec = span > 0 ? shed / span : 0.0;
  top.error_per_sec = span > 0 ? errors / span : 0.0;
  const double offered = requests + shed;
  top.shed_ratio = offered > 0 ? shed / offered : 0.0;
  top.error_ratio = requests > 0 ? errors / requests : 0.0;

  const double hits = counter_increase("sama_cache_hits_total");
  const double misses = counter_increase("sama_cache_misses_total");
  top.cache_hit_ratio = hits + misses > 0 ? hits / (hits + misses) : 0.0;

  // Histogram window: sum bucket deltas across label sets.
  HistWindow hw;
  for (const MetricSample& s : last.samples) {
    if (s.name != latency_metric || s.kind != MetricKind::kHistogram) continue;
    const MetricSample* before = nullptr;
    for (const MetricSample& f : first.samples) {
      if (f.name == s.name && f.labels == s.labels &&
          f.buckets.size() == s.buckets.size()) {
        before = &f;
        break;
      }
    }
    if (!hw.any) {
      hw.bounds = s.bounds;
      hw.deltas.assign(s.buckets.size(), 0);
      hw.any = true;
    }
    if (hw.deltas.size() != s.buckets.size()) continue;
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      uint64_t prev = (before && window.size() > 1) ? before->buckets[i] : 0;
      hw.deltas[i] += s.buckets[i] >= prev ? s.buckets[i] - prev : 0;
    }
  }
  if (hw.any) {
    top.p50_millis = DeltaQuantile(hw.bounds, hw.deltas, 0.50);
    top.p99_millis = DeltaQuantile(hw.bounds, hw.deltas, 0.99);
    if (slow_threshold_millis > 0) {
      uint64_t total = 0, slow = 0;
      for (size_t i = 0; i < hw.deltas.size(); ++i) {
        total += hw.deltas[i];
        const bool above = i >= hw.bounds.size() ||
                           hw.bounds[i] > slow_threshold_millis;
        if (above) slow += hw.deltas[i];
      }
      top.slow_ratio =
          total > 0 ? static_cast<double>(slow) / static_cast<double>(total)
                    : 0.0;
    }
  } else {
    top.p50_millis = std::numeric_limits<double>::quiet_NaN();
    top.p99_millis = std::numeric_limits<double>::quiet_NaN();
  }

  top.epoch_pins = SumByName(last.samples, "sama_epoch_pins");
  const double appends = SumByName(last.samples, "sama_wal_appends_total");
  const double fsyncs = SumByName(last.samples, "sama_wal_fsyncs_total");
  top.wal_unsynced_appends = appends > fsyncs ? appends - fsyncs : 0.0;
  return top;
}

std::string TimeSeriesRing::RenderTopJson(double window_seconds) const {
  TopSummary top = Summarize(window_seconds);
  std::string out = "{\"window_seconds\":";
  AppendNumber(&out, top.window_seconds);
  out += ",\"samples\":";
  AppendNumber(&out, static_cast<double>(top.samples));
  out += ",\"qps\":";
  AppendNumber(&out, top.qps);
  out += ",\"p50_ms\":";
  AppendNumber(&out, top.p50_millis);
  out += ",\"p99_ms\":";
  AppendNumber(&out, top.p99_millis);
  out += ",\"shed_per_sec\":";
  AppendNumber(&out, top.shed_per_sec);
  out += ",\"error_per_sec\":";
  AppendNumber(&out, top.error_per_sec);
  out += ",\"shed_ratio\":";
  AppendNumber(&out, top.shed_ratio);
  out += ",\"error_ratio\":";
  AppendNumber(&out, top.error_ratio);
  out += ",\"cache_hit_ratio\":";
  AppendNumber(&out, top.cache_hit_ratio);
  out += ",\"epoch_pins\":";
  AppendNumber(&out, top.epoch_pins);
  out += ",\"wal_unsynced_appends\":";
  AppendNumber(&out, top.wal_unsynced_appends);
  out += "}";
  return out;
}

}  // namespace sama

#ifndef SAMA_OBS_PROFILE_H_
#define SAMA_OBS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sama {

// Per-node resource attribution folded into the profile's phase tree.
// Cache traffic comes from the engine's scoped per-query CacheCounters
// sinks; page traffic from BufferPool::Stats snapshots taken at phase
// boundaries (under concurrent queries the page numbers are the pool's
// delta over the phase window, so they can include a neighbour query's
// traffic — the cache numbers never do). Everything here is additive,
// so merged sibling spans simply sum.
struct ProfileCounters {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t pages_fetched = 0;   // Buffer-pool fetches (hits + reads).
  uint64_t pages_read = 0;      // Fetches that went to disk (misses).
  uint64_t pages_evicted = 0;
  uint64_t bytes_read = 0;      // Payload bytes read from disk.
  uint64_t io_retries = 0;
  uint64_t corrupt_skipped = 0;
  uint64_t search_expansions = 0;

  bool any() const {
    return cache_hits | cache_misses | pages_fetched | pages_read |
           pages_evicted | bytes_read | io_retries | corrupt_skipped |
           search_expansions;
  }
  ProfileCounters& operator+=(const ProfileCounters& o) {
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    pages_fetched += o.pages_fetched;
    pages_read += o.pages_read;
    pages_evicted += o.pages_evicted;
    bytes_read += o.bytes_read;
    io_retries += o.io_retries;
    corrupt_skipped += o.corrupt_skipped;
    search_expansions += o.search_expansions;
    return *this;
  }
};

// One node of the aggregated phase tree. Same-name sibling spans (the
// N score_chunk spans under clustering, say) merge into a single node:
// `spans` counts the merged spans, `wall_millis` sums their durations
// (which can exceed the parent's wall time when they ran on several
// threads — that overlap IS the parallelism), and `threads` counts the
// distinct thread ordinals that contributed. `self_millis` is the
// node's wall time minus its children's, clamped at zero.
struct ProfileNode {
  std::string name;
  double start_millis = 0.0;  // Earliest merged span start.
  double wall_millis = 0.0;
  double self_millis = 0.0;
  uint64_t spans = 0;
  uint32_t threads = 1;
  ProfileCounters counters;
  std::vector<size_t> children;  // Indices into QueryProfile::nodes().
};

// Query-level facts the renderers print alongside the tree.
struct ProfileSummary {
  std::string label;  // Optional caller-provided query label.
  double total_millis = 0.0;
  uint64_t num_query_paths = 0;
  uint64_t num_candidate_paths = 0;
  uint64_t num_answers = 0;
  size_t threads_used = 1;
  uint64_t search_expansions = 0;
  bool search_truncated = false;
};

// The per-query profile the engine assembles after execution when
// EngineOptions::obs.profile is set: the raw span trace (kept verbatim
// for the Chrome trace-event export) plus the aggregated phase tree
// with per-node wall/self time and resource counters. Immutable once
// built; retained by ProfileLog and shared via QueryStats::profile.
class QueryProfile {
 public:
  // Resource counters attributed to the phase span named `phase` (the
  // first tree node with that name, depth-first).
  struct PhaseCounters {
    std::string phase;
    ProfileCounters counters;
  };

  // Builds the tree from a span snapshot. Spans with dangling parents
  // become roots (the renderers still show them rather than losing
  // them); open spans (duration < 0) count as zero-duration. An empty
  // span list yields a profile with an empty tree.
  static QueryProfile Build(std::vector<TraceSpan> spans,
                            ProfileSummary summary,
                            const std::vector<PhaseCounters>& phase_counters);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const ProfileSummary& summary() const { return summary_; }
  const std::vector<ProfileNode>& nodes() const { return nodes_; }
  // Indices of the tree's roots (normally one: the "query" span).
  const std::vector<size_t>& roots() const { return roots_; }

  // Retention id assigned by ProfileLog::Add; 0 = never retained.
  uint64_t id() const { return id_; }

 private:
  friend class ProfileLog;

  std::vector<TraceSpan> spans_;
  ProfileSummary summary_;
  std::vector<ProfileNode> nodes_;
  std::vector<size_t> roots_;
  uint64_t id_ = 0;
};

// Bounded ring of the most recent query profiles, the backing store of
// the /debug/profile endpoint. Ids are 1-based and monotonic across
// the log's lifetime, so a scraper can tell "profile 7 was evicted"
// from "profile 7 never existed" (ids above latest_id()).
class ProfileLog {
 public:
  explicit ProfileLog(size_t capacity);

  // Assigns the next id to `profile` and retains it (evicting the
  // oldest beyond capacity). Returns the assigned id.
  uint64_t Add(std::shared_ptr<QueryProfile> profile);

  // The retained profile with `id`, or null if evicted/never assigned.
  std::shared_ptr<const QueryProfile> Get(uint64_t id) const;
  // The most recently added profile, or null when empty.
  std::shared_ptr<const QueryProfile> Latest() const;
  // Oldest-to-newest view of the ring.
  std::vector<std::shared_ptr<const QueryProfile>> Snapshot() const;

  uint64_t latest_id() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<QueryProfile>> ring_;  // Oldest first.
  uint64_t next_id_ = 1;
};

}  // namespace sama

#endif  // SAMA_OBS_PROFILE_H_

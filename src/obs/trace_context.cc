#include "obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>

#include "obs/trace.h"

namespace sama {
namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

uint64_t RandomU64() {
  // random_device alone can be weak on some platforms; fold in a
  // per-process counter and the clock so ids never repeat within a
  // process even then.
  static std::atomic<uint64_t> counter{0};
  static const uint64_t process_seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  uint64_t x = process_seed;
  x ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x += counter.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  // splitmix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                (unsigned long long)trace_id_hi,
                (unsigned long long)trace_id_lo);
  return buf;
}

bool TraceContext::ParseTraceId(std::string_view hex, TraceContext* ctx) {
  if (hex.empty() || hex.size() > 32) return false;
  uint64_t hi = 0, lo = 0;
  for (char c : hex) {
    int d = HexDigit(c);
    if (d < 0) return false;
    hi = (hi << 4) | (lo >> 60);
    lo = (lo << 4) | static_cast<uint64_t>(d);
  }
  if (hi == 0 && lo == 0) return false;
  ctx->trace_id_hi = hi;
  ctx->trace_id_lo = lo;
  return true;
}

TraceContext TraceContext::Generate() {
  TraceContext ctx;
  do {
    ctx.trace_id_hi = RandomU64();
    ctx.trace_id_lo = RandomU64();
  } while (!ctx.valid());
  ctx.sampled = true;
  return ctx;
}

TraceStore::TraceStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<QueryTrace> TraceStore::GetOrCreate(const TraceContext& ctx) {
  if (!ctx.valid()) {
    auto trace = std::make_shared<QueryTrace>();
    trace->SetContext(ctx);
    return trace;
  }
  const std::string key = ctx.TraceIdHex();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(key);
  if (it != traces_.end()) return it->second.trace;
  while (traces_.size() >= capacity_) {
    traces_.erase(order_.front());
    order_.pop_front();
  }
  Entry entry;
  entry.trace = std::make_shared<QueryTrace>();
  entry.trace->SetContext(ctx);
  entry.where = order_.insert(order_.end(), key);
  traces_.emplace(key, std::move(entry));
  return traces_.find(key)->second.trace;
}

std::shared_ptr<QueryTrace> TraceStore::Find(
    std::string_view trace_id_hex) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id_hex);
  return it == traces_.end() ? nullptr : it->second.trace;
}

std::vector<std::string> TraceStore::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out(order_.rbegin(), order_.rend());
  return out;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

}  // namespace sama

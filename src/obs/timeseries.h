#ifndef SAMA_OBS_TIMESERIES_H_
#define SAMA_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sama {

// Always-on telemetry history: a background thread snapshots every
// registry instrument at a fixed interval into a bounded ring (default
// 1s x 900 slots = 15 minutes), so rates, windowed latency quantiles
// and SLO burn math have something to look back over — /metrics alone
// is a point-in-time scrape with no memory.
//
// Lock discipline ("lock-light"): the sampler collects from the
// registry WITHOUT holding the ring mutex (Collect itself only holds
// the registry's registration mutex; instrument reads are relaxed
// atomics), then takes the ring mutex just to publish the completed
// snapshot. Readers copy the snapshots they need under the same mutex
// and compute outside it. Instruments mutating concurrently is always
// safe — a snapshot is merely a consistent-enough point sample.
class TimeSeriesRing {
 public:
  struct Options {
    MetricsRegistry* registry = nullptr;  // nullptr = Global().
    double interval_seconds = 1.0;
    size_t capacity = 900;
  };

  TimeSeriesRing();
  explicit TimeSeriesRing(Options options);
  ~TimeSeriesRing();

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  // Spawns / joins the sampler thread. Start is idempotent; Stop is
  // safe without Start and from the destructor.
  void Start();
  void Stop();

  // Takes one snapshot right now (the sampler calls this; tests and
  // benches drive it directly for determinism).
  void SampleOnce();

  // Invoked after every snapshot (sampler thread or SampleOnce
  // caller), with the ring as argument. Set before Start. This is the
  // SLO tracker's evaluation hook.
  void SetOnSample(std::function<void(const TimeSeriesRing&)> cb);

  // Number of snapshots currently retained (<= capacity).
  size_t num_samples() const;
  double interval_seconds() const { return options_.interval_seconds; }

  // Series keys (name + rendered labels) present in the newest
  // snapshot, in registry order.
  std::vector<std::string> MetricKeys() const;

  // Windowed view of one series as JSON:
  //   counters:   {"metric","kind":"counter","window_seconds","samples",
  //                "rate_per_sec","points":[{"t":unix_s,"v":...},...]}
  //   gauges:     same but kind "gauge" and "last" instead of rate
  //   histograms: {"metric","kind":"histogram",...,"rate_per_sec"
  //                (count rate),"p50","p90","p99"} over bucket deltas
  // Unknown metric -> {"error":"unknown metric","metrics":[...]}.
  // window_seconds <= 0 means "everything retained".
  std::string RenderJson(std::string_view metric, double window_seconds) const;

  // The no-argument listing: sampler config plus all series keys.
  std::string RenderIndexJson() const;

  // Operator-facing rollup for `sama_cli top` and the SLO tracker.
  struct TopSummary {
    double window_seconds = 0.0;
    size_t samples = 0;           // Snapshots inside the window.
    double qps = 0.0;             // sama_server_requests_total rate
                                  // (falls back to sama_queries_total).
    double p50_millis = 0.0;      // Windowed request-latency quantiles
    double p99_millis = 0.0;      // (NaN when no observations).
    double shed_per_sec = 0.0;
    double error_per_sec = 0.0;
    double shed_ratio = 0.0;      // shed / requests over the window.
    double error_ratio = 0.0;
    double slow_ratio = 0.0;      // Latency observations above
                                  // `slow_threshold_millis` / total.
    double cache_hit_ratio = 0.0;  // Windowed hits / (hits+misses).
    double epoch_pins = 0.0;       // Latest sama_epoch_pins gauge.
    double wal_unsynced_appends = 0.0;  // appends_total - fsyncs_total.
    uint64_t requests_in_window = 0;
  };
  // `slow_threshold_millis` <= 0 disables the slow_ratio computation.
  TopSummary Summarize(double window_seconds,
                       double slow_threshold_millis = 0.0) const;
  std::string RenderTopJson(double window_seconds) const;

 private:
  struct Snapshot {
    double wall_seconds = 0.0;    // Unix epoch seconds (display only).
    double steady_seconds = 0.0;  // Monotonic; all math uses this.
    std::vector<MetricSample> samples;
  };

  // Snapshots inside [newest - window, newest], oldest first.
  std::vector<Snapshot> WindowLocked(double window_seconds) const;
  std::vector<Snapshot> Window(double window_seconds) const;

  void SamplerLoop();

  Options options_;
  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point anchor_;

  mutable std::mutex mu_;
  std::vector<Snapshot> ring_;  // Circular; slot = total_ % capacity.
  size_t total_ = 0;            // Snapshots ever taken.
  std::function<void(const TimeSeriesRing&)> on_sample_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool stop_ = false;
  std::thread sampler_;
};

}  // namespace sama

#endif  // SAMA_OBS_TIMESERIES_H_

#ifndef SAMA_OBS_TRACE_H_
#define SAMA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace_context.h"

namespace sama {

// One recorded span. Times are steady-clock milliseconds relative to
// the owning trace's construction, so a trace is self-contained and
// immune to wall-clock steps. `thread` is a per-trace ordinal (0 = the
// first thread that recorded a span), not an OS id, so traces of the
// same query are comparable across runs. `attrs` carries small
// key/value annotations (shard id, WAL lsn, request id); insertion
// order is preserved into the JSON.
struct TraceSpan {
  uint64_t id = 0;      // 1-based; 0 is "no span".
  uint64_t parent = 0;  // 0 = root.
  std::string name;
  double start_millis = 0.0;
  double duration_millis = 0.0;  // < 0 while the span is still open.
  uint32_t thread = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Per-query span buffer. Thread-safe: ParallelFor workers append
// concurrently. Spans carry explicit parent ids because thread-locals
// do not follow work onto pool workers — a worker-side span states its
// parent (the phase span id captured by the closure) explicitly.
//
// Determinism contract: tracing never alters answers. Span *timings*
// vary run to run by nature; span *structure* (names, parent edges) is
// deterministic for a fixed query and thread count, except that the
// relative order of sibling spans recorded by different workers is
// scheduling-dependent. ToJson sorts by span id, which is allocation
// order — stable enough for the CI smoke checker, which validates
// structure, never timings.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  // Opens a span; returns its id. parent == 0 makes a root span.
  uint64_t BeginSpan(std::string_view name, uint64_t parent);
  void EndSpan(uint64_t id);

  // Attaches a key/value annotation to an open or closed span.
  // Duplicate keys append (last wins in the rendered object).
  void SetSpanAttr(uint64_t id, std::string_view key, std::string_view value);

  // The propagated identity this trace collects spans for. Set once by
  // whoever registers the trace (TraceStore / the engine); an invalid
  // context means a purely local trace.
  void SetContext(const TraceContext& ctx);
  TraceContext context() const;

  // Snapshot of all spans (open ones have duration_millis < 0).
  std::vector<TraceSpan> Snapshot() const;
  size_t size() const;

  // {"trace_id":"...", (when a context is set)
  //  "spans":[{"id":1,"parent":0,"name":"query","thread":0,
  //            "start_ms":0.000,"dur_ms":1.234,
  //            "attrs":{"shard":"2"}}, ...]}
  std::string ToJson() const;

 private:
  double NowMillis() const;

  std::chrono::steady_clock::time_point anchor_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::map<std::thread::id, uint32_t> thread_ordinals_;
  TraceContext context_;
};

// RAII span. Two parenting modes:
//  - ObsSpan(trace, name): parents under the calling thread's current
//    span (thread-local), the natural mode for same-thread nesting.
//  - ObsSpan(trace, name, parent_id): explicit parent, for spans opened
//    on a ParallelFor worker under a phase span from the calling thread.
// Either way the span becomes the thread's current span until it is
// destroyed, so deeper same-thread spans nest under it. A null trace
// makes every operation a no-op, which is how disabled tracing stays
// off the hot path.
class ObsSpan {
 public:
  ObsSpan() = default;
  ObsSpan(QueryTrace* trace, std::string_view name);
  ObsSpan(QueryTrace* trace, std::string_view name, uint64_t parent_id);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ObsSpan(ObsSpan&& other) noexcept;
  ObsSpan& operator=(ObsSpan&& other) noexcept;

  // This span's id, for handing to workers as an explicit parent.
  uint64_t id() const { return id_; }

  // Annotates this span; no-op when tracing is disabled.
  void SetAttr(std::string_view key, std::string_view value);

  // The calling thread's current span id in `trace` (0 if none).
  static uint64_t CurrentId(const QueryTrace* trace);

 private:
  void Open(QueryTrace* trace, std::string_view name, uint64_t parent);
  void Close();

  QueryTrace* trace_ = nullptr;
  uint64_t id_ = 0;
  // Restored as the thread's current span when this one closes.
  uint64_t saved_current_ = 0;
};

}  // namespace sama

#endif  // SAMA_OBS_TRACE_H_

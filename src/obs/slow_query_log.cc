#include "obs/slow_query_log.h"

#include <chrono>
#include <cstdio>

namespace sama {
namespace {

void AppendField(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
  *out += buf;
}

void AppendField(std::string* out, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key, (unsigned long long)v);
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.jsonl_path.empty() && options_.env == nullptr) {
    options_.env = Env::Default();
  }
  ring_.resize(options_.capacity);
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  SlowQueryRecord stamped = record;
  if (stamped.unix_millis == 0) {
    // Wall clock deliberately: log lines are correlated with external
    // events, not used for duration arithmetic (those are steady-clock
    // measurements taken by the engine).
    stamped.unix_millis =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
  }

  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = stamped;
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  ++total_recorded_;

  if (!options_.jsonl_path.empty() && options_.env != nullptr) {
    std::string line = ToJsonLine(stamped);
    line.push_back('\n');
    std::vector<uint8_t> bytes(line.begin(), line.end());
    Status s = options_.env->AppendFileBytes(options_.jsonl_path, bytes);
    if (!s.ok()) {
      ++sink_failures_;
      last_sink_status_ = s;
    } else {
      last_sink_status_ = Status::Ok();
    }
  }
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(filled_);
  // Oldest record: slot next_ once the ring wrapped, slot 0 before.
  size_t start = (filled_ == ring_.size()) ? next_ : 0;
  for (size_t i = 0; i < filled_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_;
}

uint64_t SlowQueryLog::sink_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_failures_;
}

Status SlowQueryLog::last_sink_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sink_status_;
}

std::string SlowQueryLog::ToJsonLine(const SlowQueryRecord& r) {
  std::string out = "{";
  AppendField(&out, "unix_ms", static_cast<uint64_t>(r.unix_millis));
  out += ",\"label\":\"";
  AppendEscaped(&out, r.label);
  out += "\",\"trace_id\":\"";
  AppendEscaped(&out, r.trace_id);
  out += "\",";
  AppendField(&out, "request_id", r.request_id);
  out.push_back(',');
  AppendField(&out, "total_ms", r.total_millis);
  out.push_back(',');
  AppendField(&out, "preprocess_ms", r.preprocess_millis);
  out.push_back(',');
  AppendField(&out, "clustering_ms", r.clustering_millis);
  out.push_back(',');
  AppendField(&out, "search_ms", r.search_millis);
  out.push_back(',');
  AppendField(&out, "query_paths", r.num_query_paths);
  out.push_back(',');
  AppendField(&out, "candidate_paths", r.num_candidate_paths);
  out.push_back(',');
  AppendField(&out, "answers", r.num_answers);
  out.push_back(',');
  AppendField(&out, "expansions", r.search_expansions);
  out += ",\"truncated\":";
  out += r.search_truncated ? "true" : "false";
  out.push_back(',');
  AppendField(&out, "corrupt_skipped", r.corrupt_records_skipped);
  out.push_back(',');
  AppendField(&out, "io_retries", r.io_retries);
  out.push_back(',');
  AppendField(&out, "threads", static_cast<uint64_t>(r.threads < 0 ? 0 : r.threads));
  out.push_back('}');
  return out;
}

}  // namespace sama

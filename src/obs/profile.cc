#include "obs/profile.h"

#include <algorithm>
#include <map>
#include <set>

namespace sama {
namespace {

// Merges the sibling span group `group` (same name, same parent) into
// one ProfileNode and recurses over their children. `children_of`
// maps span id -> child span indices in `spans`.
size_t MergeGroup(const std::vector<TraceSpan>& spans,
                  const std::map<uint64_t, std::vector<size_t>>& children_of,
                  const std::vector<size_t>& group,
                  std::vector<ProfileNode>* nodes) {
  ProfileNode node;
  node.name = spans[group.front()].name;
  node.start_millis = spans[group.front()].start_millis;
  std::set<uint32_t> threads;
  // Child spans of every merged sibling, regrouped by name in
  // first-seen order so the tree shape is deterministic (span ids are
  // allocation-ordered).
  std::vector<std::string> child_order;
  std::map<std::string, std::vector<size_t>> child_groups;
  for (size_t i : group) {
    const TraceSpan& s = spans[i];
    node.start_millis = std::min(node.start_millis, s.start_millis);
    node.wall_millis += s.duration_millis < 0 ? 0.0 : s.duration_millis;
    node.spans += 1;
    threads.insert(s.thread);
    auto it = children_of.find(s.id);
    if (it == children_of.end()) continue;
    for (size_t child : it->second) {
      auto [group_it, inserted] =
          child_groups.try_emplace(spans[child].name);
      if (inserted) child_order.push_back(spans[child].name);
      group_it->second.push_back(child);
    }
  }
  node.threads = static_cast<uint32_t>(threads.size());

  const size_t index = nodes->size();
  nodes->push_back(std::move(node));
  double children_wall = 0.0;
  for (const std::string& name : child_order) {
    size_t child_index =
        MergeGroup(spans, children_of, child_groups.at(name), nodes);
    children_wall += (*nodes)[child_index].wall_millis;
    (*nodes)[index].children.push_back(child_index);
  }
  // Self time: own wall minus children's. Parallel children can sum
  // past the parent's wall (their overlap is the parallelism), in
  // which case self clamps to zero rather than going negative.
  ProfileNode& done = (*nodes)[index];
  done.self_millis = std::max(0.0, done.wall_millis - children_wall);
  return index;
}

}  // namespace

QueryProfile QueryProfile::Build(
    std::vector<TraceSpan> spans, ProfileSummary summary,
    const std::vector<PhaseCounters>& phase_counters) {
  QueryProfile profile;
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.id < b.id; });
  profile.spans_ = std::move(spans);
  profile.summary_ = std::move(summary);

  std::set<uint64_t> ids;
  for (const TraceSpan& s : profile.spans_) ids.insert(s.id);
  // Group spans by parent; a dangling parent id (its span was never
  // recorded) makes the span a root so it still renders.
  std::map<uint64_t, std::vector<size_t>> children_of;
  std::vector<size_t> root_spans;
  for (size_t i = 0; i < profile.spans_.size(); ++i) {
    const TraceSpan& s = profile.spans_[i];
    if (s.parent != 0 && ids.count(s.parent)) {
      children_of[s.parent].push_back(i);
    } else {
      root_spans.push_back(i);
    }
  }
  // Roots regrouped by name, same as every other sibling level.
  std::vector<std::string> root_order;
  std::map<std::string, std::vector<size_t>> root_groups;
  for (size_t i : root_spans) {
    auto [it, inserted] = root_groups.try_emplace(profile.spans_[i].name);
    if (inserted) root_order.push_back(profile.spans_[i].name);
    it->second.push_back(i);
  }
  for (const std::string& name : root_order) {
    profile.roots_.push_back(MergeGroup(profile.spans_, children_of,
                                        root_groups.at(name),
                                        &profile.nodes_));
  }

  // Attach resource counters to the first node (depth-first) carrying
  // the phase's name. Nodes are emitted in depth-first order already.
  for (const PhaseCounters& pc : phase_counters) {
    for (ProfileNode& node : profile.nodes_) {
      if (node.name == pc.phase) {
        node.counters += pc.counters;
        break;
      }
    }
  }
  return profile;
}

ProfileLog::ProfileLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t ProfileLog::Add(std::shared_ptr<QueryProfile> profile) {
  std::lock_guard<std::mutex> lock(mu_);
  profile->id_ = next_id_++;
  uint64_t id = profile->id_;
  ring_.push_back(std::move(profile));
  if (ring_.size() > capacity_) ring_.erase(ring_.begin());
  return id;
}

std::shared_ptr<const QueryProfile> ProfileLog::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : ring_) {
    if (p->id() == id) return p;
  }
  return nullptr;
}

std::shared_ptr<const QueryProfile> ProfileLog::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return nullptr;
  return ring_.back();
}

std::vector<std::shared_ptr<const QueryProfile>> ProfileLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::shared_ptr<const QueryProfile>>(ring_.begin(),
                                                          ring_.end());
}

uint64_t ProfileLog::latest_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace sama

#include "obs/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/net.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace sama {
namespace {

constexpr size_t kMaxHeadBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 1 * 1024 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Reads until the header terminator (CRLFCRLF) is seen or the head cap
// is hit. Returns false on error/EOF-before-terminator; on success
// *head holds everything read so far (possibly including body bytes)
// and *head_end the terminator's end offset.
bool ReadHead(int fd, std::string* head, size_t* head_end) {
  char buf[4096];
  while (head->size() < kMaxHeadBytes) {
    size_t probe = head->size() < 3 ? 0 : head->size() - 3;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
    size_t pos = head->find("\r\n\r\n", probe);
    if (pos != std::string::npos) {
      *head_end = pos + 4;
      return true;
    }
  }
  return false;
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void ParseQueryParams(std::string_view query,
                      std::map<std::string, std::string>* params) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    std::string_view pair = query.substr(
        start, amp == std::string_view::npos ? query.size() - start
                                             : amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*params)[UrlDecode(pair)] = "";
      } else {
        (*params)[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

ObsHttpServer::ObsHttpServer(Options options) : options_(std::move(options)) {}

ObsHttpServer::~ObsHttpServer() { Stop(); }

void ObsHttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status ObsHttpServer::Start() {
  if (running_.load()) return Status::Internal("server already started");
  // Socket setup shared with the binary query server (common/net.h):
  // SO_REUSEADDR, bind, listen, ephemeral-port resolution. This server
  // keeps the default blocking accept.
  ListenerOptions listener;
  listener.host = options_.host;
  listener.port = options_.port;
  listener.backlog = 16;
  int fd = -1;
  Status bound = BindListener(listener, &fd, &port_);
  if (!bound.ok()) return bound;
  listen_fd_.store(fd);
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ObsHttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() makes the blocking accept() return so the loop can see
  // running_ == false; close() alone does not unblock it everywhere.
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void ObsHttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) break;
      continue;  // Transient accept failure; keep serving.
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void ObsHttpServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpResponse resp;
  HttpRequest req;
  std::string raw;
  size_t head_end = 0;
  bool parsed = false;
  if (ReadHead(fd, &raw, &head_end)) {
    // Request line: METHOD SP target SP version.
    size_t line_end = raw.find("\r\n");
    std::string_view line(raw.data(), line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                               : line.find(' ', sp1 + 1);
    if (sp2 != std::string_view::npos) {
      req.method = std::string(line.substr(0, sp1));
      req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      size_t qmark = req.target.find('?');
      req.path = req.target.substr(0, qmark);
      if (qmark != std::string::npos) {
        ParseQueryParams(std::string_view(req.target).substr(qmark + 1),
                         &req.params);
      }
      // The one header we honour: Content-Length, for POST bodies.
      size_t content_length = 0;
      for (size_t pos = line_end + 2; pos < head_end - 2;) {
        size_t eol = raw.find("\r\n", pos);
        std::string_view header(raw.data() + pos, eol - pos);
        size_t colon = header.find(':');
        if (colon != std::string_view::npos) {
          std::string key(header.substr(0, colon));
          for (char& c : key) c = static_cast<char>(std::tolower(c));
          if (key == "content-length") {
            std::string_view v = header.substr(colon + 1);
            while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
            content_length = 0;
            for (char c : v) {
              if (c < '0' || c > '9') break;
              content_length = content_length * 10 + (c - '0');
            }
          }
        }
        pos = eol + 2;
      }
      if (content_length > kMaxBodyBytes) {
        resp = {413, "text/plain; charset=utf-8", "payload too large\n"};
      } else {
        req.body = raw.substr(head_end);
        while (req.body.size() < content_length) {
          char buf[4096];
          ssize_t n = ::read(fd, buf, sizeof(buf));
          if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
          }
          req.body.append(buf, static_cast<size_t>(n));
        }
        req.body.resize(std::min(req.body.size(), content_length));
        parsed = req.body.size() == content_length;
      }
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (!parsed) {
    if (resp.status == 200) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    }
  } else {
    auto it = handlers_.find(req.path);
    if (it == handlers_.end()) {
      resp = {404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      resp = it->second(req);
    }
  }

  std::string wire = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusText(resp.status) + "\r\n";
  wire += "Content-Type: " + resp.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  if (req.method != "HEAD") wire += resp.body;
  WriteAll(fd, wire);
  ::shutdown(fd, SHUT_WR);
  // Drain whatever the client still had in flight so close() does not
  // RST the connection under the response.
  char drain[1024];
  while (::read(fd, drain, sizeof(drain)) > 0) {
  }
}

}  // namespace sama

#ifndef SAMA_BASELINES_SAPPER_H_
#define SAMA_BASELINES_SAPPER_H_

#include <string>

#include "baselines/backtrack.h"
#include "baselines/matcher.h"

namespace sama {

// SAPPER-style approximate subgraph matcher (Zhang, Yang & Jin,
// PVLDB 2010): finds subgraphs matching the query with up to Δ missing
// edges. The published system indexes neighborhood signatures to
// enumerate candidate regions; this reimplementation keeps the defining
// behaviour — edge-miss-tolerant enumeration over label-anchored
// candidates — which is what the paper's comparison exercises (SAPPER
// finds more matches than the exact systems but pays for the larger
// search space, §6.2/§6.3).
class SapperMatcher : public Matcher {
 public:
  struct Options {
    // Δ: tolerated missing edges. The default scales with query size
    // when set to 0 (|E(Q)| / 4 + 1).
    size_t max_missing_edges = 0;
    double missing_edge_cost = 1.0;
    MatcherOptions limits;
  };

  explicit SapperMatcher(const DataGraph* graph)
      : SapperMatcher(graph, Options()) {}
  SapperMatcher(const DataGraph* graph, Options options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "Sapper"; }

  Result<std::vector<Match>> Execute(const QueryGraph& query,
                                     size_t k) override {
    BacktrackConfig config;
    config.max_missing_edges =
        options_.max_missing_edges != 0
            ? options_.max_missing_edges
            : query.graph().edge_count() / 4 + 1;
    config.missing_edge_cost = options_.missing_edge_cost;
    config.limits = options_.limits;
    return BacktrackSearch(*graph_, query, k, config);
  }

 private:
  const DataGraph* graph_;
  Options options_;
};

}  // namespace sama

#endif  // SAMA_BASELINES_SAPPER_H_

#ifndef SAMA_BASELINES_BOUNDED_H_
#define SAMA_BASELINES_BOUNDED_H_

#include <string>

#include "baselines/matcher.h"

namespace sama {

// BOUNDED-style matcher (Fan et al., "Graph pattern matching: from
// intractable to polynomial time", PVLDB 2010): each query edge denotes
// connectivity within a bounded number of hops rather than a single
// edge. A query edge (u, v) with label ℓ matches a data pair (x, y)
// when y is reachable from x in at most `bound` hops along a path that
// traverses at least one ℓ-labelled edge (variables match any path).
// This relaxes structure but not labels, so it finds more than the
// exact systems yet fewer relaxed answers than Sama/Sapper — the
// paper's Figure 8 ordering.
class BoundedMatcher : public Matcher {
 public:
  struct Options {
    size_t bound = 2;  // Maximum hops per query edge.
    MatcherOptions limits;
  };

  explicit BoundedMatcher(const DataGraph* graph)
      : BoundedMatcher(graph, Options()) {}
  BoundedMatcher(const DataGraph* graph, Options options)
      : graph_(graph), options_(options) {}

  std::string name() const override { return "Bounded"; }

  Result<std::vector<Match>> Execute(const QueryGraph& query,
                                     size_t k) override;

 private:
  const DataGraph* graph_;
  Options options_;
};

}  // namespace sama

#endif  // SAMA_BASELINES_BOUNDED_H_

#ifndef SAMA_BASELINES_DOGMA_H_
#define SAMA_BASELINES_DOGMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/backtrack.h"
#include "baselines/matcher.h"

namespace sama {

// DOGMA-style matcher (Bröcheler, Pugliese & Subrahmanian, ISWC 2009):
// exact subgraph matching over a disk-oriented distance index. The
// published system partitions the graph and stores lower bounds on
// inter-partition distances; this reimplementation keeps the defining
// behaviour — candidate pruning by landmark-based distance lower
// bounds before exact enumeration. Being exact, it returns no answer
// for relaxed queries, which is what drives its low recall in the
// paper's Figures 8 and 9.
class DogmaMatcher : public Matcher {
 public:
  struct Options {
    size_t num_landmarks = 8;
    MatcherOptions limits;
  };

  // Builds the landmark distance index (the offline phase).
  explicit DogmaMatcher(const DataGraph* graph)
      : DogmaMatcher(graph, Options()) {}
  DogmaMatcher(const DataGraph* graph, Options options);

  std::string name() const override { return "Dogma"; }

  Result<std::vector<Match>> Execute(const QueryGraph& query,
                                     size_t k) override;

  double index_build_millis() const { return index_build_millis_; }

 private:
  static constexpr uint16_t kUnreachable = 0xffff;

  // Lower bound on the undirected distance between two data nodes from
  // the landmark triangle inequality.
  uint16_t DistanceLowerBound(NodeId a, NodeId b) const;

  const DataGraph* graph_;
  Options options_;
  // distances_[l * node_count + n]: undirected BFS distance from
  // landmark l to node n.
  std::vector<uint16_t> distances_;
  size_t num_landmarks_used_ = 0;
  double index_build_millis_ = 0;
};

}  // namespace sama

#endif  // SAMA_BASELINES_DOGMA_H_

#ifndef SAMA_BASELINES_BACKTRACK_H_
#define SAMA_BASELINES_BACKTRACK_H_

#include <functional>
#include <vector>

#include "baselines/matcher.h"

namespace sama {

// Configuration of the shared backtracking homomorphism search used by
// the exact matcher, DOGMA (with distance pruning) and SAPPER (with an
// edge-miss budget).
struct BacktrackConfig {
  // SAPPER's Δ: how many query edges may be absent from the data.
  size_t max_missing_edges = 0;
  double missing_edge_cost = 1.0;
  // Extra pruning hook: may this (query node → data node) pair appear
  // in any match? Null = no pruning. DOGMA plugs its distance-index
  // check in here.
  std::function<bool(NodeId query_node, NodeId data_node)> node_filter;
  MatcherOptions limits;
};

// Enumerates subgraph homomorphisms of `query` into `graph` (shared
// dictionary required): every query node maps to a data node with a
// compatible label (constants must be equal, variables bind freely) and
// every query edge maps to a data edge with a compatible label, except
// for up to max_missing_edges edges which may be skipped at
// missing_edge_cost each. Matches are emitted best-cost-last (the
// caller sorts); enumeration stops at k matches (0 = all) or when a
// limit fires.
std::vector<Match> BacktrackSearch(const DataGraph& graph,
                                   const QueryGraph& query, size_t k,
                                   const BacktrackConfig& config);

}  // namespace sama

#endif  // SAMA_BASELINES_BACKTRACK_H_

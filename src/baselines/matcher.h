#ifndef SAMA_BASELINES_MATCHER_H_
#define SAMA_BASELINES_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/data_graph.h"
#include "query/query_graph.h"
#include "query/transformation.h"

namespace sama {

// One match produced by a graph-matching system: a mapping from query
// nodes to data nodes (standard SPARQL homomorphism semantics — two
// query nodes may map to one data node), with the variable bindings it
// induces and a system-specific cost (0 = exact).
struct Match {
  // data node chosen for each query node, indexed by query NodeId;
  // kInvalidNodeId for query nodes the system left unmatched.
  std::vector<NodeId> assignment;
  Substitution binding;
  double cost = 0;

  // The bound values of `vars` (names without '?'), for cross-system
  // comparison; unbound variables yield empty-string literals.
  std::vector<Term> BindingTuple(const std::vector<std::string>& vars) const {
    std::vector<Term> out;
    out.reserve(vars.size());
    for (const std::string& var : vars) {
      const Term* t = binding.Lookup(var);
      out.push_back(t != nullptr ? *t : Term::Literal(""));
    }
    return out;
  }
};

// Limits shared by every matcher.
struct MatcherOptions {
  size_t max_matches = 100000;  // 0 = unlimited.
  // Hard cap on backtracking steps, so worst-case exponential queries
  // terminate. 0 = unlimited.
  size_t max_steps = 5000000;
};

// Interface implemented by the exact matcher and the three competitor
// systems (§6: Sapper, Bounded, Dogma). All matchers run over a data
// graph whose dictionary is shared with the query graph.
class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual std::string name() const = 0;

  // Finds up to `k` matches (0 = all, subject to MatcherOptions caps).
  virtual Result<std::vector<Match>> Execute(const QueryGraph& query,
                                             size_t k) = 0;
};

}  // namespace sama

#endif  // SAMA_BASELINES_MATCHER_H_

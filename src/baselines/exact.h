#ifndef SAMA_BASELINES_EXACT_H_
#define SAMA_BASELINES_EXACT_H_

#include <string>

#include "baselines/backtrack.h"
#include "baselines/matcher.h"

namespace sama {

// Exact subgraph-homomorphism matcher (SPARQL BGP semantics). Serves as
// the ground-truth oracle for the effectiveness experiments: precision
// and recall are computed against the exact answers of the relaxed
// query variants.
class ExactMatcher : public Matcher {
 public:
  explicit ExactMatcher(const DataGraph* graph, MatcherOptions options = {})
      : graph_(graph), options_(options) {}

  std::string name() const override { return "Exact"; }

  Result<std::vector<Match>> Execute(const QueryGraph& query,
                                     size_t k) override {
    BacktrackConfig config;
    config.limits = options_;
    return BacktrackSearch(*graph_, query, k, config);
  }

 private:
  const DataGraph* graph_;
  MatcherOptions options_;
};

}  // namespace sama

#endif  // SAMA_BASELINES_EXACT_H_

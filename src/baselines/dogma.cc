#include "baselines/dogma.h"

#include <algorithm>
#include <deque>

#include "common/timer.h"

namespace sama {
namespace {

// Undirected BFS distances from `start`, capped at kMax hops.
void UndirectedBfs(const DataGraph& graph, NodeId start, uint16_t* out,
                   uint16_t unreachable) {
  const size_t n = graph.node_count();
  for (size_t i = 0; i < n; ++i) out[i] = unreachable;
  std::deque<NodeId> frontier{start};
  out[start] = 0;
  while (!frontier.empty()) {
    NodeId node = frontier.front();
    frontier.pop_front();
    uint16_t next = static_cast<uint16_t>(out[node] + 1);
    auto visit = [&](NodeId other) {
      if (out[other] != unreachable) return;
      out[other] = next;
      frontier.push_back(other);
    };
    for (EdgeId e : graph.out_edges(node)) visit(graph.edge(e).to);
    for (EdgeId e : graph.in_edges(node)) visit(graph.edge(e).from);
  }
}

// Undirected BFS distances within the query graph from `start`.
std::vector<uint16_t> QueryDistances(const DataGraph& qg, NodeId start) {
  std::vector<uint16_t> dist(qg.node_count(), 0xffff);
  std::deque<NodeId> frontier{start};
  dist[start] = 0;
  while (!frontier.empty()) {
    NodeId node = frontier.front();
    frontier.pop_front();
    uint16_t next = static_cast<uint16_t>(dist[node] + 1);
    auto visit = [&](NodeId other) {
      if (dist[other] != 0xffff) return;
      dist[other] = next;
      frontier.push_back(other);
    };
    for (EdgeId e : qg.out_edges(node)) visit(qg.edge(e).to);
    for (EdgeId e : qg.in_edges(node)) visit(qg.edge(e).from);
  }
  return dist;
}

}  // namespace

DogmaMatcher::DogmaMatcher(const DataGraph* graph, Options options)
    : graph_(graph), options_(options) {
  WallTimer timer;
  const size_t n = graph_->node_count();
  if (n == 0) return;
  // Landmarks: the highest-degree nodes (the partition centres of the
  // original system's first merge level).
  std::vector<NodeId> by_degree(n);
  for (NodeId i = 0; i < n; ++i) by_degree[i] = i;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph_->out_degree(a) + graph_->in_degree(a) >
                            graph_->out_degree(b) + graph_->in_degree(b);
                   });
  num_landmarks_used_ = std::min(options_.num_landmarks, n);
  distances_.resize(num_landmarks_used_ * n);
  for (size_t l = 0; l < num_landmarks_used_; ++l) {
    UndirectedBfs(*graph_, by_degree[l], &distances_[l * n], kUnreachable);
  }
  index_build_millis_ = timer.ElapsedMillis();
}

uint16_t DogmaMatcher::DistanceLowerBound(NodeId a, NodeId b) const {
  const size_t n = graph_->node_count();
  uint16_t best = 0;
  for (size_t l = 0; l < num_landmarks_used_; ++l) {
    uint16_t da = distances_[l * n + a];
    uint16_t db = distances_[l * n + b];
    if (da == kUnreachable || db == kUnreachable) {
      if (da != db) return kUnreachable;  // Different components.
      continue;
    }
    uint16_t diff = da > db ? da - db : db - da;
    best = std::max(best, diff);
  }
  return best;
}

Result<std::vector<Match>> DogmaMatcher::Execute(const QueryGraph& query,
                                                 size_t k) {
  const DataGraph& qg = query.graph();
  // Anchor every constant query node to its (unique) data node; a
  // missing constant means no exact match exists.
  struct Anchor {
    NodeId query_node;
    NodeId data_node;
    std::vector<uint16_t> query_dist;
  };
  std::vector<Anchor> anchors;
  for (NodeId qn = 0; qn < qg.node_count(); ++qn) {
    const Term& t = qg.node_term(qn);
    if (t.is_variable()) continue;
    NodeId dn = graph_->FindNode(t);
    if (dn == kInvalidNodeId) return std::vector<Match>{};
    anchors.push_back(Anchor{qn, dn, QueryDistances(qg, qn)});
  }

  BacktrackConfig config;
  config.limits = options_.limits;
  if (!anchors.empty() && num_landmarks_used_ > 0) {
    config.node_filter = [this, anchors = std::move(anchors)](
                             NodeId query_node, NodeId data_node) {
      for (const Anchor& a : anchors) {
        uint16_t qd = a.query_dist[query_node];
        if (qd == 0xffff) continue;  // Unconnected in the query.
        if (DistanceLowerBound(data_node, a.data_node) > qd) return false;
      }
      return true;
    };
  }
  return BacktrackSearch(*graph_, query, k, config);
}

}  // namespace sama

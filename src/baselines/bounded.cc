#include "baselines/bounded.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace sama {
namespace {

// Bounded-reachability search state: (node, label already seen on the
// path), encoded as node*2 + seen.
class BoundedSearcher {
 public:
  BoundedSearcher(const DataGraph& graph, const QueryGraph& query, size_t k,
                  const BoundedMatcher::Options& options)
      : graph_(graph), qg_(query.graph()), k_(k), options_(options) {
    assignment_.assign(qg_.node_count(), kInvalidNodeId);
    BuildOrder();
  }

  std::vector<Match> Run() {
    Recurse(0);
    return std::move(matches_);
  }

 private:
  void BuildOrder() {
    order_.resize(qg_.node_count());
    for (NodeId n = 0; n < qg_.node_count(); ++n) order_[n] = n;
    std::stable_sort(order_.begin(), order_.end(), [&](NodeId a, NodeId b) {
      bool ca = !qg_.node_term(a).is_variable();
      bool cb = !qg_.node_term(b).is_variable();
      if (ca != cb) return ca;
      return qg_.out_degree(a) + qg_.in_degree(a) >
             qg_.out_degree(b) + qg_.in_degree(b);
    });
  }

  bool Budget() {
    ++steps_;
    return (options_.limits.max_steps == 0 ||
            steps_ <= options_.limits.max_steps) &&
           (k_ == 0 || matches_.size() < k_) &&
           (options_.limits.max_matches == 0 ||
            matches_.size() < options_.limits.max_matches);
  }

  bool QueryLabelIsVariable(TermId label) const {
    return qg_.dict().term(label).is_variable();
  }

  // Nodes reachable from `start` within the hop bound along `forward`
  // (or reverse) edges, keeping only end points whose connecting path
  // saw `label` (always true for variable labels).
  std::vector<NodeId> BoundedReach(NodeId start, TermId label,
                                   bool forward) const {
    bool label_free = QueryLabelIsVariable(label);
    std::vector<NodeId> out;
    // Visited states: node*2 + seen.
    std::unordered_set<uint64_t> visited;
    std::deque<std::pair<uint64_t, size_t>> frontier;
    frontier.emplace_back(static_cast<uint64_t>(start) * 2 +
                              (label_free ? 1 : 0),
                          0);
    visited.insert(frontier.front().first);
    while (!frontier.empty()) {
      auto [state, depth] = frontier.front();
      frontier.pop_front();
      NodeId node = static_cast<NodeId>(state / 2);
      bool seen = (state & 1) != 0;
      if (seen && depth > 0) out.push_back(node);
      if (depth >= options_.bound) continue;
      const std::vector<EdgeId>& edges =
          forward ? graph_.out_edges(node) : graph_.in_edges(node);
      for (EdgeId e : edges) {
        const DataGraph::Edge& edge = graph_.edge(e);
        NodeId next = forward ? edge.to : edge.from;
        bool next_seen = seen || edge.label == label;
        uint64_t next_state =
            static_cast<uint64_t>(next) * 2 + (next_seen ? 1 : 0);
        if (visited.insert(next_state).second) {
          frontier.emplace_back(next_state, depth + 1);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // True when (x, y) satisfies the bounded-edge semantics for `label`.
  bool BoundedConnected(NodeId x, NodeId y, TermId label) const {
    std::vector<NodeId> reach = BoundedReach(x, label, /*forward=*/true);
    return std::binary_search(reach.begin(), reach.end(), y);
  }

  bool CheckEdges(NodeId qn, NodeId dn) const {
    for (EdgeId qe : qg_.out_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.to];
      if (mapped == kInvalidNodeId) continue;
      if (!BoundedConnected(dn, mapped, edge.label)) return false;
    }
    for (EdgeId qe : qg_.in_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.from];
      if (mapped == kInvalidNodeId) continue;
      if (!BoundedConnected(mapped, dn, edge.label)) return false;
    }
    return true;
  }

  std::vector<NodeId> Candidates(NodeId qn) const {
    const Term& t = qg_.node_term(qn);
    if (!t.is_variable()) {
      NodeId n = graph_.FindNode(t);
      if (n == kInvalidNodeId) return {};
      return {n};
    }
    std::vector<NodeId> best;
    bool have = false;
    auto consider = [&](std::vector<NodeId> cand) {
      if (!have || cand.size() < best.size()) {
        best = std::move(cand);
        have = true;
      }
    };
    for (EdgeId qe : qg_.in_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.from];
      if (mapped == kInvalidNodeId) continue;
      consider(BoundedReach(mapped, edge.label, /*forward=*/true));
    }
    for (EdgeId qe : qg_.out_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.to];
      if (mapped == kInvalidNodeId) continue;
      consider(BoundedReach(mapped, edge.label, /*forward=*/false));
    }
    if (have) return best;
    std::vector<NodeId> all(graph_.node_count());
    for (NodeId n = 0; n < all.size(); ++n) all[n] = n;
    return all;
  }

  void Emit() {
    Match m;
    m.assignment = assignment_;
    m.cost = 0;
    for (NodeId qn = 0; qn < qg_.node_count(); ++qn) {
      const Term& t = qg_.node_term(qn);
      if (t.is_variable() && assignment_[qn] != kInvalidNodeId) {
        m.binding.Bind(t.value(), graph_.node_term(assignment_[qn]));
      }
    }
    matches_.push_back(std::move(m));
  }

  void Recurse(size_t depth) {
    if (!Budget()) return;
    if (depth == order_.size()) {
      Emit();
      return;
    }
    NodeId qn = order_[depth];
    for (NodeId dn : Candidates(qn)) {
      if (!Budget()) return;
      if (!CheckEdges(qn, dn)) continue;
      assignment_[qn] = dn;
      Recurse(depth + 1);
      assignment_[qn] = kInvalidNodeId;
    }
  }

  const DataGraph& graph_;
  const DataGraph& qg_;
  size_t k_;
  const BoundedMatcher::Options& options_;
  std::vector<NodeId> order_;
  std::vector<NodeId> assignment_;
  std::vector<Match> matches_;
  size_t steps_ = 0;
};

}  // namespace

Result<std::vector<Match>> BoundedMatcher::Execute(const QueryGraph& query,
                                                   size_t k) {
  return BoundedSearcher(*graph_, query, k, options_).Run();
}

}  // namespace sama

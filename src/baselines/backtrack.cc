#include "baselines/backtrack.h"

#include <algorithm>

namespace sama {
namespace {

// Backtracking state machine. Query nodes are processed in a static
// order (constants first, then descending degree) so the search expands
// outward from the most constrained nodes.
class Searcher {
 public:
  Searcher(const DataGraph& graph, const QueryGraph& query, size_t k,
           const BacktrackConfig& config)
      : graph_(graph),
        qg_(query.graph()),
        query_(query),
        k_(k),
        config_(config) {
    assignment_.assign(qg_.node_count(), kInvalidNodeId);
    BuildOrder();
  }

  std::vector<Match> Run() {
    Recurse(0, 0.0, 0);
    std::sort(matches_.begin(), matches_.end(),
              [](const Match& a, const Match& b) { return a.cost < b.cost; });
    return std::move(matches_);
  }

 private:
  void BuildOrder() {
    order_.reserve(qg_.node_count());
    for (NodeId n = 0; n < qg_.node_count(); ++n) order_.push_back(n);
    const DataGraph& qg = qg_;
    auto is_constant = [&](NodeId n) {
      return !qg.node_term(n).is_variable();
    };
    std::stable_sort(order_.begin(), order_.end(),
                     [&](NodeId a, NodeId b) {
                       bool ca = is_constant(a), cb = is_constant(b);
                       if (ca != cb) return ca;
                       size_t da = qg.out_degree(a) + qg.in_degree(a);
                       size_t db = qg.out_degree(b) + qg.in_degree(b);
                       return da > db;
                     });
  }

  bool Budget() {
    ++steps_;
    return (config_.limits.max_steps == 0 ||
            steps_ <= config_.limits.max_steps) &&
           (k_ == 0 || matches_.size() < k_) &&
           (config_.limits.max_matches == 0 ||
            matches_.size() < config_.limits.max_matches);
  }

  bool LabelCompatible(NodeId query_node, NodeId data_node) const {
    const Term& qt = qg_.node_term(query_node);
    if (qt.is_variable()) return true;
    return qg_.node_label(query_node) == graph_.node_label(data_node);
  }

  bool EdgeLabelCompatible(TermId query_label, TermId data_label) const {
    if (query_label == data_label) return true;
    return qg_.dict().term(query_label).is_variable();
  }

  // Checks query edges between `qn` (being assigned `dn`) and already
  // assigned nodes. Returns false on hard failure; otherwise reports
  // the number of missing edges consumed and the variable bindings on
  // matched edge labels.
  bool CheckEdges(NodeId qn, NodeId dn, size_t* missing,
                  std::vector<std::pair<std::string, Term>>* edge_binds) {
    *missing = 0;
    for (EdgeId qe : qg_.out_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.to];
      if (mapped == kInvalidNodeId) continue;
      if (!FindDataEdge(dn, mapped, edge.label, edge_binds)) ++*missing;
    }
    for (EdgeId qe : qg_.in_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.from];
      if (mapped == kInvalidNodeId) continue;
      if (!FindDataEdge(mapped, dn, edge.label, edge_binds)) ++*missing;
    }
    return true;
  }

  bool FindDataEdge(NodeId from, NodeId to, TermId query_label,
                    std::vector<std::pair<std::string, Term>>* edge_binds) {
    const std::vector<EdgeId>& outs = graph_.out_edges(from);
    const std::vector<EdgeId>& ins = graph_.in_edges(to);
    const std::vector<EdgeId>& smaller =
        outs.size() <= ins.size() ? outs : ins;
    for (EdgeId de : smaller) {
      const DataGraph::Edge& edge = graph_.edge(de);
      if (edge.from != from || edge.to != to) continue;
      if (EdgeLabelCompatible(query_label, edge.label)) {
        const Term& qt = qg_.dict().term(query_label);
        if (qt.is_variable()) {
          edge_binds->emplace_back(qt.value(),
                                   qg_.dict().term(edge.label));
        }
        return true;
      }
    }
    return false;
  }

  // Candidate data nodes for query node `qn` given current assignment.
  // `missing_budget_left` > 0 lets the search consider every node when
  // the anchored neighbours offer no candidate — the connecting edge
  // itself may be one of SAPPER's tolerated misses.
  std::vector<NodeId> Candidates(NodeId qn, size_t missing_budget_left) {
    const Term& qt = qg_.node_term(qn);
    if (!qt.is_variable()) {
      NodeId n = graph_.FindNode(qt);
      if (n == kInvalidNodeId) return {};
      return {n};
    }
    // Propagate from an assigned neighbour with the fewest expansions.
    std::vector<NodeId> best;
    bool have = false;
    auto consider = [&](std::vector<NodeId> cand) {
      if (!have || cand.size() < best.size()) {
        best = std::move(cand);
        have = true;
      }
    };
    for (EdgeId qe : qg_.in_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.from];
      if (mapped == kInvalidNodeId) continue;
      std::vector<NodeId> cand;
      for (EdgeId de : graph_.out_edges(mapped)) {
        const DataGraph::Edge& data_edge = graph_.edge(de);
        if (EdgeLabelCompatibleNoBind(edge.label, data_edge.label)) {
          cand.push_back(data_edge.to);
        }
      }
      consider(std::move(cand));
    }
    for (EdgeId qe : qg_.out_edges(qn)) {
      const DataGraph::Edge& edge = qg_.edge(qe);
      NodeId mapped = assignment_[edge.to];
      if (mapped == kInvalidNodeId) continue;
      std::vector<NodeId> cand;
      for (EdgeId de : graph_.in_edges(mapped)) {
        const DataGraph::Edge& data_edge = graph_.edge(de);
        if (EdgeLabelCompatibleNoBind(edge.label, data_edge.label)) {
          cand.push_back(data_edge.from);
        }
      }
      consider(std::move(cand));
    }
    if (have && (!best.empty() || missing_budget_left == 0)) {
      std::sort(best.begin(), best.end());
      best.erase(std::unique(best.begin(), best.end()), best.end());
      return best;
    }
    // No anchored neighbour (or the anchoring edge may itself be a
    // tolerated miss): every data node qualifies.
    std::vector<NodeId> all(graph_.node_count());
    for (NodeId n = 0; n < all.size(); ++n) all[n] = n;
    return all;
  }

  bool EdgeLabelCompatibleNoBind(TermId query_label,
                                 TermId data_label) const {
    return query_label == data_label ||
           qg_.dict().term(query_label).is_variable();
  }

  void Emit(double cost) {
    Match m;
    m.assignment = assignment_;
    m.cost = cost;
    for (NodeId qn = 0; qn < qg_.node_count(); ++qn) {
      const Term& qt = qg_.node_term(qn);
      if (qt.is_variable() && assignment_[qn] != kInvalidNodeId) {
        m.binding.Bind(qt.value(), graph_.node_term(assignment_[qn]));
      }
    }
    for (const auto& [var, value] : edge_bindings_) {
      m.binding.Bind(var, value);
    }
    matches_.push_back(std::move(m));
  }

  void Recurse(size_t depth, double cost, size_t missing_used) {
    if (!Budget()) return;
    if (depth == order_.size()) {
      Emit(cost);
      return;
    }
    NodeId qn = order_[depth];
    for (NodeId dn :
         Candidates(qn, config_.max_missing_edges - missing_used)) {
      if (!Budget()) return;
      if (!LabelCompatible(qn, dn)) continue;
      if (config_.node_filter && !config_.node_filter(qn, dn)) continue;
      size_t missing = 0;
      size_t binds_before = edge_bindings_.size();
      if (!CheckEdges(qn, dn, &missing, &edge_bindings_)) continue;
      if (missing_used + missing > config_.max_missing_edges) {
        edge_bindings_.resize(binds_before);
        continue;
      }
      assignment_[qn] = dn;
      Recurse(depth + 1, cost + config_.missing_edge_cost *
                                    static_cast<double>(missing),
              missing_used + missing);
      assignment_[qn] = kInvalidNodeId;
      edge_bindings_.resize(binds_before);
    }
  }

  const DataGraph& graph_;
  const DataGraph& qg_;
  const QueryGraph& query_;
  size_t k_;
  const BacktrackConfig& config_;
  std::vector<NodeId> order_;
  std::vector<NodeId> assignment_;
  std::vector<std::pair<std::string, Term>> edge_bindings_;
  std::vector<Match> matches_;
  size_t steps_ = 0;
};

}  // namespace

std::vector<Match> BacktrackSearch(const DataGraph& graph,
                                   const QueryGraph& query, size_t k,
                                   const BacktrackConfig& config) {
  return Searcher(graph, query, k, config).Run();
}

}  // namespace sama

#ifndef SAMA_SAMA_H_
#define SAMA_SAMA_H_

// Umbrella header for library consumers: the public API needed to load
// RDF data, build/open a path index, and run approximate SPARQL
// queries. Individual headers remain includable for finer control.
//
//   #include "sama.h"
//   sama::DataGraph graph;
//   sama::LoadGraphFromFile("data.nt", &graph);
//   sama::PathIndex index;
//   index.Build(graph, {});
//   sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
//   sama::SamaEngine engine(&graph, &index, &thesaurus);
//   auto q = sama::ParseSparql("SELECT ?x WHERE { ... }");
//   auto answers = engine.ExecuteSparql(*q, 10);

#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/explain.h"
#include "graph/data_graph.h"
#include "graph/graph_stats.h"
#include "graph/loader.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "text/thesaurus.h"

#endif  // SAMA_SAMA_H_

#ifndef SAMA_INDEX_PATH_INDEX_H_
#define SAMA_INDEX_PATH_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/sharded_cache.h"
#include "graph/data_graph.h"
#include "graph/path.h"
#include "graph/path_enumerator.h"
#include "storage/hypergraph_store.h"
#include "storage/path_store.h"
#include "text/inverted_index.h"
#include "text/thesaurus.h"

namespace sama {

// Options for the offline indexing phase.
struct PathIndexOptions {
  // Directory for the on-disk stores; empty keeps everything in memory
  // (tests, small examples). The experiments always use a directory —
  // the paper assumes the graph "cannot fit in memory" (§6.1).
  std::string dir;
  size_t buffer_pool_pages = 4096;  // 16 MiB page cache.
  bool compress_paths = true;
  // Worker threads for the concurrent BFS over sources (§6.1:
  // "independently concurrent traversals are started from each
  // source"). 1 = sequential.
  size_t num_threads = 1;
  PathEnumeratorOptions enumerate;
  // Populate the hypergraph store (one vertex per term, one hyperedge
  // per triple and per path — Figure 5). Needed for Table 1's |HV|/|HE|
  // columns; adds write volume.
  bool build_hypergraph = true;
  // I/O seam for fault-injection tests; nullptr = Env::Default().
  Env* env = nullptr;

  // ---- Sharded builds (src/shard, DESIGN.md §14). Build-time only;
  // both pointers must stay valid through Build and are not retained.
  //
  // When non-null, enumeration is restricted to the start nodes with
  // start_mask[node] != 0 (indexed by NodeId over the full graph; the
  // other stages — inverted label indexes, sources/sinks — still cover
  // the whole graph, so a shard answers lookups exactly like the full
  // index restricted to its paths). Per-start DFS emission order is
  // untouched, so the shard's dense local PathIds enumerate in the
  // same relative order the unfiltered build would give those paths —
  // the monotone local→global id property the sharded merge rests on.
  // Requires enumerate.max_paths == 0: a global truncation cap has no
  // well-defined restriction to a shard.
  const std::vector<uint8_t>* start_mask = nullptr;
  // When non-null, receives one (start node, paths emitted) entry per
  // enumerated start, in enumeration (StartNodes) order. The sharded
  // build layer derives the global id space from these counts.
  std::vector<std::pair<NodeId, uint64_t>>* per_start_counts = nullptr;
};

// Sizing knobs for the index's query-side caches (ConfigureQueryCache).
// All three layers are pure optimisations: lookups return identical
// results with caching disabled, and a record that fails its checksum
// or read is NEVER cached (strict-io semantics are preserved).
struct IndexCacheConfig {
  bool enabled = true;
  // Per-inverted-index memo over LookupSemantic results (×4 indexes).
  size_t posting_entries = 2048;
  // Memo over PathsWithSinkMatching / PathsContaining candidate lists.
  size_t lookup_entries = 2048;
  // Memo over GetPath records (decoded, checksum-verified paths).
  size_t record_entries = 16384;
  size_t shards = 8;
};

// Hit/miss totals of the three query-side cache layers. Also the
// per-query attribution sink the lookup entry points take: pass one
// scoped to a query to receive only that query's traffic (diffing the
// lifetime totals instead cross-attributes concurrent queries).
struct IndexCacheCounters {
  CacheCounters postings;  // The four inverted indexes, summed.
  CacheCounters lookups;
  CacheCounters records;
};

// Table-1 quantities for one indexed dataset.
struct IndexStats {
  uint64_t num_triples = 0;
  uint64_t num_paths = 0;
  uint64_t hv = 0;  // |HV|: hypergraph vertices.
  uint64_t he = 0;  // |HE|: hypergraph hyperedges.
  double build_millis = 0;
  uint64_t disk_bytes = 0;  // Path store + hypergraph + label indexes.
};

// The offline index of §6.1. Holds:
//   (i)  hashed vertex/edge labels — inverted indexes from label text
//        to node ids and edge ids (element-to-element mapping);
//   (ii) the graph's sources and sinks;
//   (iii) every source→sink path, persisted in a PathStore, retrievable
//        by sink label (cluster lookup) and by contained label.
// The in-memory postings are the Lucene substitute; path bytes live on
// disk behind the buffer pool.
class PathIndex {
 public:
  PathIndex() = default;
  PathIndex(const PathIndex&) = delete;
  PathIndex& operator=(const PathIndex&) = delete;

  // Builds the index over `graph`. The graph must outlive the index.
  // When options.dir is set the index is persisted there (stores,
  // manifests and metadata), ready for Open().
  //
  // Crash safety: every artifact is first written into
  // options.dir/build.tmp, fsynced, then renamed into options.dir with
  // the index.meta rename as the atomic commit point. A build that
  // dies at any registered crash point (BuildCrashPoints()) leaves
  // either the previous committed index or a partial build that
  // Open() detects and discards — never a silently corrupt mix.
  Status Build(const DataGraph& graph, const PathIndexOptions& options);

  // The named failpoints the build/commit protocol passes through, in
  // order (see common/fault_injection.h FailPoints). Torture tests
  // crash at each one and verify recovery.
  static std::vector<std::string> BuildCrashPoints();

  // Opens an index previously Build()t into options.dir, without
  // recomputing any path. `graph` must be the BASE data graph the index
  // was built over (the same triples in the same order — FromTriples is
  // deterministic); a fingerprint check rejects mismatched graphs.
  // Open then restores the exact TermId space from the persisted
  // dictionary image (so terms interned later — query variables, update
  // entities — get their original ids back) and replays the journal of
  // AddTriple updates into `graph`, leaving graph + index exactly as
  // they were at the last Checkpoint(). options.dir must be set.
  //
  // Recovery: a leftover build.tmp from a crashed build is discarded.
  // When no committed index.meta exists the partial artifacts are
  // removed and kNotFound is returned — the clean empty state; callers
  // rebuild. A pre-checksum (v0) index fails with kInvalidArgument
  // naming the format version.
  Status Open(DataGraph* graph, const PathIndexOptions& options);

  // Incremental maintenance (the §7 "speed-up the update of the index"
  // future-work item): applies `triple` to `graph` (which must be the
  // graph this index was built over) and updates the index in place —
  // new source→sink paths through the new edge are enumerated and
  // stored, and paths invalidated by the edge (paths that used to end
  // at its subject when it was a sink, or start at its object when it
  // was a source) are tombstoned. A duplicate triple is a no-op.
  //
  // `thesaurus` is the thesaurus queries run with; it scopes the
  // query-cache invalidation to entries the change can actually affect
  // (per-touched-cluster) instead of flushing every cache. Passing
  // nullptr stays correct — entries cached under a thesaurus are then
  // invalidated conservatively.
  Status AddTriple(DataGraph* graph, const Triple& triple,
                   const Thesaurus* thesaurus = nullptr);

  // Inverse of AddTriple: removes `triple`'s edge from graph and index.
  // Paths traversing the edge are tombstoned; paths completed by the
  // removal (the subject becomes a sink, or the object becomes a
  // source) are enumerated and indexed. Removing an absent triple is an
  // idempotent no-op — replaying a WAL of deletes is safe.
  Status RemoveTriple(DataGraph* graph, const Triple& triple,
                      const Thesaurus* thesaurus = nullptr);

  // Number of live (non-tombstoned) paths.
  uint64_t live_path_count() const {
    return store_.path_count() - deleted_paths_.size();
  }

  // Paths whose sink carries exactly `label` (a TermId of the graph's
  // dictionary).
  const std::vector<PathId>& PathsWithSinkLabel(TermId label) const;

  // Paths whose sink label matches `term` exactly or through the
  // thesaurus (§5 Clustering, sink case). `stats` (optional) receives
  // this call's postings/lookup cache traffic.
  std::vector<PathId> PathsWithSinkMatching(
      const Term& term, const Thesaurus* thesaurus,
      IndexCacheCounters* stats = nullptr) const;

  // Paths containing any element whose label matches `term` (§5
  // Clustering, variable-sink case).
  std::vector<PathId> PathsContaining(const Term& term,
                                      const Thesaurus* thesaurus,
                                      IndexCacheCounters* stats = nullptr) const;

  // Loads a stored path. `record_stats` (optional) receives this call's
  // record-cache traffic.
  Status GetPath(PathId id, Path* out,
                 CacheCounters* record_stats = nullptr) const;

  // Element-to-element mapping from the hashing step: graph nodes/edges
  // whose label matches `term` (used by the baseline matchers too).
  std::vector<NodeId> NodesMatching(const Term& term,
                                    const Thesaurus* thesaurus) const;
  std::vector<EdgeId> EdgesMatching(const Term& term,
                                    const Thesaurus* thesaurus) const;

  const std::vector<NodeId>& sources() const { return sources_; }
  const std::vector<NodeId>& sinks() const { return sinks_; }

  // Persists the current state (stores, manifests, metadata) so a
  // later Open() sees all updates applied since Build()/Open().
  // Requires the index to be disk-backed.
  Status Checkpoint();

  // WAL position this index has durably absorbed: every journalled
  // record with lsn <= applied_lsn() is reflected in the last
  // Checkpoint(). The engine sets it before checkpointing; recovery
  // replays only records past it.
  uint64_t applied_lsn() const { return applied_lsn_; }
  void set_applied_lsn(uint64_t lsn) { applied_lsn_ = lsn; }

  // Reads just the checkpoint LSN out of dir/index.meta without
  // loading the index (recovery + sama_cli verify). kNotFound when no
  // committed metadata exists.
  static Result<uint64_t> ReadCheckpointLsn(const std::string& dir,
                                            Env* env = nullptr);

  // Content identity of a graph, the value Build stamps into
  // index.meta and Open verifies. The sharded build layer (src/shard)
  // stamps the same fingerprint into its partition sidecars so a
  // shard set can detect being opened over the wrong graph.
  static uint64_t GraphFingerprint(const DataGraph& graph);

  // Empties every page cache AND the query-side caches (cold-cache
  // experiments).
  Status DropCaches();

  // Installs (or, with config.enabled == false, removes) the
  // query-side caches: the per-inverted-index posting memos, the
  // candidate-list lookup memo and the path-record memo. Off until
  // called — SamaEngine enables them from EngineOptions::cache. Const
  // because engines hold the index by const reference; the caches are
  // internally thread-safe and invisible to results.
  void ConfigureQueryCache(const IndexCacheConfig& config) const;
  // Drops every query-side cache entry (Build/Open/AddTriple call this
  // internally; exposed for tests and DropCaches).
  void DropQueryCaches() const;
  IndexCacheCounters query_cache_counters() const;
  // Cache hits across every query-side cache that skipped the LRU
  // touch under write contention (ShardedLruCache::lru_lock_skips) —
  // the read path's latch-contention signal.
  uint64_t query_cache_lock_skips() const;

  const IndexStats& stats() const { return stats_; }
  const PathIndexOptions& options() const { return options_; }
  const DataGraph& graph() const { return *graph_; }
  uint64_t path_count() const { return store_.path_count(); }
  BufferPool::Stats cache_stats() const { return store_.cache_stats(); }

 private:
  // One journalled mutation, replayed into the base graph by Open().
  struct JournalEntry {
    static constexpr uint8_t kInsert = 0;
    static constexpr uint8_t kDelete = 1;
    uint8_t op = kInsert;
    Triple triple;
  };

  // Labels whose candidate lists an update touched, precomputed for the
  // lookup-cache invalidation predicate.
  struct ChangedLabels {
    struct Entry {
      std::string display;
      std::string normalized;
      std::vector<std::string> tokens;  // Sorted.
    };
    std::unordered_set<TermId> tids;
    std::vector<Entry> entries;
    bool empty() const { return tids.empty(); }
    void Add(const TermDictionary& dict, TermId tid);
  };

  Status BuildHypergraph(const DataGraph& graph,
                         const std::vector<Path>& paths);
  // Serialized metadata: fingerprint, stats, sources/sinks, by_sink_
  // and the four inverted indexes.
  Status SaveMetadata(const std::string& dir) const;
  Status LoadMetadata(const std::string& dir, uint64_t fingerprint);

  const DataGraph* graph_ = nullptr;
  // Fingerprint of the base graph (before any AddTriple), fixed at
  // Build time so Checkpoint() after updates still identifies the base.
  uint64_t base_fingerprint_ = 0;
  // Highest WAL LSN reflected in the last checkpoint (0 = none).
  uint64_t applied_lsn_ = 0;
  // Mutations applied through AddTriple/RemoveTriple since Build,
  // replayed by Open.
  std::vector<JournalEntry> update_journal_;
  PathStore store_;
  HypergraphStore hypergraph_;
  InvertedLabelIndex node_index_;   // label -> NodeId.
  InvertedLabelIndex edge_index_;   // label -> EdgeId.
  InvertedLabelIndex sink_index_;   // sink label -> PathId.
  InvertedLabelIndex content_index_;  // any path label -> PathId.
  // Appends `p` to the store and every lookup structure; used by both
  // the bulk build and the live-update paths. With `precise` set the
  // inverted indexes invalidate their memos per-label (AddPrecise)
  // instead of wholesale, and the touched labels are accumulated into
  // the changed-label sets for the lookup-cache sweep.
  Status IndexOnePath(const Path& p, const Thesaurus* thesaurus,
                      bool precise, ChangedLabels* sink_labels,
                      ChangedLabels* content_labels);
  // Tombstones `id` everywhere it is visible, accumulating its labels
  // into the changed-label sets when given.
  void TombstonePath(PathId id, const Path& p,
                     ChangedLabels* sink_labels = nullptr,
                     ChangedLabels* content_labels = nullptr);
  // Erases exactly the lookup-cache entries whose answer the changed
  // labels can influence (same sound superset the inverted indexes use:
  // exact TermId, normalized equality, token containment, thesaurus
  // relation). Entries cached under a different thesaurus than
  // `thesaurus` are dropped conservatively.
  void InvalidateLookups(const ChangedLabels& sink_labels,
                         const ChangedLabels& content_labels,
                         const Thesaurus* thesaurus) const;
  // Removes tombstoned ids from a postings vector.
  std::vector<PathId> FilterDeleted(std::vector<uint64_t> ids) const;

  std::unordered_map<TermId, std::vector<PathId>> by_sink_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> sinks_;
  std::unordered_set<PathId> deleted_paths_;
  PathIndexOptions options_;
  IndexStats stats_;

  // Query-side caches (ConfigureQueryCache); null when disabled.
  // Lookup keys embed term.ToString() (never DisplayLabel — an IRI
  // <.../Male> and the literal "Male" display alike but answer
  // differently) plus the thesaurus content identity. The record cache
  // holds verified paths only and is keyed by immutable PathIds, so it
  // survives AddTriple: tombstones are screened before it, and new ids
  // were never cached.
  mutable std::unique_ptr<ShardedLruCache<std::string, std::vector<PathId>>>
      lookup_cache_;
  mutable std::unique_ptr<ShardedLruCache<PathId, Path>> record_cache_;
};

}  // namespace sama

#endif  // SAMA_INDEX_PATH_INDEX_H_

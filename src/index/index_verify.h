#ifndef SAMA_INDEX_INDEX_VERIFY_H_
#define SAMA_INDEX_INDEX_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/result.h"

namespace sama {

// Offline integrity scan of an index directory (`sama_cli verify`).
// Walks every on-disk artifact without loading the index: page files
// are read page by page and each checksum recomputed; manifests and
// metadata have their envelope checksums verified. The scan keeps
// going past damage so the report lists every broken page, not just
// the first.
struct VerifyReport {
  struct FileReport {
    std::string name;  // Artifact name relative to the index dir.
    bool present = false;
    uint64_t pages_scanned = 0;  // Page files only; 0 for manifests.
    std::vector<std::string> errors;
  };

  // True when a valid index.meta commit record exists — without it the
  // directory holds at most a discarded partial build.
  bool committed = false;
  // True when a build.tmp staging dir is left over from a crashed
  // build (harmless: Open() discards it).
  bool partial_build = false;
  std::vector<FileReport> files;

  bool clean() const {
    for (const FileReport& f : files) {
      if (!f.errors.empty()) return false;
    }
    return committed;
  }
  uint64_t error_count() const {
    uint64_t n = 0;
    for (const FileReport& f : files) n += f.errors.size();
    return n;
  }
  std::string ToString() const;
};

// Scans the index at `dir`. Fails (rather than reporting) only when
// the directory itself is unreadable. `env` = nullptr uses
// Env::Default().
Result<VerifyReport> VerifyIndexDir(const std::string& dir,
                                    Env* env = nullptr);

}  // namespace sama

#endif  // SAMA_INDEX_INDEX_VERIFY_H_

#include "index/path_index.h"

#include <algorithm>
#include <functional>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "storage/coding.h"
#include "storage/manifest.h"
#include "storage/triple_codec.h"
#include "text/tokenizer.h"

namespace sama {
namespace {

const std::vector<PathId> kNoPaths;

// On-disk artifact names. Builds stage everything under kStageDirName
// and rename into the index directory at commit; kMetaFile is renamed
// LAST — its presence in the index directory IS the commit record.
constexpr char kStageDirName[] = "build.tmp";
constexpr char kMetaFile[] = "index.meta";
const char* const kDataArtifacts[] = {
    "paths.dat", "paths.dat.manifest", "hypergraph.dat",
    "hypergraph.dat.vertices", "hypergraph.dat.hyperedges"};

Env* OrDefault(Env* env) { return env == nullptr ? Env::Default() : env; }

// Removes `dir` and the flat set of files inside it (build staging
// directories never nest). Missing directory is fine.
Status RemoveDirTree(const std::string& dir, Env* env) {
  if (!env->FileExists(dir)) return Status::Ok();
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : *entries) {
    SAMA_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + name));
  }
  return env->RemoveDir(dir);
}

// The commit protocol: publish a complete staged build into `dir`.
//  1. delete the old commit record (dir/index.meta) — from here until
//     step 3 completes the directory deliberately holds NO committed
//     index, so a crash recovers to "rebuild" rather than to a mix of
//     old and new files;
//  2. rename every data artifact from the staging dir into place
//     (artifacts the new build did not produce are removed so a stale
//     copy from the previous index cannot shadow the new state);
//  3. rename index.meta — the atomic commit point;
// with directory fsyncs after each batch of renames. The staging dir
// itself is removed best-effort afterwards; Open() also clears it.
Status CommitBuild(const std::string& dir, const std::string& stage_dir,
                   Env* env) {
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.begin"));
  SAMA_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + kMetaFile));
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(
      FailPoints::Trigger("path_index.commit.uncommitted_old"));
  for (const char* name : kDataArtifacts) {
    std::string staged = stage_dir + "/" + name;
    std::string final_path = dir + "/" + name;
    if (env->FileExists(staged)) {
      SAMA_RETURN_IF_ERROR(env->RenameFile(staged, final_path));
    } else {
      SAMA_RETURN_IF_ERROR(env->RemoveFile(final_path));
    }
  }
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.data_renamed"));
  SAMA_RETURN_IF_ERROR(env->RenameFile(stage_dir + "/" + kMetaFile,
                                       dir + "/" + kMetaFile));
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.committed"));
  (void)RemoveDirTree(stage_dir, env);  // Cosmetic; Open() also clears it.
  return Status::Ok();
}

std::vector<uint64_t> Merge(std::vector<uint64_t> a,
                            const std::vector<uint64_t>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

Status PathIndex::Build(const DataGraph& graph,
                        const PathIndexOptions& options) {
  WallTimer timer;
  graph_ = &graph;
  options_ = options;
  // The shard-build hooks are borrowed for the duration of this call
  // only; the retained options must not dangle into later updates.
  options_.start_mask = nullptr;
  options_.per_start_counts = nullptr;
  base_fingerprint_ = GraphFingerprint(graph);
  update_journal_.clear();
  DropQueryCaches();  // A rebuild invalidates every memoized answer.

  // Disk builds are staged: every artifact is written into
  // dir/build.tmp and published by CommitBuild() only once complete,
  // so a build that dies at any point leaves either the previous
  // committed index or a partial staging dir that Open() discards.
  Env* env = OrDefault(options.env);
  std::string stage_dir;
  if (!options.dir.empty()) {
    SAMA_RETURN_IF_ERROR(env->CreateDir(options.dir));
    stage_dir = options.dir + "/" + kStageDirName;
    SAMA_RETURN_IF_ERROR(RemoveDirTree(stage_dir, env));
    SAMA_RETURN_IF_ERROR(env->CreateDir(stage_dir));
  }

  PathStore::Options store_options;
  if (!stage_dir.empty()) {
    store_options.path = stage_dir + "/paths.dat";
  }
  store_options.buffer_pool_pages = options.buffer_pool_pages;
  store_options.compress = options.compress_paths;
  store_options.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(store_options));

  // Step (i): hash every vertex and edge label (element-to-element
  // mapping).
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    node_index_.Add(graph.node_term(n).DisplayLabel(), n);
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    edge_index_.Add(graph.edge_term(e).DisplayLabel(), e);
  }

  // Step (ii): identify sources and sinks.
  sources_ = graph.Sources();
  sinks_ = graph.Sinks();

  // Step (iii): compute all paths, traversing concurrently from each
  // start node. Every start enumerates into its own slot and the slots
  // concatenate in start order, so path ids are IDENTICAL for every
  // thread count — a reopened index never depends on how many cores
  // built it.
  std::vector<NodeId> starts = graph.StartNodes();
  if (options.start_mask != nullptr) {
    // Sharded build: this index enumerates only its owned starts. A
    // global path cap cannot be restricted to a shard coherently (the
    // cut point depends on the other shards' counts), so reject it.
    if (options.enumerate.max_paths != 0) {
      return Status::InvalidArgument(
          "start_mask (sharded build) requires enumerate.max_paths == 0");
    }
    std::vector<NodeId> owned;
    owned.reserve(starts.size());
    for (NodeId start : starts) {
      if (start < options.start_mask->size() &&
          (*options.start_mask)[start] != 0) {
        owned.push_back(start);
      }
    }
    starts = std::move(owned);
  }
  if (options.per_start_counts != nullptr) options.per_start_counts->clear();
  std::vector<Path> paths;
  size_t threads = std::max<size_t>(1, options.num_threads);
  if (threads == 1 || starts.size() <= 1) {
    PathEnumeratorOptions enum_options = options.enumerate;
    for (NodeId start : starts) {
      size_t before = paths.size();
      EnumeratePathsFrom(graph, start, enum_options, [&](const Path& p) {
        paths.push_back(p);
        return options.enumerate.max_paths == 0 ||
               paths.size() < options.enumerate.max_paths;
      });
      if (options.per_start_counts != nullptr) {
        options.per_start_counts->emplace_back(
            start, static_cast<uint64_t>(paths.size() - before));
      }
      if (options.enumerate.max_paths != 0 &&
          paths.size() >= options.enumerate.max_paths) {
        break;
      }
    }
  } else {
    ThreadPool pool(threads - 1);
    std::vector<std::vector<Path>> per_start(starts.size());
    SAMA_RETURN_IF_ERROR(
        ParallelFor(&pool, starts.size(), [&](size_t i) -> Status {
          EnumeratePathsFrom(graph, starts[i], options.enumerate,
                             [&](const Path& p) {
                               per_start[i].push_back(p);
                               return true;
                             });
          return Status::Ok();
        }));
    for (size_t i = 0; i < starts.size(); ++i) {
      if (options.per_start_counts != nullptr) {
        options.per_start_counts->emplace_back(
            starts[i], static_cast<uint64_t>(per_start[i].size()));
      }
      for (Path& p : per_start[i]) paths.push_back(std::move(p));
    }
    if (options.enumerate.max_paths != 0 &&
        paths.size() > options.enumerate.max_paths) {
      paths.resize(options.enumerate.max_paths);
    }
  }

  // Persist the paths and index them by sink and by content. Bulk mode:
  // no memoized lookups can exist yet, so the wholesale Add() is fine.
  for (const Path& p : paths) {
    SAMA_RETURN_IF_ERROR(
        IndexOnePath(p, nullptr, /*precise=*/false, nullptr, nullptr));
  }
  node_index_.Finish();
  edge_index_.Finish();
  sink_index_.Finish();
  content_index_.Finish();
  SAMA_RETURN_IF_ERROR(store_.Flush());
  if (!stage_dir.empty()) {
    SAMA_RETURN_IF_ERROR(
        FailPoints::Trigger("path_index.build.paths_flushed"));
  }

  if (options.build_hypergraph) {
    HypergraphStore::Options hg_options;
    if (!stage_dir.empty()) {
      hg_options.path = stage_dir + "/hypergraph.dat";
    }
    hg_options.buffer_pool_pages = options.buffer_pool_pages;
    hg_options.env = options.env;
    SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
    SAMA_RETURN_IF_ERROR(BuildHypergraph(graph, paths));
  }

  stats_.num_triples = graph.live_edge_count();
  stats_.num_paths = store_.path_count();
  stats_.hv = hypergraph_.vertex_count();
  stats_.he = hypergraph_.hyperedge_count();
  stats_.build_millis = timer.ElapsedMillis();
  stats_.disk_bytes = store_.size_bytes() + hypergraph_.size_bytes() +
                      node_index_.MemoryBytes() + edge_index_.MemoryBytes() +
                      sink_index_.MemoryBytes() +
                      content_index_.MemoryBytes();
  if (!options.dir.empty()) {
    SAMA_RETURN_IF_ERROR(SaveMetadata(stage_dir));
    SAMA_RETURN_IF_ERROR(
        FailPoints::Trigger("path_index.build.tmp_complete"));
    // Close the staged stores so their files are complete and synced,
    // publish them, then reattach to the committed locations.
    SAMA_RETURN_IF_ERROR(store_.Close());
    SAMA_RETURN_IF_ERROR(hypergraph_.Close());
    SAMA_RETURN_IF_ERROR(CommitBuild(options.dir, stage_dir, env));
    store_options.path = options.dir + "/paths.dat";
    store_options.truncate = false;
    SAMA_RETURN_IF_ERROR(store_.Open(store_options));
    if (options.build_hypergraph) {
      HypergraphStore::Options hg_options;
      hg_options.path = options.dir + "/hypergraph.dat";
      hg_options.truncate = false;
      hg_options.buffer_pool_pages = options.buffer_pool_pages;
      hg_options.env = options.env;
      SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
    }
  }
  return Status::Ok();
}

std::vector<std::string> PathIndex::BuildCrashPoints() {
  return {"path_index.build.paths_flushed",
          "path_index.build.tmp_complete",
          "path_index.commit.begin",
          "path_index.commit.uncommitted_old",
          "path_index.commit.data_renamed",
          "path_index.commit.committed"};
}

uint64_t PathIndex::GraphFingerprint(const DataGraph& graph) {
  uint64_t h = 0x5afeC0deULL;
  h = HashCombine(h, graph.node_count());
  h = HashCombine(h, graph.edge_count());
  // Sample edges (all of them for small graphs) so swapped datasets are
  // rejected without hashing every byte of a huge graph.
  size_t step = graph.edge_count() / 1024 + 1;
  for (EdgeId e = 0; e < graph.edge_count();
       e += static_cast<EdgeId>(step)) {
    const DataGraph::Edge& edge = graph.edge(e);
    h = HashCombine(h, edge.from);
    h = HashCombine(h, edge.to);
    h = HashCombine(h, edge.label);
  }
  return h;
}

// Term/triple bytes come from storage/triple_codec.h, the codec shared
// with the WAL record payloads — both sides round-trip the exact same
// layout.

Status PathIndex::SaveMetadata(const std::string& dir) const {
  std::vector<uint8_t> blob;
  PutVarint64(&blob, base_fingerprint_);
  // The checkpoint LSN sits right after the fingerprint so
  // ReadCheckpointLsn can stop after two varints.
  PutVarint64(&blob, applied_lsn_);
  PutVarint64(&blob, stats_.num_triples);
  PutVarint64(&blob, stats_.num_paths);
  PutVarint64(&blob, stats_.hv);
  PutVarint64(&blob, stats_.he);
  PutVarint64(&blob, static_cast<uint64_t>(stats_.build_millis * 1000));
  PutVarint64(&blob, stats_.disk_bytes);
  PutVarint64(&blob, sources_.size());
  for (NodeId n : sources_) PutVarint32(&blob, n);
  PutVarint64(&blob, sinks_.size());
  for (NodeId n : sinks_) PutVarint32(&blob, n);
  PutVarint64(&blob, by_sink_.size());
  for (const auto& [label, ids] : by_sink_) {
    PutVarint32(&blob, label);
    PutVarint64(&blob, ids.size());
    uint64_t previous = 0;
    for (PathId id : ids) {
      PutVarint64(&blob, id - previous);
      previous = id;
    }
  }
  node_index_.Serialize(&blob);
  edge_index_.Serialize(&blob);
  sink_index_.Serialize(&blob);
  content_index_.Serialize(&blob);
  // Dictionary image: restores the exact TermId space on Open.
  const TermDictionary& dict = graph_->dict();
  PutVarint64(&blob, dict.size());
  for (TermId i = 0; i < dict.size(); ++i) PutTerm(&blob, dict.term(i));
  // Journal of AddTriple/RemoveTriple updates, replayed into the base
  // graph on Open.
  PutVarint64(&blob, update_journal_.size());
  for (const JournalEntry& entry : update_journal_) {
    PutVarint64(&blob, entry.op);
    PutTriple(&blob, entry.triple);
  }
  // Tombstoned path ids.
  PutVarint64(&blob, deleted_paths_.size());
  for (PathId id : deleted_paths_) PutVarint64(&blob, id);
  return WriteBlobFile(dir + "/" + kMetaFile, blob, options_.env);
}

Status PathIndex::LoadMetadata(const std::string& dir,
                               uint64_t fingerprint) {
  auto blob_or = ReadBlobFile(dir + "/" + kMetaFile, options_.env);
  if (!blob_or.ok()) return blob_or.status();
  const std::vector<uint8_t>& blob = *blob_or;
  size_t pos = 0;
  uint64_t v = 0;
  auto next = [&](uint64_t* out) { return GetVarint64(blob, &pos, out); };
  if (!next(&v)) return Status::Corruption("index.meta header");
  if (v != fingerprint) {
    return Status::InvalidArgument(
        "index.meta was built over a different data graph");
  }
  base_fingerprint_ = v;
  if (!next(&applied_lsn_)) return Status::Corruption("index.meta lsn");
  uint64_t micros = 0;
  if (!next(&stats_.num_triples) || !next(&stats_.num_paths) ||
      !next(&stats_.hv) || !next(&stats_.he) || !next(&micros) ||
      !next(&stats_.disk_bytes)) {
    return Status::Corruption("index.meta stats");
  }
  stats_.build_millis = static_cast<double>(micros) / 1000.0;

  uint64_t count = 0;
  if (!next(&count)) return Status::Corruption("index.meta sources");
  sources_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    if (!GetVarint32(blob, &pos, &n)) {
      return Status::Corruption("index.meta sources");
    }
    sources_[i] = n;
  }
  if (!next(&count)) return Status::Corruption("index.meta sinks");
  sinks_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    if (!GetVarint32(blob, &pos, &n)) {
      return Status::Corruption("index.meta sinks");
    }
    sinks_[i] = n;
  }
  if (!next(&count)) return Status::Corruption("index.meta sink map");
  by_sink_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t label = 0;
    uint64_t ids = 0;
    if (!GetVarint32(blob, &pos, &label) || !next(&ids)) {
      return Status::Corruption("index.meta sink map entry");
    }
    std::vector<PathId>& postings = by_sink_[label];
    postings.resize(ids);
    uint64_t previous = 0;
    for (uint64_t j = 0; j < ids; ++j) {
      uint64_t delta = 0;
      if (!next(&delta)) return Status::Corruption("index.meta sink ids");
      previous += delta;
      postings[j] = previous;
    }
  }
  if (!node_index_.Deserialize(blob, &pos) ||
      !edge_index_.Deserialize(blob, &pos) ||
      !sink_index_.Deserialize(blob, &pos) ||
      !content_index_.Deserialize(blob, &pos)) {
    return Status::Corruption("index.meta inverted indexes");
  }

  // Dictionary image: re-intern every saved term in order. The base
  // graph's terms must come back with their original ids (a mismatch
  // means this is not the graph the index was built over); terms
  // interned later (query variables, update entities) are restored to
  // their original slots.
  if (!next(&count)) return Status::Corruption("index.meta dictionary");
  // Open passes a mutable graph; graph_ stores it const for the query
  // path. Re-obtain mutable access through the shared dictionary handle.
  TermDictionary& dict = *graph_->shared_dict();
  for (uint64_t i = 0; i < count; ++i) {
    Term term;
    if (!GetTerm(blob, &pos, &term)) {
      return Status::Corruption("index.meta dictionary term");
    }
    TermId id = dict.Intern(term);
    if (id != i) {
      return Status::InvalidArgument(
          "dictionary drift: the provided graph interned terms in a "
          "different order than the indexed one");
    }
  }

  // Update journal.
  if (!next(&count)) return Status::Corruption("index.meta journal");
  update_journal_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t op = 0;
    if (!next(&op) || op > JournalEntry::kDelete ||
        !GetTriple(blob, &pos, &update_journal_[i].triple)) {
      return Status::Corruption("index.meta journal entry");
    }
    update_journal_[i].op = static_cast<uint8_t>(op);
  }

  // Tombstones.
  if (!next(&count)) return Status::Corruption("index.meta tombstones");
  deleted_paths_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!next(&id)) return Status::Corruption("index.meta tombstone id");
    deleted_paths_.insert(id);
  }
  return Status::Ok();
}

Result<uint64_t> PathIndex::ReadCheckpointLsn(const std::string& dir,
                                              Env* env) {
  env = OrDefault(env);
  if (!env->FileExists(dir + "/" + kMetaFile)) {
    return Status::NotFound("no committed index in '" + dir + "'");
  }
  auto blob_or = ReadBlobFile(dir + "/" + kMetaFile, env);
  if (!blob_or.ok()) return blob_or.status();
  size_t pos = 0;
  uint64_t fingerprint = 0;
  uint64_t lsn = 0;
  if (!GetVarint64(*blob_or, &pos, &fingerprint) ||
      !GetVarint64(*blob_or, &pos, &lsn)) {
    return Status::Corruption("index.meta header");
  }
  return lsn;
}

Status PathIndex::Open(DataGraph* graph,
                       const PathIndexOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("PathIndex::Open requires options.dir");
  }
  graph_ = graph;
  options_ = options;
  options_.start_mask = nullptr;       // Build-time hooks; never
  options_.per_start_counts = nullptr;  // retained past the call.
  DropQueryCaches();  // Opening replaces the contents wholesale.
  Env* env = OrDefault(options.env);

  // Crash recovery. A leftover staging dir belongs to a build that
  // died before its commit point — discard it. If after that there is
  // no commit record, any data files present are partial artifacts of
  // a crashed commit; remove them and report kNotFound so the caller
  // rebuilds from the data graph.
  SAMA_RETURN_IF_ERROR(
      RemoveDirTree(options.dir + "/" + kStageDirName, env));
  if (!env->FileExists(options.dir + "/" + kMetaFile)) {
    bool partial = false;
    for (const char* name : kDataArtifacts) {
      std::string path = options.dir + "/" + name;
      if (env->FileExists(path)) {
        partial = true;
        SAMA_RETURN_IF_ERROR(env->RemoveFile(path));
      }
    }
    (void)env->RemoveFile(options.dir + "/" + std::string(kMetaFile) +
                          ".tmp");
    return Status::NotFound(
        partial ? "no committed index in '" + options.dir +
                      "' (a crashed build's partial artifacts were "
                      "discarded)"
                : "no committed index in '" + options.dir + "'");
  }

  PathStore::Options store_options;
  store_options.path = options.dir + "/paths.dat";
  store_options.truncate = false;
  store_options.buffer_pool_pages = options.buffer_pool_pages;
  store_options.compress = options.compress_paths;
  store_options.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(store_options));

  if (options.build_hypergraph) {
    HypergraphStore::Options hg_options;
    hg_options.path = options.dir + "/hypergraph.dat";
    hg_options.truncate = false;
    hg_options.buffer_pool_pages = options.buffer_pool_pages;
    hg_options.env = options.env;
    SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
  }
  SAMA_RETURN_IF_ERROR(LoadMetadata(options.dir, GraphFingerprint(*graph)));
  // Replay the journal: the graph returns to its checkpointed state
  // (the index structures are already post-update from the metadata).
  // Replaying the SAME insert/delete sequence reproduces the exact
  // edge-slot assignment of the live run — RemoveEdge tombstones a slot
  // rather than reusing it — so the EdgeId postings loaded from the
  // metadata resolve correctly.
  for (const JournalEntry& entry : update_journal_) {
    NodeId s = graph->AddNode(entry.triple.subject);
    NodeId o = graph->AddNode(entry.triple.object);
    if (entry.op == JournalEntry::kInsert) {
      graph->AddEdge(s, o, entry.triple.predicate);
    } else {
      graph->RemoveEdge(s, o, graph->dict().Find(entry.triple.predicate));
    }
  }
  return Status::Ok();
}

Status PathIndex::BuildHypergraph(const DataGraph& graph,
                                  const std::vector<Path>& paths) {
  // One hypergraph vertex per graph node; ids coincide by construction.
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    auto v = hypergraph_.AddVertex(graph.node_term(n).DisplayLabel());
    if (!v.ok()) return v.status();
  }
  // One binary hyperedge per graph edge.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const DataGraph::Edge& edge = graph.edge(e);
    auto he = hypergraph_.AddHyperedge({edge.from, edge.to});
    if (!he.ok()) return he.status();
  }
  // One wide hyperedge per path, grouping the path's vertices
  // (Figure 5).
  for (const Path& p : paths) {
    std::vector<VertexId> members(p.nodes.begin(), p.nodes.end());
    auto he = hypergraph_.AddHyperedge(members);
    if (!he.ok()) return he.status();
  }
  return hypergraph_.Flush();
}

const std::vector<PathId>& PathIndex::PathsWithSinkLabel(
    TermId label) const {
  auto it = by_sink_.find(label);
  return it == by_sink_.end() ? kNoPaths : it->second;
}

namespace {

constexpr char kKeySep = '\x1f';

// Lookup-cache key. Two jobs: identify the lookup uniquely (the FULL
// term form via ToString — an IRI <.../Male> and the literal "Male"
// share a display label but answer differently), and let the
// invalidation sweep recover the fields it filters on with an
// unambiguous left-to-right parse:
//
//   kind  tid-dec  US  identity-dec  US  displaylen-dec  US  display  ToString
//
// where US is 0x1f, tid is the exact dictionary id of the term
// (kInvalidTermId when unknown) and identity is the thesaurus content
// identity the entry was computed under.
std::string LookupKey(char kind, const Term& term, TermId exact,
                      const Thesaurus* thesaurus) {
  std::string display = term.DisplayLabel();
  std::string key(1, kind);
  key += std::to_string(exact);
  key.push_back(kKeySep);
  key += std::to_string(thesaurus == nullptr ? 0 : thesaurus->identity());
  key.push_back(kKeySep);
  key += std::to_string(display.size());
  key.push_back(kKeySep);
  key += display;
  key += term.ToString();
  return key;
}

// Parses the invalidation-relevant fields back out of a lookup key.
struct ParsedLookupKey {
  char kind = 0;
  TermId tid = kInvalidTermId;
  uint64_t identity = 0;
  std::string_view display;
};

bool ParseLookupKey(const std::string& key, ParsedLookupKey* out) {
  if (key.empty()) return false;
  out->kind = key[0];
  size_t pos = 1;
  auto number = [&](uint64_t* value) {
    size_t end = key.find(kKeySep, pos);
    if (end == std::string::npos || end == pos) return false;
    uint64_t v = 0;
    for (size_t i = pos; i < end; ++i) {
      if (key[i] < '0' || key[i] > '9') return false;
      v = v * 10 + static_cast<uint64_t>(key[i] - '0');
    }
    *value = v;
    pos = end + 1;
    return true;
  };
  uint64_t tid = 0;
  uint64_t len = 0;
  if (!number(&tid) || !number(&out->identity) || !number(&len) ||
      key.size() - pos < len) {
    return false;
  }
  out->tid = static_cast<TermId>(tid);
  out->display = std::string_view(key.data() + pos, len);
  return true;
}

}  // namespace

std::vector<PathId> PathIndex::PathsWithSinkMatching(
    const Term& term, const Thesaurus* thesaurus,
    IndexCacheCounters* stats) const {
  std::string key;
  CacheCounters* lookup_stats = stats ? &stats->lookups : nullptr;
  TermId exact = graph_->dict().Find(term);
  if (lookup_cache_) {
    key = LookupKey('s', term, exact, thesaurus);
    std::vector<PathId> cached;
    if (lookup_cache_->Get(key, &cached, lookup_stats)) return cached;
  }
  std::vector<uint64_t> semantic = sink_index_.LookupSemantic(
      term.DisplayLabel(), thesaurus, stats ? &stats->postings : nullptr);
  if (exact != kInvalidTermId) {
    semantic = Merge(std::move(semantic), PathsWithSinkLabel(exact));
  }
  std::vector<PathId> out = FilterDeleted(std::move(semantic));
  if (lookup_cache_) lookup_cache_->Put(key, out, lookup_stats);
  return out;
}

std::vector<PathId> PathIndex::PathsContaining(
    const Term& term, const Thesaurus* thesaurus,
    IndexCacheCounters* stats) const {
  std::string key;
  CacheCounters* lookup_stats = stats ? &stats->lookups : nullptr;
  if (lookup_cache_) {
    key = LookupKey('c', term, graph_->dict().Find(term), thesaurus);
    std::vector<PathId> cached;
    if (lookup_cache_->Get(key, &cached, lookup_stats)) return cached;
  }
  std::vector<PathId> out = FilterDeleted(content_index_.LookupSemantic(
      term.DisplayLabel(), thesaurus, stats ? &stats->postings : nullptr));
  if (lookup_cache_) lookup_cache_->Put(key, out, lookup_stats);
  return out;
}

Status PathIndex::GetPath(PathId id, Path* out,
                          CacheCounters* record_stats) const {
  if (deleted_paths_.count(id) > 0) {
    return Status::NotFound("path " + std::to_string(id) +
                            " was invalidated by an update");
  }
  if (record_cache_ != nullptr && record_cache_->Get(id, out, record_stats)) {
    return Status::Ok();
  }
  Status s = store_.Get(id, out);
  // Only verified reads are memoized: a record that failed its
  // checksum or I/O must keep failing (or keep being retried) exactly
  // as if no cache existed — PR 2's strict-io and degraded-read
  // semantics depend on it.
  if (s.ok() && record_cache_ != nullptr) {
    record_cache_->Put(id, *out, record_stats);
  }
  return s;
}

void PathIndex::ConfigureQueryCache(const IndexCacheConfig& config) const {
  if (!config.enabled) {
    lookup_cache_.reset();
    record_cache_.reset();
    node_index_.ConfigureCache(0);
    edge_index_.ConfigureCache(0);
    sink_index_.ConfigureCache(0);
    content_index_.ConfigureCache(0);
    return;
  }
  lookup_cache_ =
      std::make_unique<ShardedLruCache<std::string, std::vector<PathId>>>(
          config.lookup_entries, config.shards);
  record_cache_ = std::make_unique<ShardedLruCache<PathId, Path>>(
      config.record_entries, config.shards);
  node_index_.ConfigureCache(config.posting_entries, config.shards);
  edge_index_.ConfigureCache(config.posting_entries, config.shards);
  sink_index_.ConfigureCache(config.posting_entries, config.shards);
  content_index_.ConfigureCache(config.posting_entries, config.shards);
}

void PathIndex::DropQueryCaches() const {
  if (lookup_cache_) lookup_cache_->Clear();
  if (record_cache_) record_cache_->Clear();
  node_index_.DropLookupCache();
  edge_index_.DropLookupCache();
  sink_index_.DropLookupCache();
  content_index_.DropLookupCache();
}

uint64_t PathIndex::query_cache_lock_skips() const {
  uint64_t skips = node_index_.cache_lock_skips() +
                   edge_index_.cache_lock_skips() +
                   sink_index_.cache_lock_skips() +
                   content_index_.cache_lock_skips();
  if (lookup_cache_) skips += lookup_cache_->lru_lock_skips();
  if (record_cache_) skips += record_cache_->lru_lock_skips();
  return skips;
}

IndexCacheCounters PathIndex::query_cache_counters() const {
  IndexCacheCounters out;
  out.postings += node_index_.cache_counters();
  out.postings += edge_index_.cache_counters();
  out.postings += sink_index_.cache_counters();
  out.postings += content_index_.cache_counters();
  if (lookup_cache_) out.lookups = lookup_cache_->counters();
  if (record_cache_) out.records = record_cache_->counters();
  return out;
}

std::vector<NodeId> PathIndex::NodesMatching(
    const Term& term, const Thesaurus* thesaurus) const {
  std::vector<uint64_t> raw =
      node_index_.LookupSemantic(term.DisplayLabel(), thesaurus);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<EdgeId> PathIndex::EdgesMatching(
    const Term& term, const Thesaurus* thesaurus) const {
  std::vector<uint64_t> raw =
      edge_index_.LookupSemantic(term.DisplayLabel(), thesaurus);
  std::vector<EdgeId> out;
  out.reserve(raw.size());
  // Postings keep ids of edges RemoveTriple tombstoned; screen them the
  // same way FilterDeleted screens tombstoned paths.
  for (uint64_t e : raw) {
    if (graph_->edge_live(static_cast<EdgeId>(e))) {
      out.push_back(static_cast<EdgeId>(e));
    }
  }
  return out;
}

void PathIndex::ChangedLabels::Add(const TermDictionary& dict, TermId tid) {
  if (!tids.insert(tid).second) return;
  Entry entry;
  entry.display = dict.term(tid).DisplayLabel();
  entry.normalized = NormalizeLabel(entry.display);
  entry.tokens = TokenizeLabel(entry.display);
  std::sort(entry.tokens.begin(), entry.tokens.end());
  entries.push_back(std::move(entry));
}

Status PathIndex::IndexOnePath(const Path& p, const Thesaurus* thesaurus,
                               bool precise, ChangedLabels* sink_labels,
                               ChangedLabels* content_labels) {
  const TermDictionary& dict = graph_->dict();
  auto id_or = store_.Put(p);
  if (!id_or.ok()) return id_or.status();
  PathId id = *id_or;
  by_sink_[p.sink_label()].push_back(id);
  if (precise) {
    sink_index_.AddPrecise(dict.term(p.sink_label()).DisplayLabel(), id,
                           thesaurus);
    for (TermId label : p.node_labels) {
      content_index_.AddPrecise(dict.term(label).DisplayLabel(), id,
                                thesaurus);
    }
    for (TermId label : p.edge_labels) {
      content_index_.AddPrecise(dict.term(label).DisplayLabel(), id,
                                thesaurus);
    }
  } else {
    sink_index_.Add(dict.term(p.sink_label()).DisplayLabel(), id);
    for (TermId label : p.node_labels) {
      content_index_.Add(dict.term(label).DisplayLabel(), id);
    }
    for (TermId label : p.edge_labels) {
      content_index_.Add(dict.term(label).DisplayLabel(), id);
    }
  }
  if (sink_labels != nullptr) sink_labels->Add(dict, p.sink_label());
  if (content_labels != nullptr) {
    for (TermId label : p.node_labels) content_labels->Add(dict, label);
    for (TermId label : p.edge_labels) content_labels->Add(dict, label);
  }
  return Status::Ok();
}

void PathIndex::TombstonePath(PathId id, const Path& p,
                              ChangedLabels* sink_labels,
                              ChangedLabels* content_labels) {
  deleted_paths_.insert(id);
  auto it = by_sink_.find(p.sink_label());
  if (it != by_sink_.end()) {
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_sink_.erase(it);
  }
  // The inverted postings keep the stale id; FilterDeleted screens it
  // out at lookup time. The lookup cache holds FILTERED lists, so the
  // labels this path answered under go into the changed sets.
  const TermDictionary& dict = graph_->dict();
  if (sink_labels != nullptr) sink_labels->Add(dict, p.sink_label());
  if (content_labels != nullptr) {
    for (TermId label : p.node_labels) content_labels->Add(dict, label);
    for (TermId label : p.edge_labels) content_labels->Add(dict, label);
  }
}

void PathIndex::InvalidateLookups(const ChangedLabels& sink_labels,
                                  const ChangedLabels& content_labels,
                                  const Thesaurus* thesaurus) const {
  if (!lookup_cache_) return;
  if (sink_labels.empty() && content_labels.empty()) return;
  uint64_t live_identity = thesaurus == nullptr ? 0 : thesaurus->identity();
  lookup_cache_->EraseIf([&](const std::string& key) {
    ParsedLookupKey parsed;
    if (!ParseLookupKey(key, &parsed)) return true;  // Unparseable: drop.
    const ChangedLabels& changed =
        parsed.kind == 's' ? sink_labels : content_labels;
    if (changed.empty()) return false;
    if (changed.tids.count(parsed.tid) > 0) return true;
    // Mirror LookupSemantic's layers with a sound superset: exact
    // normalized match, token containment (the AND-fallback can only
    // surface a label that holds EVERY lookup token), then thesaurus.
    std::string norm = NormalizeLabel(parsed.display);
    std::vector<std::string> tokens = TokenizeLabel(parsed.display);
    for (const ChangedLabels::Entry& entry : changed.entries) {
      if (norm == entry.normalized) return true;
      if (!tokens.empty()) {
        bool contained = true;
        for (const std::string& token : tokens) {
          if (!std::binary_search(entry.tokens.begin(), entry.tokens.end(),
                                  token)) {
            contained = false;
            break;
          }
        }
        if (contained) return true;
      }
    }
    if (parsed.identity == 0) return false;  // Cached without a thesaurus.
    if (thesaurus == nullptr || parsed.identity != live_identity) {
      return true;  // Can't evaluate that thesaurus: drop conservatively.
    }
    for (const ChangedLabels::Entry& entry : changed.entries) {
      if (thesaurus->AreRelated(norm, entry.display)) return true;
    }
    return false;
  });
}

std::vector<PathId> PathIndex::FilterDeleted(
    std::vector<uint64_t> ids) const {
  if (deleted_paths_.empty()) return ids;
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [this](uint64_t id) {
                             return deleted_paths_.count(id) > 0;
                           }),
            ids.end());
  return ids;
}

namespace {

// Reverse simple paths from `end` back to the graph's sources; each
// emitted prefix runs source→...→end (inclusive). Emits an empty-prefix
// marker (just {end}) when `end` itself has no incoming edges.
void CollectPrefixes(const DataGraph& graph, NodeId end, size_t max_length,
                     std::vector<Path>* out) {
  std::vector<NodeId> stack{end};
  std::vector<TermId> edge_stack;
  std::vector<bool> on_path(graph.node_count(), false);
  on_path[end] = true;

  // Recursive walk over in-edges.
  std::function<void()> walk = [&] {
    NodeId node = stack.back();
    if (graph.in_degree(node) == 0) {
      // Reached a source: materialise the reversed walk.
      Path p;
      p.nodes.assign(stack.rbegin(), stack.rend());
      for (NodeId n : p.nodes) p.node_labels.push_back(graph.node_label(n));
      p.edge_labels.assign(edge_stack.rbegin(), edge_stack.rend());
      out->push_back(std::move(p));
      return;
    }
    if (max_length != 0 && stack.size() >= max_length) return;
    for (EdgeId e : graph.in_edges(node)) {
      const DataGraph::Edge& edge = graph.edge(e);
      if (on_path[edge.from]) continue;
      stack.push_back(edge.from);
      edge_stack.push_back(edge.label);
      on_path[edge.from] = true;
      walk();
      on_path[edge.from] = false;
      edge_stack.pop_back();
      stack.pop_back();
    }
  };
  walk();
}

// Forward simple paths from `start` to sinks, start inclusive. Emits a
// single-node path when `start` is itself a sink.
void CollectSuffixes(const DataGraph& graph, NodeId start,
                     size_t max_length, std::vector<Path>* out) {
  if (graph.out_degree(start) == 0) {
    Path p;
    p.nodes = {start};
    p.node_labels = {graph.node_label(start)};
    out->push_back(std::move(p));
    return;
  }
  EnumeratePathsFrom(graph, start,
                     PathEnumeratorOptions{0, max_length, false},
                     [out](const Path& p) {
                       out->push_back(p);
                       return true;
                     });
}

}  // namespace

Status PathIndex::AddTriple(DataGraph* graph, const Triple& triple,
                            const Thesaurus* thesaurus) {
  if (graph != graph_) {
    return Status::InvalidArgument(
        "AddTriple must receive the graph the index was built over");
  }
  size_t nodes_before = graph->node_count();
  size_t live_before = graph->live_edge_count();
  NodeId s = graph->AddNode(triple.subject);
  NodeId o = graph->AddNode(triple.object);
  bool s_was_sink =
      s < nodes_before && graph->out_degree(s) == 0 && graph->in_degree(s) > 0;
  bool o_was_source =
      o < nodes_before && graph->in_degree(o) == 0 && graph->out_degree(o) > 0;
  EdgeId new_edge = graph->AddEdge(s, o, triple.predicate);
  if (graph->live_edge_count() == live_before) {
    return Status::Ok();  // Duplicate.
  }
  update_journal_.push_back({JournalEntry::kInsert, triple});
  ChangedLabels sink_labels, content_labels;

  // Element-to-element mapping for the new elements.
  for (NodeId n = static_cast<NodeId>(nodes_before);
       n < graph->node_count(); ++n) {
    node_index_.AddPrecise(graph->node_term(n).DisplayLabel(), n, thesaurus);
    if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
      auto v = hypergraph_.AddVertex(graph->node_term(n).DisplayLabel());
      if (!v.ok()) return v.status();
    }
  }
  edge_index_.AddPrecise(graph->edge_term(new_edge).DisplayLabel(), new_edge,
                         thesaurus);
  if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
    auto he = hypergraph_.AddHyperedge({s, o});
    if (!he.ok()) return he.status();
  }

  // Tombstone paths invalidated by the new edge.
  if (s_was_sink) {
    // Paths used to end at s; they now continue through the new edge.
    std::vector<PathId> stale = by_sink_[graph->node_label(s)];
    for (PathId id : stale) {
      Path p;
      SAMA_RETURN_IF_ERROR(store_.Get(id, &p));
      if (p.nodes.back() == s) {
        TombstonePath(id, p, &sink_labels, &content_labels);
      }
    }
  }
  if (o_was_source) {
    // Paths used to start at o; the prefixes now reach further back.
    std::vector<uint64_t> candidates = content_index_.LookupSemantic(
        graph->node_term(o).DisplayLabel(), nullptr);
    for (uint64_t id : FilterDeleted(std::move(candidates))) {
      Path p;
      SAMA_RETURN_IF_ERROR(store_.Get(id, &p));
      if (!p.nodes.empty() && p.nodes.front() == o) {
        TombstonePath(id, p, &sink_labels, &content_labels);
      }
    }
  }

  // New paths: every (source→…→s) prefix composed with the new edge and
  // every (o→…→sink) suffix, keeping the result a simple path.
  std::vector<Path> prefixes, suffixes;
  CollectPrefixes(*graph, s, options_.enumerate.max_length, &prefixes);
  CollectSuffixes(*graph, o, options_.enumerate.max_length, &suffixes);
  TermId edge_label = graph->edge(new_edge).label;
  size_t added = 0;
  for (const Path& prefix : prefixes) {
    for (const Path& suffix : suffixes) {
      // Simple-path check: prefix and suffix must not share nodes.
      bool disjoint = true;
      for (NodeId a : prefix.nodes) {
        for (NodeId b : suffix.nodes) {
          if (a == b) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
      }
      if (!disjoint) continue;
      Path combined;
      combined.nodes = prefix.nodes;
      combined.nodes.insert(combined.nodes.end(), suffix.nodes.begin(),
                            suffix.nodes.end());
      combined.node_labels = prefix.node_labels;
      combined.node_labels.insert(combined.node_labels.end(),
                                  suffix.node_labels.begin(),
                                  suffix.node_labels.end());
      combined.edge_labels = prefix.edge_labels;
      combined.edge_labels.push_back(edge_label);
      combined.edge_labels.insert(combined.edge_labels.end(),
                                  suffix.edge_labels.begin(),
                                  suffix.edge_labels.end());
      if (options_.enumerate.max_length != 0 &&
          combined.length() > options_.enumerate.max_length) {
        continue;
      }
      PathId id = store_.path_count();
      SAMA_RETURN_IF_ERROR(IndexOnePath(combined, thesaurus, /*precise=*/true,
                                        &sink_labels, &content_labels));
      ++added;
      if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
        std::vector<VertexId> members(combined.nodes.begin(),
                                      combined.nodes.end());
        auto he = hypergraph_.AddHyperedge(members);
        if (!he.ok()) return he.status();
      }
      (void)id;
    }
  }
  node_index_.Finish();
  edge_index_.Finish();
  sink_index_.Finish();
  content_index_.Finish();
  // Candidate lists changed for the touched labels only (tombstones +
  // new paths): sweep exactly those entries instead of flushing the
  // cache — concurrent queries over unrelated clusters keep their
  // memoized lookups. The posting memos were swept per-label by the
  // AddPrecise() calls above. The record cache is safe to keep — ids
  // are immutable and tombstones are screened before it.
  InvalidateLookups(sink_labels, content_labels, thesaurus);

  sources_ = graph->Sources();
  sinks_ = graph->Sinks();
  stats_.num_triples = graph->live_edge_count();
  stats_.num_paths = live_path_count();
  stats_.hv = hypergraph_.vertex_count();
  stats_.he = hypergraph_.hyperedge_count();
  (void)added;
  return Status::Ok();
}

Status PathIndex::RemoveTriple(DataGraph* graph, const Triple& triple,
                               const Thesaurus* thesaurus) {
  if (graph != graph_) {
    return Status::InvalidArgument(
        "RemoveTriple must receive the graph the index was built over");
  }
  NodeId s = graph->FindNode(triple.subject);
  NodeId o = graph->FindNode(triple.object);
  TermId predicate = graph->dict().Find(triple.predicate);
  if (s == kInvalidNodeId || o == kInvalidNodeId ||
      predicate == kInvalidTermId) {
    return Status::Ok();  // Absent triple: idempotent no-op.
  }
  EdgeId edge = graph->FindEdge(s, o, predicate);
  if (edge == kInvalidEdgeId) return Status::Ok();
  update_journal_.push_back({JournalEntry::kDelete, triple});
  ChangedLabels sink_labels, content_labels;

  // Tombstone every live path that traverses the edge. Candidates:
  // paths containing the subject's label (an exact superset of the
  // paths through s — content postings are keyed by label, so same-
  // label nodes add false candidates the node-id check below screens).
  std::vector<uint64_t> candidates = content_index_.LookupSemantic(
      graph->node_term(s).DisplayLabel(), nullptr);
  for (uint64_t id : FilterDeleted(std::move(candidates))) {
    Path p;
    SAMA_RETURN_IF_ERROR(store_.Get(id, &p));
    for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      if (p.nodes[i] == s && p.nodes[i + 1] == o &&
          p.edge_labels[i] == predicate) {
        TombstonePath(id, p, &sink_labels, &content_labels);
        break;
      }
    }
  }

  graph->RemoveEdge(s, o, predicate);

  // The removal can COMPLETE paths: s with no remaining out-edges is a
  // sink again (every source→…→s walk is now a full path), and o with
  // no remaining in-edges is a source (every o→…→sink walk is one).
  // When both happen at once an o→…→s walk shows up from both ends, so
  // de-duplicate by node sequence before indexing.
  bool s_now_sink = graph->out_degree(s) == 0 && graph->in_degree(s) > 0;
  bool o_now_source = graph->in_degree(o) == 0 && graph->out_degree(o) > 0;
  std::vector<Path> completed;
  if (s_now_sink) {
    CollectPrefixes(*graph, s, options_.enumerate.max_length, &completed);
  }
  if (o_now_source) {
    CollectSuffixes(*graph, o, options_.enumerate.max_length, &completed);
  }
  std::unordered_set<std::string> seen;
  for (const Path& p : completed) {
    if (options_.enumerate.max_length != 0 &&
        p.length() > options_.enumerate.max_length) {
      continue;
    }
    std::string signature;
    for (NodeId n : p.nodes) {
      signature += std::to_string(n);
      signature.push_back(',');
    }
    if (!seen.insert(signature).second) continue;
    SAMA_RETURN_IF_ERROR(IndexOnePath(p, thesaurus, /*precise=*/true,
                                      &sink_labels, &content_labels));
    if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
      std::vector<VertexId> members(p.nodes.begin(), p.nodes.end());
      auto he = hypergraph_.AddHyperedge(members);
      if (!he.ok()) return he.status();
    }
  }
  sink_index_.Finish();
  content_index_.Finish();
  InvalidateLookups(sink_labels, content_labels, thesaurus);

  sources_ = graph->Sources();
  sinks_ = graph->Sinks();
  stats_.num_triples = graph->live_edge_count();
  stats_.num_paths = live_path_count();
  stats_.hv = hypergraph_.vertex_count();
  stats_.he = hypergraph_.hyperedge_count();
  return Status::Ok();
}

Status PathIndex::Checkpoint() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument(
        "Checkpoint requires a disk-backed index (options.dir)");
  }
  SAMA_RETURN_IF_ERROR(store_.Flush());
  SAMA_RETURN_IF_ERROR(hypergraph_.Flush());
  return SaveMetadata(options_.dir);
}

Status PathIndex::DropCaches() {
  DropQueryCaches();
  SAMA_RETURN_IF_ERROR(store_.DropCaches());
  return hypergraph_.DropCaches();
}

}  // namespace sama

#include "index/path_index.h"

#include <algorithm>
#include <functional>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "storage/coding.h"
#include "storage/manifest.h"

namespace sama {
namespace {

const std::vector<PathId> kNoPaths;

// On-disk artifact names. Builds stage everything under kStageDirName
// and rename into the index directory at commit; kMetaFile is renamed
// LAST — its presence in the index directory IS the commit record.
constexpr char kStageDirName[] = "build.tmp";
constexpr char kMetaFile[] = "index.meta";
const char* const kDataArtifacts[] = {
    "paths.dat", "paths.dat.manifest", "hypergraph.dat",
    "hypergraph.dat.vertices", "hypergraph.dat.hyperedges"};

Env* OrDefault(Env* env) { return env == nullptr ? Env::Default() : env; }

// Removes `dir` and the flat set of files inside it (build staging
// directories never nest). Missing directory is fine.
Status RemoveDirTree(const std::string& dir, Env* env) {
  if (!env->FileExists(dir)) return Status::Ok();
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : *entries) {
    SAMA_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + name));
  }
  return env->RemoveDir(dir);
}

// The commit protocol: publish a complete staged build into `dir`.
//  1. delete the old commit record (dir/index.meta) — from here until
//     step 3 completes the directory deliberately holds NO committed
//     index, so a crash recovers to "rebuild" rather than to a mix of
//     old and new files;
//  2. rename every data artifact from the staging dir into place
//     (artifacts the new build did not produce are removed so a stale
//     copy from the previous index cannot shadow the new state);
//  3. rename index.meta — the atomic commit point;
// with directory fsyncs after each batch of renames. The staging dir
// itself is removed best-effort afterwards; Open() also clears it.
Status CommitBuild(const std::string& dir, const std::string& stage_dir,
                   Env* env) {
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.begin"));
  SAMA_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + kMetaFile));
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(
      FailPoints::Trigger("path_index.commit.uncommitted_old"));
  for (const char* name : kDataArtifacts) {
    std::string staged = stage_dir + "/" + name;
    std::string final_path = dir + "/" + name;
    if (env->FileExists(staged)) {
      SAMA_RETURN_IF_ERROR(env->RenameFile(staged, final_path));
    } else {
      SAMA_RETURN_IF_ERROR(env->RemoveFile(final_path));
    }
  }
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.data_renamed"));
  SAMA_RETURN_IF_ERROR(env->RenameFile(stage_dir + "/" + kMetaFile,
                                       dir + "/" + kMetaFile));
  SAMA_RETURN_IF_ERROR(env->SyncDir(dir));
  SAMA_RETURN_IF_ERROR(FailPoints::Trigger("path_index.commit.committed"));
  (void)RemoveDirTree(stage_dir, env);  // Cosmetic; Open() also clears it.
  return Status::Ok();
}

std::vector<uint64_t> Merge(std::vector<uint64_t> a,
                            const std::vector<uint64_t>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

Status PathIndex::Build(const DataGraph& graph,
                        const PathIndexOptions& options) {
  WallTimer timer;
  graph_ = &graph;
  options_ = options;
  base_fingerprint_ = GraphFingerprint(graph);
  update_journal_.clear();
  DropQueryCaches();  // A rebuild invalidates every memoized answer.

  // Disk builds are staged: every artifact is written into
  // dir/build.tmp and published by CommitBuild() only once complete,
  // so a build that dies at any point leaves either the previous
  // committed index or a partial staging dir that Open() discards.
  Env* env = OrDefault(options.env);
  std::string stage_dir;
  if (!options.dir.empty()) {
    SAMA_RETURN_IF_ERROR(env->CreateDir(options.dir));
    stage_dir = options.dir + "/" + kStageDirName;
    SAMA_RETURN_IF_ERROR(RemoveDirTree(stage_dir, env));
    SAMA_RETURN_IF_ERROR(env->CreateDir(stage_dir));
  }

  PathStore::Options store_options;
  if (!stage_dir.empty()) {
    store_options.path = stage_dir + "/paths.dat";
  }
  store_options.buffer_pool_pages = options.buffer_pool_pages;
  store_options.compress = options.compress_paths;
  store_options.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(store_options));

  // Step (i): hash every vertex and edge label (element-to-element
  // mapping).
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    node_index_.Add(graph.node_term(n).DisplayLabel(), n);
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    edge_index_.Add(graph.edge_term(e).DisplayLabel(), e);
  }

  // Step (ii): identify sources and sinks.
  sources_ = graph.Sources();
  sinks_ = graph.Sinks();

  // Step (iii): compute all paths, traversing concurrently from each
  // start node. Every start enumerates into its own slot and the slots
  // concatenate in start order, so path ids are IDENTICAL for every
  // thread count — a reopened index never depends on how many cores
  // built it.
  std::vector<NodeId> starts = graph.StartNodes();
  std::vector<Path> paths;
  size_t threads = std::max<size_t>(1, options.num_threads);
  if (threads == 1 || starts.size() <= 1) {
    PathEnumeratorOptions enum_options = options.enumerate;
    for (NodeId start : starts) {
      EnumeratePathsFrom(graph, start, enum_options, [&](const Path& p) {
        paths.push_back(p);
        return options.enumerate.max_paths == 0 ||
               paths.size() < options.enumerate.max_paths;
      });
      if (options.enumerate.max_paths != 0 &&
          paths.size() >= options.enumerate.max_paths) {
        break;
      }
    }
  } else {
    ThreadPool pool(threads - 1);
    std::vector<std::vector<Path>> per_start(starts.size());
    SAMA_RETURN_IF_ERROR(
        ParallelFor(&pool, starts.size(), [&](size_t i) -> Status {
          EnumeratePathsFrom(graph, starts[i], options.enumerate,
                             [&](const Path& p) {
                               per_start[i].push_back(p);
                               return true;
                             });
          return Status::Ok();
        }));
    for (std::vector<Path>& local : per_start) {
      for (Path& p : local) paths.push_back(std::move(p));
    }
    if (options.enumerate.max_paths != 0 &&
        paths.size() > options.enumerate.max_paths) {
      paths.resize(options.enumerate.max_paths);
    }
  }

  // Persist the paths and index them by sink and by content.
  for (const Path& p : paths) {
    SAMA_RETURN_IF_ERROR(IndexOnePath(p));
  }
  node_index_.Finish();
  edge_index_.Finish();
  sink_index_.Finish();
  content_index_.Finish();
  SAMA_RETURN_IF_ERROR(store_.Flush());
  if (!stage_dir.empty()) {
    SAMA_RETURN_IF_ERROR(
        FailPoints::Trigger("path_index.build.paths_flushed"));
  }

  if (options.build_hypergraph) {
    HypergraphStore::Options hg_options;
    if (!stage_dir.empty()) {
      hg_options.path = stage_dir + "/hypergraph.dat";
    }
    hg_options.buffer_pool_pages = options.buffer_pool_pages;
    hg_options.env = options.env;
    SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
    SAMA_RETURN_IF_ERROR(BuildHypergraph(graph, paths));
  }

  stats_.num_triples = graph.edge_count();
  stats_.num_paths = store_.path_count();
  stats_.hv = hypergraph_.vertex_count();
  stats_.he = hypergraph_.hyperedge_count();
  stats_.build_millis = timer.ElapsedMillis();
  stats_.disk_bytes = store_.size_bytes() + hypergraph_.size_bytes() +
                      node_index_.MemoryBytes() + edge_index_.MemoryBytes() +
                      sink_index_.MemoryBytes() +
                      content_index_.MemoryBytes();
  if (!options.dir.empty()) {
    SAMA_RETURN_IF_ERROR(SaveMetadata(stage_dir));
    SAMA_RETURN_IF_ERROR(
        FailPoints::Trigger("path_index.build.tmp_complete"));
    // Close the staged stores so their files are complete and synced,
    // publish them, then reattach to the committed locations.
    SAMA_RETURN_IF_ERROR(store_.Close());
    SAMA_RETURN_IF_ERROR(hypergraph_.Close());
    SAMA_RETURN_IF_ERROR(CommitBuild(options.dir, stage_dir, env));
    store_options.path = options.dir + "/paths.dat";
    store_options.truncate = false;
    SAMA_RETURN_IF_ERROR(store_.Open(store_options));
    if (options.build_hypergraph) {
      HypergraphStore::Options hg_options;
      hg_options.path = options.dir + "/hypergraph.dat";
      hg_options.truncate = false;
      hg_options.buffer_pool_pages = options.buffer_pool_pages;
      hg_options.env = options.env;
      SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
    }
  }
  return Status::Ok();
}

std::vector<std::string> PathIndex::BuildCrashPoints() {
  return {"path_index.build.paths_flushed",
          "path_index.build.tmp_complete",
          "path_index.commit.begin",
          "path_index.commit.uncommitted_old",
          "path_index.commit.data_renamed",
          "path_index.commit.committed"};
}

uint64_t PathIndex::GraphFingerprint(const DataGraph& graph) {
  uint64_t h = 0x5afeC0deULL;
  h = HashCombine(h, graph.node_count());
  h = HashCombine(h, graph.edge_count());
  // Sample edges (all of them for small graphs) so swapped datasets are
  // rejected without hashing every byte of a huge graph.
  size_t step = graph.edge_count() / 1024 + 1;
  for (EdgeId e = 0; e < graph.edge_count();
       e += static_cast<EdgeId>(step)) {
    const DataGraph::Edge& edge = graph.edge(e);
    h = HashCombine(h, edge.from);
    h = HashCombine(h, edge.to);
    h = HashCombine(h, edge.label);
  }
  return h;
}

namespace {

void PutString(std::vector<uint8_t>* blob, const std::string& s) {
  PutVarint64(blob, s.size());
  blob->insert(blob->end(), s.begin(), s.end());
}

bool GetString(const std::vector<uint8_t>& blob, size_t* pos,
               std::string* out) {
  uint64_t size = 0;
  if (!GetVarint64(blob, pos, &size)) return false;
  if (blob.size() - *pos < size) return false;
  out->assign(blob.begin() + static_cast<long>(*pos),
              blob.begin() + static_cast<long>(*pos + size));
  *pos += size;
  return true;
}

void PutTerm(std::vector<uint8_t>* blob, const Term& t) {
  PutVarint64(blob, static_cast<uint64_t>(t.kind()));
  PutString(blob, t.value());
  PutString(blob, t.datatype());
  PutString(blob, t.language());
}

bool GetTerm(const std::vector<uint8_t>& blob, size_t* pos, Term* out) {
  uint64_t kind = 0;
  std::string value, datatype, language;
  if (!GetVarint64(blob, pos, &kind) || kind > 3 ||
      !GetString(blob, pos, &value) || !GetString(blob, pos, &datatype) ||
      !GetString(blob, pos, &language)) {
    return false;
  }
  switch (static_cast<Term::Kind>(kind)) {
    case Term::Kind::kIri:
      *out = Term::Iri(std::move(value));
      return true;
    case Term::Kind::kLiteral:
      if (!language.empty()) {
        *out = Term::LangLiteral(std::move(value), std::move(language));
      } else if (!datatype.empty()) {
        *out = Term::TypedLiteral(std::move(value), std::move(datatype));
      } else {
        *out = Term::Literal(std::move(value));
      }
      return true;
    case Term::Kind::kBlank:
      *out = Term::Blank(std::move(value));
      return true;
    case Term::Kind::kVariable:
      *out = Term::Variable(std::move(value));
      return true;
  }
  return false;
}

}  // namespace

Status PathIndex::SaveMetadata(const std::string& dir) const {
  std::vector<uint8_t> blob;
  PutVarint64(&blob, base_fingerprint_);
  PutVarint64(&blob, stats_.num_triples);
  PutVarint64(&blob, stats_.num_paths);
  PutVarint64(&blob, stats_.hv);
  PutVarint64(&blob, stats_.he);
  PutVarint64(&blob, static_cast<uint64_t>(stats_.build_millis * 1000));
  PutVarint64(&blob, stats_.disk_bytes);
  PutVarint64(&blob, sources_.size());
  for (NodeId n : sources_) PutVarint32(&blob, n);
  PutVarint64(&blob, sinks_.size());
  for (NodeId n : sinks_) PutVarint32(&blob, n);
  PutVarint64(&blob, by_sink_.size());
  for (const auto& [label, ids] : by_sink_) {
    PutVarint32(&blob, label);
    PutVarint64(&blob, ids.size());
    uint64_t previous = 0;
    for (PathId id : ids) {
      PutVarint64(&blob, id - previous);
      previous = id;
    }
  }
  node_index_.Serialize(&blob);
  edge_index_.Serialize(&blob);
  sink_index_.Serialize(&blob);
  content_index_.Serialize(&blob);
  // Dictionary image: restores the exact TermId space on Open.
  const TermDictionary& dict = graph_->dict();
  PutVarint64(&blob, dict.size());
  for (TermId i = 0; i < dict.size(); ++i) PutTerm(&blob, dict.term(i));
  // Journal of AddTriple updates, replayed into the base graph on Open.
  PutVarint64(&blob, update_journal_.size());
  for (const Triple& t : update_journal_) {
    PutTerm(&blob, t.subject);
    PutTerm(&blob, t.predicate);
    PutTerm(&blob, t.object);
  }
  // Tombstoned path ids.
  PutVarint64(&blob, deleted_paths_.size());
  for (PathId id : deleted_paths_) PutVarint64(&blob, id);
  return WriteBlobFile(dir + "/" + kMetaFile, blob, options_.env);
}

Status PathIndex::LoadMetadata(const std::string& dir,
                               uint64_t fingerprint) {
  auto blob_or = ReadBlobFile(dir + "/" + kMetaFile, options_.env);
  if (!blob_or.ok()) return blob_or.status();
  const std::vector<uint8_t>& blob = *blob_or;
  size_t pos = 0;
  uint64_t v = 0;
  auto next = [&](uint64_t* out) { return GetVarint64(blob, &pos, out); };
  if (!next(&v)) return Status::Corruption("index.meta header");
  if (v != fingerprint) {
    return Status::InvalidArgument(
        "index.meta was built over a different data graph");
  }
  base_fingerprint_ = v;
  uint64_t micros = 0;
  if (!next(&stats_.num_triples) || !next(&stats_.num_paths) ||
      !next(&stats_.hv) || !next(&stats_.he) || !next(&micros) ||
      !next(&stats_.disk_bytes)) {
    return Status::Corruption("index.meta stats");
  }
  stats_.build_millis = static_cast<double>(micros) / 1000.0;

  uint64_t count = 0;
  if (!next(&count)) return Status::Corruption("index.meta sources");
  sources_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    if (!GetVarint32(blob, &pos, &n)) {
      return Status::Corruption("index.meta sources");
    }
    sources_[i] = n;
  }
  if (!next(&count)) return Status::Corruption("index.meta sinks");
  sinks_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    if (!GetVarint32(blob, &pos, &n)) {
      return Status::Corruption("index.meta sinks");
    }
    sinks_[i] = n;
  }
  if (!next(&count)) return Status::Corruption("index.meta sink map");
  by_sink_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t label = 0;
    uint64_t ids = 0;
    if (!GetVarint32(blob, &pos, &label) || !next(&ids)) {
      return Status::Corruption("index.meta sink map entry");
    }
    std::vector<PathId>& postings = by_sink_[label];
    postings.resize(ids);
    uint64_t previous = 0;
    for (uint64_t j = 0; j < ids; ++j) {
      uint64_t delta = 0;
      if (!next(&delta)) return Status::Corruption("index.meta sink ids");
      previous += delta;
      postings[j] = previous;
    }
  }
  if (!node_index_.Deserialize(blob, &pos) ||
      !edge_index_.Deserialize(blob, &pos) ||
      !sink_index_.Deserialize(blob, &pos) ||
      !content_index_.Deserialize(blob, &pos)) {
    return Status::Corruption("index.meta inverted indexes");
  }

  // Dictionary image: re-intern every saved term in order. The base
  // graph's terms must come back with their original ids (a mismatch
  // means this is not the graph the index was built over); terms
  // interned later (query variables, update entities) are restored to
  // their original slots.
  if (!next(&count)) return Status::Corruption("index.meta dictionary");
  // Open passes a mutable graph; graph_ stores it const for the query
  // path. Re-obtain mutable access through the shared dictionary handle.
  TermDictionary& dict = *graph_->shared_dict();
  for (uint64_t i = 0; i < count; ++i) {
    Term term;
    if (!GetTerm(blob, &pos, &term)) {
      return Status::Corruption("index.meta dictionary term");
    }
    TermId id = dict.Intern(term);
    if (id != i) {
      return Status::InvalidArgument(
          "dictionary drift: the provided graph interned terms in a "
          "different order than the indexed one");
    }
  }

  // Update journal.
  if (!next(&count)) return Status::Corruption("index.meta journal");
  update_journal_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetTerm(blob, &pos, &update_journal_[i].subject) ||
        !GetTerm(blob, &pos, &update_journal_[i].predicate) ||
        !GetTerm(blob, &pos, &update_journal_[i].object)) {
      return Status::Corruption("index.meta journal triple");
    }
  }

  // Tombstones.
  if (!next(&count)) return Status::Corruption("index.meta tombstones");
  deleted_paths_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!next(&id)) return Status::Corruption("index.meta tombstone id");
    deleted_paths_.insert(id);
  }
  return Status::Ok();
}

Status PathIndex::Open(DataGraph* graph,
                       const PathIndexOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("PathIndex::Open requires options.dir");
  }
  graph_ = graph;
  options_ = options;
  DropQueryCaches();  // Opening replaces the contents wholesale.
  Env* env = OrDefault(options.env);

  // Crash recovery. A leftover staging dir belongs to a build that
  // died before its commit point — discard it. If after that there is
  // no commit record, any data files present are partial artifacts of
  // a crashed commit; remove them and report kNotFound so the caller
  // rebuilds from the data graph.
  SAMA_RETURN_IF_ERROR(
      RemoveDirTree(options.dir + "/" + kStageDirName, env));
  if (!env->FileExists(options.dir + "/" + kMetaFile)) {
    bool partial = false;
    for (const char* name : kDataArtifacts) {
      std::string path = options.dir + "/" + name;
      if (env->FileExists(path)) {
        partial = true;
        SAMA_RETURN_IF_ERROR(env->RemoveFile(path));
      }
    }
    (void)env->RemoveFile(options.dir + "/" + std::string(kMetaFile) +
                          ".tmp");
    return Status::NotFound(
        partial ? "no committed index in '" + options.dir +
                      "' (a crashed build's partial artifacts were "
                      "discarded)"
                : "no committed index in '" + options.dir + "'");
  }

  PathStore::Options store_options;
  store_options.path = options.dir + "/paths.dat";
  store_options.truncate = false;
  store_options.buffer_pool_pages = options.buffer_pool_pages;
  store_options.compress = options.compress_paths;
  store_options.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(store_options));

  if (options.build_hypergraph) {
    HypergraphStore::Options hg_options;
    hg_options.path = options.dir + "/hypergraph.dat";
    hg_options.truncate = false;
    hg_options.buffer_pool_pages = options.buffer_pool_pages;
    hg_options.env = options.env;
    SAMA_RETURN_IF_ERROR(hypergraph_.Open(hg_options));
  }
  SAMA_RETURN_IF_ERROR(LoadMetadata(options.dir, GraphFingerprint(*graph)));
  // Replay the journal: the graph returns to its checkpointed state
  // (the index structures are already post-update from the metadata).
  for (const Triple& t : update_journal_) {
    NodeId s = graph->AddNode(t.subject);
    NodeId o = graph->AddNode(t.object);
    graph->AddEdge(s, o, t.predicate);
  }
  return Status::Ok();
}

Status PathIndex::BuildHypergraph(const DataGraph& graph,
                                  const std::vector<Path>& paths) {
  // One hypergraph vertex per graph node; ids coincide by construction.
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    auto v = hypergraph_.AddVertex(graph.node_term(n).DisplayLabel());
    if (!v.ok()) return v.status();
  }
  // One binary hyperedge per graph edge.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const DataGraph::Edge& edge = graph.edge(e);
    auto he = hypergraph_.AddHyperedge({edge.from, edge.to});
    if (!he.ok()) return he.status();
  }
  // One wide hyperedge per path, grouping the path's vertices
  // (Figure 5).
  for (const Path& p : paths) {
    std::vector<VertexId> members(p.nodes.begin(), p.nodes.end());
    auto he = hypergraph_.AddHyperedge(members);
    if (!he.ok()) return he.status();
  }
  return hypergraph_.Flush();
}

const std::vector<PathId>& PathIndex::PathsWithSinkLabel(
    TermId label) const {
  auto it = by_sink_.find(label);
  return it == by_sink_.end() ? kNoPaths : it->second;
}

namespace {

// Lookup-cache key: a kind tag, the FULL term form (ToString — an IRI
// <.../Male> and the literal "Male" share a display label but answer
// differently) and the thesaurus content identity.
std::string LookupKey(char kind, const Term& term,
                      const Thesaurus* thesaurus) {
  std::string key(1, kind);
  key.push_back('\x1f');
  key += term.ToString();
  key.push_back('\x1f');
  key += std::to_string(thesaurus == nullptr ? 0 : thesaurus->identity());
  return key;
}

}  // namespace

std::vector<PathId> PathIndex::PathsWithSinkMatching(
    const Term& term, const Thesaurus* thesaurus,
    IndexCacheCounters* stats) const {
  std::string key;
  CacheCounters* lookup_stats = stats ? &stats->lookups : nullptr;
  if (lookup_cache_) {
    key = LookupKey('s', term, thesaurus);
    std::vector<PathId> cached;
    if (lookup_cache_->Get(key, &cached, lookup_stats)) return cached;
  }
  std::vector<uint64_t> semantic = sink_index_.LookupSemantic(
      term.DisplayLabel(), thesaurus, stats ? &stats->postings : nullptr);
  TermId exact = graph_->dict().Find(term);
  if (exact != kInvalidTermId) {
    semantic = Merge(std::move(semantic), PathsWithSinkLabel(exact));
  }
  std::vector<PathId> out = FilterDeleted(std::move(semantic));
  if (lookup_cache_) lookup_cache_->Put(key, out, lookup_stats);
  return out;
}

std::vector<PathId> PathIndex::PathsContaining(
    const Term& term, const Thesaurus* thesaurus,
    IndexCacheCounters* stats) const {
  std::string key;
  CacheCounters* lookup_stats = stats ? &stats->lookups : nullptr;
  if (lookup_cache_) {
    key = LookupKey('c', term, thesaurus);
    std::vector<PathId> cached;
    if (lookup_cache_->Get(key, &cached, lookup_stats)) return cached;
  }
  std::vector<PathId> out = FilterDeleted(content_index_.LookupSemantic(
      term.DisplayLabel(), thesaurus, stats ? &stats->postings : nullptr));
  if (lookup_cache_) lookup_cache_->Put(key, out, lookup_stats);
  return out;
}

Status PathIndex::GetPath(PathId id, Path* out,
                          CacheCounters* record_stats) const {
  if (deleted_paths_.count(id) > 0) {
    return Status::NotFound("path " + std::to_string(id) +
                            " was invalidated by an update");
  }
  if (record_cache_ != nullptr && record_cache_->Get(id, out, record_stats)) {
    return Status::Ok();
  }
  Status s = store_.Get(id, out);
  // Only verified reads are memoized: a record that failed its
  // checksum or I/O must keep failing (or keep being retried) exactly
  // as if no cache existed — PR 2's strict-io and degraded-read
  // semantics depend on it.
  if (s.ok() && record_cache_ != nullptr) {
    record_cache_->Put(id, *out, record_stats);
  }
  return s;
}

void PathIndex::ConfigureQueryCache(const IndexCacheConfig& config) const {
  if (!config.enabled) {
    lookup_cache_.reset();
    record_cache_.reset();
    node_index_.ConfigureCache(0);
    edge_index_.ConfigureCache(0);
    sink_index_.ConfigureCache(0);
    content_index_.ConfigureCache(0);
    return;
  }
  lookup_cache_ =
      std::make_unique<ShardedLruCache<std::string, std::vector<PathId>>>(
          config.lookup_entries, config.shards);
  record_cache_ = std::make_unique<ShardedLruCache<PathId, Path>>(
      config.record_entries, config.shards);
  node_index_.ConfigureCache(config.posting_entries, config.shards);
  edge_index_.ConfigureCache(config.posting_entries, config.shards);
  sink_index_.ConfigureCache(config.posting_entries, config.shards);
  content_index_.ConfigureCache(config.posting_entries, config.shards);
}

void PathIndex::DropQueryCaches() const {
  if (lookup_cache_) lookup_cache_->Clear();
  if (record_cache_) record_cache_->Clear();
  node_index_.DropLookupCache();
  edge_index_.DropLookupCache();
  sink_index_.DropLookupCache();
  content_index_.DropLookupCache();
}

IndexCacheCounters PathIndex::query_cache_counters() const {
  IndexCacheCounters out;
  out.postings += node_index_.cache_counters();
  out.postings += edge_index_.cache_counters();
  out.postings += sink_index_.cache_counters();
  out.postings += content_index_.cache_counters();
  if (lookup_cache_) out.lookups = lookup_cache_->counters();
  if (record_cache_) out.records = record_cache_->counters();
  return out;
}

std::vector<NodeId> PathIndex::NodesMatching(
    const Term& term, const Thesaurus* thesaurus) const {
  std::vector<uint64_t> raw =
      node_index_.LookupSemantic(term.DisplayLabel(), thesaurus);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<EdgeId> PathIndex::EdgesMatching(
    const Term& term, const Thesaurus* thesaurus) const {
  std::vector<uint64_t> raw =
      edge_index_.LookupSemantic(term.DisplayLabel(), thesaurus);
  return std::vector<EdgeId>(raw.begin(), raw.end());
}

Status PathIndex::IndexOnePath(const Path& p) {
  const TermDictionary& dict = graph_->dict();
  auto id_or = store_.Put(p);
  if (!id_or.ok()) return id_or.status();
  PathId id = *id_or;
  by_sink_[p.sink_label()].push_back(id);
  sink_index_.Add(dict.term(p.sink_label()).DisplayLabel(), id);
  for (TermId label : p.node_labels) {
    content_index_.Add(dict.term(label).DisplayLabel(), id);
  }
  for (TermId label : p.edge_labels) {
    content_index_.Add(dict.term(label).DisplayLabel(), id);
  }
  return Status::Ok();
}

void PathIndex::TombstonePath(PathId id, const Path& p) {
  deleted_paths_.insert(id);
  auto it = by_sink_.find(p.sink_label());
  if (it != by_sink_.end()) {
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_sink_.erase(it);
  }
  // The inverted postings keep the stale id; FilterDeleted screens it
  // out at lookup time.
}

std::vector<PathId> PathIndex::FilterDeleted(
    std::vector<uint64_t> ids) const {
  if (deleted_paths_.empty()) return ids;
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [this](uint64_t id) {
                             return deleted_paths_.count(id) > 0;
                           }),
            ids.end());
  return ids;
}

namespace {

// Reverse simple paths from `end` back to the graph's sources; each
// emitted prefix runs source→...→end (inclusive). Emits an empty-prefix
// marker (just {end}) when `end` itself has no incoming edges.
void CollectPrefixes(const DataGraph& graph, NodeId end, size_t max_length,
                     std::vector<Path>* out) {
  std::vector<NodeId> stack{end};
  std::vector<TermId> edge_stack;
  std::vector<bool> on_path(graph.node_count(), false);
  on_path[end] = true;

  // Recursive walk over in-edges.
  std::function<void()> walk = [&] {
    NodeId node = stack.back();
    if (graph.in_degree(node) == 0) {
      // Reached a source: materialise the reversed walk.
      Path p;
      p.nodes.assign(stack.rbegin(), stack.rend());
      for (NodeId n : p.nodes) p.node_labels.push_back(graph.node_label(n));
      p.edge_labels.assign(edge_stack.rbegin(), edge_stack.rend());
      out->push_back(std::move(p));
      return;
    }
    if (max_length != 0 && stack.size() >= max_length) return;
    for (EdgeId e : graph.in_edges(node)) {
      const DataGraph::Edge& edge = graph.edge(e);
      if (on_path[edge.from]) continue;
      stack.push_back(edge.from);
      edge_stack.push_back(edge.label);
      on_path[edge.from] = true;
      walk();
      on_path[edge.from] = false;
      edge_stack.pop_back();
      stack.pop_back();
    }
  };
  walk();
}

// Forward simple paths from `start` to sinks, start inclusive. Emits a
// single-node path when `start` is itself a sink.
void CollectSuffixes(const DataGraph& graph, NodeId start,
                     size_t max_length, std::vector<Path>* out) {
  if (graph.out_degree(start) == 0) {
    Path p;
    p.nodes = {start};
    p.node_labels = {graph.node_label(start)};
    out->push_back(std::move(p));
    return;
  }
  EnumeratePathsFrom(graph, start,
                     PathEnumeratorOptions{0, max_length, false},
                     [out](const Path& p) {
                       out->push_back(p);
                       return true;
                     });
}

}  // namespace

Status PathIndex::AddTriple(DataGraph* graph, const Triple& triple) {
  if (graph != graph_) {
    return Status::InvalidArgument(
        "AddTriple must receive the graph the index was built over");
  }
  size_t nodes_before = graph->node_count();
  size_t edges_before = graph->edge_count();
  NodeId s = graph->AddNode(triple.subject);
  NodeId o = graph->AddNode(triple.object);
  bool s_was_sink =
      s < nodes_before && graph->out_degree(s) == 0 && graph->in_degree(s) > 0;
  bool o_was_source =
      o < nodes_before && graph->in_degree(o) == 0 && graph->out_degree(o) > 0;
  graph->AddEdge(s, o, triple.predicate);
  if (graph->edge_count() == edges_before) return Status::Ok();  // Duplicate.
  EdgeId new_edge = static_cast<EdgeId>(graph->edge_count() - 1);
  update_journal_.push_back(triple);

  // Element-to-element mapping for the new elements.
  for (NodeId n = static_cast<NodeId>(nodes_before);
       n < graph->node_count(); ++n) {
    node_index_.Add(graph->node_term(n).DisplayLabel(), n);
    if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
      auto v = hypergraph_.AddVertex(graph->node_term(n).DisplayLabel());
      if (!v.ok()) return v.status();
    }
  }
  edge_index_.Add(graph->edge_term(new_edge).DisplayLabel(), new_edge);
  if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
    auto he = hypergraph_.AddHyperedge({s, o});
    if (!he.ok()) return he.status();
  }

  // Tombstone paths invalidated by the new edge.
  if (s_was_sink) {
    // Paths used to end at s; they now continue through the new edge.
    std::vector<PathId> stale = by_sink_[graph->node_label(s)];
    for (PathId id : stale) {
      Path p;
      SAMA_RETURN_IF_ERROR(store_.Get(id, &p));
      if (p.nodes.back() == s) TombstonePath(id, p);
    }
  }
  if (o_was_source) {
    // Paths used to start at o; the prefixes now reach further back.
    std::vector<uint64_t> candidates = content_index_.LookupSemantic(
        graph->node_term(o).DisplayLabel(), nullptr);
    for (uint64_t id : FilterDeleted(std::move(candidates))) {
      Path p;
      SAMA_RETURN_IF_ERROR(store_.Get(id, &p));
      if (!p.nodes.empty() && p.nodes.front() == o) TombstonePath(id, p);
    }
  }

  // New paths: every (source→…→s) prefix composed with the new edge and
  // every (o→…→sink) suffix, keeping the result a simple path.
  std::vector<Path> prefixes, suffixes;
  CollectPrefixes(*graph, s, options_.enumerate.max_length, &prefixes);
  CollectSuffixes(*graph, o, options_.enumerate.max_length, &suffixes);
  TermId edge_label = graph->edge(new_edge).label;
  size_t added = 0;
  for (const Path& prefix : prefixes) {
    for (const Path& suffix : suffixes) {
      // Simple-path check: prefix and suffix must not share nodes.
      bool disjoint = true;
      for (NodeId a : prefix.nodes) {
        for (NodeId b : suffix.nodes) {
          if (a == b) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
      }
      if (!disjoint) continue;
      Path combined;
      combined.nodes = prefix.nodes;
      combined.nodes.insert(combined.nodes.end(), suffix.nodes.begin(),
                            suffix.nodes.end());
      combined.node_labels = prefix.node_labels;
      combined.node_labels.insert(combined.node_labels.end(),
                                  suffix.node_labels.begin(),
                                  suffix.node_labels.end());
      combined.edge_labels = prefix.edge_labels;
      combined.edge_labels.push_back(edge_label);
      combined.edge_labels.insert(combined.edge_labels.end(),
                                  suffix.edge_labels.begin(),
                                  suffix.edge_labels.end());
      if (options_.enumerate.max_length != 0 &&
          combined.length() > options_.enumerate.max_length) {
        continue;
      }
      PathId id = store_.path_count();
      SAMA_RETURN_IF_ERROR(IndexOnePath(combined));
      ++added;
      if (options_.build_hypergraph && hypergraph_.vertex_count() > 0) {
        std::vector<VertexId> members(combined.nodes.begin(),
                                      combined.nodes.end());
        auto he = hypergraph_.AddHyperedge(members);
        if (!he.ok()) return he.status();
      }
      (void)id;
    }
  }
  node_index_.Finish();
  edge_index_.Finish();
  sink_index_.Finish();
  content_index_.Finish();
  // Candidate lists changed (tombstones + new paths), so memoized
  // lookups are stale; the posting memos were dropped by the Add()
  // calls above. The record cache is safe to keep — ids are immutable
  // and tombstones are screened before it.
  if (lookup_cache_) lookup_cache_->Clear();

  sources_ = graph->Sources();
  sinks_ = graph->Sinks();
  stats_.num_triples = graph->edge_count();
  stats_.num_paths = live_path_count();
  stats_.hv = hypergraph_.vertex_count();
  stats_.he = hypergraph_.hyperedge_count();
  (void)added;
  return Status::Ok();
}

Status PathIndex::Checkpoint() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument(
        "Checkpoint requires a disk-backed index (options.dir)");
  }
  SAMA_RETURN_IF_ERROR(store_.Flush());
  SAMA_RETURN_IF_ERROR(hypergraph_.Flush());
  return SaveMetadata(options_.dir);
}

Status PathIndex::DropCaches() {
  DropQueryCaches();
  SAMA_RETURN_IF_ERROR(store_.DropCaches());
  return hypergraph_.DropCaches();
}

}  // namespace sama

#include "index/index_verify.h"

#include "index/path_index.h"
#include "storage/manifest.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace sama {
namespace {

// Reads `path` page by page through `env`, recomputing every checksum.
VerifyReport::FileReport ScanPageFile(const std::string& dir,
                                      const std::string& name, Env* env) {
  VerifyReport::FileReport report;
  report.name = name;
  std::string path = dir + "/" + name;
  if (!env->FileExists(path)) return report;
  report.present = true;

  auto fd = env->OpenFile(path, /*truncate=*/false);
  if (!fd.ok()) {
    report.errors.push_back(fd.status().ToString());
    return report;
  }
  auto size = env->FileSizeFd(*fd, path);
  if (!size.ok()) {
    report.errors.push_back(size.status().ToString());
    (void)env->CloseFile(*fd, path);
    return report;
  }
  if (*size % kPageSize != 0) {
    report.errors.push_back("file size " + std::to_string(*size) +
                            " is not a multiple of " +
                            std::to_string(kPageSize) + " (truncated tail)");
  }
  uint64_t pages = *size / kPageSize;
  uint8_t page[kPageSize];
  for (uint64_t id = 0; id < pages; ++id) {
    auto got = env->PRead(*fd, path, id * kPageSize, page, kPageSize);
    if (!got.ok()) {
      report.errors.push_back("page " + std::to_string(id) + ": " +
                              got.status().ToString());
      continue;
    }
    if (*got != kPageSize) {
      report.errors.push_back("page " + std::to_string(id) +
                              ": short read, got " + std::to_string(*got) +
                              " of " + std::to_string(kPageSize) + " bytes");
      continue;
    }
    Status s = VerifyPageBytes(page, static_cast<PageId>(id), path);
    if (!s.ok()) report.errors.push_back(s.ToString());
    ++report.pages_scanned;
  }
  (void)env->CloseFile(*fd, path);
  return report;
}

VerifyReport::FileReport ScanIdManifest(const std::string& dir,
                                        const std::string& name, Env* env) {
  VerifyReport::FileReport report;
  report.name = name;
  std::string path = dir + "/" + name;
  if (!env->FileExists(path)) return report;
  report.present = true;
  auto ids = ReadIdManifest(path, env);
  if (!ids.ok()) report.errors.push_back(ids.status().ToString());
  return report;
}

}  // namespace

std::string VerifyReport::ToString() const {
  std::string out;
  out += committed ? "index: committed\n"
                   : "index: NOT COMMITTED (no valid index.meta)\n";
  if (partial_build) {
    out += "note: leftover build.tmp from a crashed build (discarded on "
           "next open)\n";
  }
  for (const FileReport& f : files) {
    if (!f.present) {
      out += "  " + f.name + ": absent\n";
      continue;
    }
    out += "  " + f.name + ": ";
    if (f.pages_scanned > 0 || f.errors.empty()) {
      const char* unit =
          f.name.rfind("wal/", 0) == 0 ? " records scanned, " : " pages scanned, ";
      out += std::to_string(f.pages_scanned) + unit;
    }
    out += std::to_string(f.errors.size()) + " error(s)\n";
    for (const std::string& e : f.errors) out += "    " + e + "\n";
  }
  out += clean() ? "verdict: CLEAN\n" : "verdict: DAMAGED\n";
  return out;
}

Result<VerifyReport> VerifyIndexDir(const std::string& dir, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(dir)) {
    return Status::NotFound("index directory '" + dir + "' does not exist");
  }
  VerifyReport report;
  report.partial_build = env->FileExists(dir + "/build.tmp");

  report.files.push_back(ScanPageFile(dir, "paths.dat", env));
  report.files.push_back(ScanIdManifest(dir, "paths.dat.manifest", env));
  report.files.push_back(ScanPageFile(dir, "hypergraph.dat", env));
  report.files.push_back(
      ScanIdManifest(dir, "hypergraph.dat.vertices", env));
  report.files.push_back(
      ScanIdManifest(dir, "hypergraph.dat.hyperedges", env));

  VerifyReport::FileReport meta;
  meta.name = "index.meta";
  std::string meta_path = dir + "/index.meta";
  if (env->FileExists(meta_path)) {
    meta.present = true;
    auto blob = ReadBlobFile(meta_path, env);
    if (blob.ok()) {
      report.committed = true;
    } else {
      meta.errors.push_back(blob.status().ToString());
    }
  }
  report.files.push_back(std::move(meta));

  // WAL segments (dir/wal): per-record CRCs, dense LSNs within and
  // across segments, and consistency with the checkpoint — the oldest
  // retained segment must start at or before applied_lsn + 1, else
  // records recovery needs are gone. A torn tail is legal only on the
  // last segment (the next open truncates it); ScanDir reports it as an
  // error anywhere else.
  std::string wal_dir = dir + "/wal";
  if (env->FileExists(wal_dir)) {
    auto segments = Wal::ScanDir(wal_dir, env);
    if (!segments.ok()) {
      VerifyReport::FileReport wal;
      wal.name = "wal";
      wal.present = true;
      wal.errors.push_back(segments.status().ToString());
      report.files.push_back(std::move(wal));
    } else if (!segments->empty()) {
      uint64_t checkpoint_lsn = 0;
      bool have_checkpoint = false;
      auto lsn = PathIndex::ReadCheckpointLsn(dir, env);
      if (lsn.ok()) {
        checkpoint_lsn = *lsn;
        have_checkpoint = true;
      }
      for (size_t i = 0; i < segments->size(); ++i) {
        const Wal::SegmentScan& seg = (*segments)[i];
        VerifyReport::FileReport f;
        f.name = "wal/" + seg.name;
        f.present = true;
        f.pages_scanned = seg.records;
        f.errors = seg.errors;
        if (i == 0 && have_checkpoint &&
            seg.first_lsn > checkpoint_lsn + 1) {
          f.errors.push_back(
              "oldest segment starts at lsn " +
              std::to_string(seg.first_lsn) + " but the checkpoint covers " +
              std::to_string(checkpoint_lsn) +
              " — records recovery needs were deleted");
        }
        if (seg.torn_tail && i + 1 == segments->size()) {
          f.errors.push_back(
              "torn tail after " + std::to_string(seg.valid_bytes) +
              " valid bytes (will be truncated, never applied, on the "
              "next open)");
        }
        report.files.push_back(std::move(f));
      }
    }
  }
  return report;
}

}  // namespace sama

#include "shard/partition.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace sama {

namespace {

// Union-find with path halving; components of the live-edge graph.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Smaller root wins so representatives are deterministic.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

GraphPartition PartitionGraph(const DataGraph& graph, size_t num_shards) {
  GraphPartition out;
  out.num_shards = std::max<size_t>(1, num_shards);
  const size_t n = graph.node_count();
  out.shard_of_node.assign(n, 0);
  out.shard_weights.assign(out.num_shards, 0);
  if (n == 0) return out;

  // Level 1: weak components over live edges.
  UnionFind uf(n);
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    if (!graph.edge_live(e)) continue;
    uf.Union(graph.edge(e).from, graph.edge(e).to);
  }
  // Component weight = nodes + live out-edges (each live edge counted
  // once, at its source).
  struct Component {
    NodeId root;  // Smallest node id in the component.
    uint64_t weight = 0;
    std::vector<NodeId> nodes;  // Ascending node id.
  };
  std::vector<size_t> comp_of(n);
  std::vector<Component> comps;
  {
    std::vector<size_t> comp_index(n, n);
    for (NodeId v = 0; v < n; ++v) {
      size_t root = uf.Find(v);
      if (comp_index[root] == n) {
        comp_index[root] = comps.size();
        comps.push_back(Component{static_cast<NodeId>(v), 0, {}});
      }
      size_t c = comp_index[root];
      comp_of[v] = c;
      comps[c].nodes.push_back(v);
      uint64_t live_out = 0;
      for (EdgeId e : graph.out_edges(v)) {
        if (graph.edge_live(e)) ++live_out;
      }
      comps[c].weight += 1 + live_out;
    }
  }
  out.num_components = comps.size();

  uint64_t total_weight = 0;
  for (const Component& c : comps) total_weight += c.weight;
  const uint64_t target =
      (total_weight + out.num_shards - 1) / out.num_shards;

  // Heaviest first; ties broken on the smaller root id so the order is
  // a pure function of the graph.
  std::vector<size_t> by_weight(comps.size());
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(), [&](size_t a, size_t b) {
    if (comps[a].weight != comps[b].weight) {
      return comps[a].weight > comps[b].weight;
    }
    return comps[a].root < comps[b].root;
  });

  auto least_loaded = [&]() {
    size_t best = 0;
    for (size_t s = 1; s < out.num_shards; ++s) {
      if (out.shard_weights[s] < out.shard_weights[best]) best = s;
    }
    return best;
  };
  auto node_weight = [&](NodeId v) {
    uint64_t live_out = 0;
    for (EdgeId e : graph.out_edges(v)) {
      if (graph.edge_live(e)) ++live_out;
    }
    return 1 + live_out;
  };

  for (size_t ci : by_weight) {
    const Component& comp = comps[ci];
    if (comp.weight <= target || out.num_shards == 1) {
      // Level 1: the whole component rides one shard.
      size_t s = least_loaded();
      for (NodeId v : comp.nodes) {
        out.shard_of_node[v] = static_cast<uint32_t>(s);
      }
      out.shard_weights[s] += comp.weight;
      continue;
    }
    // Level 2: split along BFS discovery order from the smallest node,
    // neighbours visited in edge-id order (out, then in) — fully
    // deterministic, and BFS-contiguous regions keep the cut low.
    std::vector<uint8_t> seen(n, 0);
    std::deque<NodeId> frontier;
    frontier.push_back(comp.root);
    seen[comp.root] = 1;
    size_t current = least_loaded();
    uint64_t region = 0;
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop_front();
      if (region >= target) {
        // Close the region; the next one goes to the then-least-loaded
        // shard (which can be the same one when others carry more).
        current = least_loaded();
        region = 0;
      }
      out.shard_of_node[v] = static_cast<uint32_t>(current);
      uint64_t w = node_weight(v);
      out.shard_weights[current] += w;
      region += w;
      for (EdgeId e : graph.out_edges(v)) {
        if (!graph.edge_live(e)) continue;
        NodeId t = graph.edge(e).to;
        if (!seen[t]) {
          seen[t] = 1;
          frontier.push_back(t);
        }
      }
      for (EdgeId e : graph.in_edges(v)) {
        if (!graph.edge_live(e)) continue;
        NodeId f = graph.edge(e).from;
        if (!seen[f]) {
          seen[f] = 1;
          frontier.push_back(f);
        }
      }
    }
  }

  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    if (!graph.edge_live(e)) continue;
    if (out.shard_of_node[graph.edge(e).from] !=
        out.shard_of_node[graph.edge(e).to]) {
      ++out.cut_edges;
    }
  }
  return out;
}

}  // namespace sama

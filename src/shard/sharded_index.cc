#include "shard/sharded_index.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "storage/coding.h"
#include "storage/manifest.h"

namespace sama {

namespace {

constexpr char kMetaFile[] = "sharding.meta";
constexpr char kShardMapFile[] = "shard.map";
// 'S','H','A','R','D',version — both sidecars share the magic and bump
// the trailing byte together.
constexpr uint64_t kSidecarMagic = 0x5348415244ull << 8 | 1;

std::string ShardDir(const std::string& base_dir, size_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", s);
  return base_dir + "/" + buf;
}

// sharding.meta payload: magic, num_shards, fingerprint, total_paths,
// num_components, cut_edges, then one path count per shard.
std::vector<uint8_t> EncodeMeta(const GraphPartition& partition,
                                uint64_t fingerprint, uint64_t total_paths,
                                const std::vector<uint64_t>& shard_paths) {
  std::vector<uint8_t> blob;
  PutVarint64(&blob, kSidecarMagic);
  PutVarint64(&blob, partition.num_shards);
  PutVarint64(&blob, fingerprint);
  PutVarint64(&blob, total_paths);
  PutVarint64(&blob, partition.num_components);
  PutVarint64(&blob, partition.cut_edges);
  for (uint64_t c : shard_paths) PutVarint64(&blob, c);
  return blob;
}

// shard.map payload: magic, num_shards, shard_id, fingerprint, count,
// then the global ids delta-coded (first id, then gaps). The ids of one
// shard are strictly increasing — prefix-sum construction — so every
// gap is >= 1 and encoded as gap - 1.
std::vector<uint8_t> EncodeShardMap(size_t num_shards, size_t shard_id,
                                    uint64_t fingerprint,
                                    const std::vector<PathId>& global_ids) {
  std::vector<uint8_t> blob;
  PutVarint64(&blob, kSidecarMagic);
  PutVarint64(&blob, num_shards);
  PutVarint64(&blob, shard_id);
  PutVarint64(&blob, fingerprint);
  PutVarint64(&blob, global_ids.size());
  PathId prev = 0;
  for (size_t i = 0; i < global_ids.size(); ++i) {
    if (i == 0) {
      PutVarint64(&blob, global_ids[0]);
    } else {
      PutVarint64(&blob, global_ids[i] - prev - 1);
    }
    prev = global_ids[i];
  }
  return blob;
}

Status DecodeShardMap(const std::vector<uint8_t>& blob, size_t num_shards,
                      size_t shard_id, uint64_t fingerprint,
                      std::vector<PathId>* out) {
  size_t pos = 0;
  uint64_t magic = 0, shards = 0, sid = 0, fp = 0, count = 0;
  if (!GetVarint64(blob, &pos, &magic) || magic != kSidecarMagic) {
    return Status::Corruption("shard.map: bad magic");
  }
  if (!GetVarint64(blob, &pos, &shards) || shards != num_shards ||
      !GetVarint64(blob, &pos, &sid) || sid != shard_id) {
    return Status::Corruption("shard.map: wrong shard identity");
  }
  if (!GetVarint64(blob, &pos, &fp) || fp != fingerprint) {
    return Status::Corruption("shard.map: graph fingerprint mismatch");
  }
  if (!GetVarint64(blob, &pos, &count)) {
    return Status::Corruption("shard.map: truncated count");
  }
  out->clear();
  out->reserve(count);
  PathId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    if (!GetVarint64(blob, &pos, &v)) {
      return Status::Corruption("shard.map: truncated id list");
    }
    PathId id = i == 0 ? v : prev + v + 1;
    out->push_back(id);
    prev = id;
  }
  if (pos != blob.size()) {
    return Status::Corruption("shard.map: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Status BuildShardedIndex(const DataGraph& graph, const std::string& base_dir,
                         const ShardedIndexOptions& options,
                         ShardBuildReport* report) {
  if (base_dir.empty()) {
    return Status::InvalidArgument("BuildShardedIndex: base_dir required");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("BuildShardedIndex: num_shards must be >= 1");
  }
  if (options.enumerate.max_paths != 0) {
    return Status::InvalidArgument(
        "BuildShardedIndex: enumerate.max_paths must be 0 (a global "
        "truncation cap has no coherent per-shard restriction)");
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();
  SAMA_RETURN_IF_ERROR(env->CreateDir(base_dir));

  const GraphPartition partition = PartitionGraph(graph, options.num_shards);
  const uint64_t fingerprint = PathIndex::GraphFingerprint(graph);
  const std::vector<NodeId> starts = graph.StartNodes();

  // Per-shard filtered builds, one at a time (each build parallelises
  // internally with options.num_threads). The per-start counts each
  // build reports are the raw material of the global id space.
  std::vector<std::vector<std::pair<NodeId, uint64_t>>> counts(
      partition.num_shards);
  std::vector<uint64_t> shard_paths(partition.num_shards, 0);
  std::vector<uint8_t> mask(graph.node_count(), 0);
  for (size_t s = 0; s < partition.num_shards; ++s) {
    mask.assign(graph.node_count(), 0);
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      if (partition.shard_of_node[v] == s) mask[v] = 1;
    }
    PathIndexOptions pio;
    pio.dir = ShardDir(base_dir, s);
    pio.buffer_pool_pages = options.buffer_pool_pages;
    pio.compress_paths = options.compress_paths;
    pio.num_threads = options.num_threads;
    pio.enumerate = options.enumerate;
    pio.build_hypergraph = options.build_hypergraph;
    pio.env = env;
    pio.start_mask = &mask;
    pio.per_start_counts = &counts[s];
    PathIndex index;
    SAMA_RETURN_IF_ERROR(index.Build(graph, pio));
    shard_paths[s] = index.path_count();
  }

  // Global ids: walk the UNFILTERED start order; each start's paths are
  // the next contiguous block, owned by the start's shard. The counts
  // come from the shard builds themselves, so the assembled space is
  // exactly the single-index enumeration.
  std::vector<std::vector<PathId>> global_ids(partition.num_shards);
  std::vector<size_t> cursor(partition.num_shards, 0);
  uint64_t next_global = 0;
  for (NodeId start : starts) {
    const size_t s = partition.ShardOfNode(start);
    std::vector<std::pair<NodeId, uint64_t>>& shard_counts = counts[s];
    if (cursor[s] >= shard_counts.size() ||
        shard_counts[cursor[s]].first != start) {
      return Status::Internal(
          "BuildShardedIndex: per-start counts out of sync with the "
          "unfiltered start order");
    }
    const uint64_t n = shard_counts[cursor[s]++].second;
    for (uint64_t i = 0; i < n; ++i) {
      global_ids[s].push_back(next_global++);
    }
  }
  for (size_t s = 0; s < partition.num_shards; ++s) {
    if (cursor[s] != counts[s].size() ||
        global_ids[s].size() != shard_paths[s]) {
      return Status::Internal(
          "BuildShardedIndex: shard path count disagrees with its "
          "per-start counts");
    }
  }

  for (size_t s = 0; s < partition.num_shards; ++s) {
    SAMA_RETURN_IF_ERROR(
        WriteBlobFile(ShardDir(base_dir, s) + "/" + kShardMapFile,
                      EncodeShardMap(partition.num_shards, s, fingerprint,
                                     global_ids[s]),
                      env));
  }
  // The meta write is the commit point: without it Open reports
  // kNotFound and a half-finished build is invisible.
  SAMA_RETURN_IF_ERROR(WriteBlobFile(
      base_dir + "/" + kMetaFile,
      EncodeMeta(partition, fingerprint, next_global, shard_paths), env));

  if (report != nullptr) {
    report->num_shards = partition.num_shards;
    report->num_components = partition.num_components;
    report->cut_edges = partition.cut_edges;
    report->total_paths = next_global;
    report->shard_paths = shard_paths;
  }
  return Status::Ok();
}

bool IsShardedIndexDir(const std::string& base_dir, Env* env) {
  if (base_dir.empty()) return false;
  Env* e = env != nullptr ? env : Env::Default();
  return e->FileExists(base_dir + "/" + kMetaFile);
}

Status ShardedIndex::Open(const DataGraph* graph, const std::string& base_dir,
                          bool strict, size_t buffer_pool_pages, Env* env) {
  if (graph == nullptr || base_dir.empty()) {
    return Status::InvalidArgument("ShardedIndex::Open: graph and base_dir required");
  }
  Env* e = env != nullptr ? env : Env::Default();
  if (!e->FileExists(base_dir + "/" + kMetaFile)) {
    return Status::NotFound("no committed sharded index at " + base_dir);
  }
  SAMA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                        ReadBlobFile(base_dir + "/" + kMetaFile, e));
  size_t pos = 0;
  uint64_t magic = 0, num_shards = 0;
  uint64_t num_components = 0, cut_edges = 0;
  if (!GetVarint64(blob, &pos, &magic) || magic != kSidecarMagic ||
      !GetVarint64(blob, &pos, &num_shards) || num_shards == 0 ||
      !GetVarint64(blob, &pos, &fingerprint_) ||
      !GetVarint64(blob, &pos, &total_paths_) ||
      !GetVarint64(blob, &pos, &num_components) ||
      !GetVarint64(blob, &pos, &cut_edges)) {
    return Status::Corruption("sharding.meta: malformed header");
  }
  num_components_ = num_components;
  cut_edges_ = cut_edges;
  std::vector<uint64_t> shard_paths(num_shards, 0);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!GetVarint64(blob, &pos, &shard_paths[s])) {
      return Status::Corruption("sharding.meta: truncated shard counts");
    }
  }
  const uint64_t expected = PathIndex::GraphFingerprint(*graph);
  if (fingerprint_ != expected) {
    return Status::InvalidArgument(
        "ShardedIndex::Open: graph fingerprint mismatch (index built over "
        "a different graph)");
  }

  shards_.clear();
  shards_.resize(num_shards);
  degraded_count_ = 0;
  owner_of_.assign(total_paths_, static_cast<uint32_t>(num_shards));
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string dir = ShardDir(base_dir, s);
    auto degrade = [&](const Status& why) -> Status {
      if (strict) {
        return Status::Corruption("shard " + std::to_string(s) +
                                  " unusable: " + why.message());
      }
      shards_[s].index.reset();
      shards_[s].global_ids.clear();
      ++degraded_count_;
      return Status::Ok();
    };
    auto index = std::make_unique<PathIndex>();
    PathIndexOptions pio;
    pio.dir = dir;
    pio.buffer_pool_pages = buffer_pool_pages;
    // Shard builds skip the hypergraph store by default
    // (ShardedIndexOptions::build_hypergraph); probe rather than guess
    // so both build flavours reopen.
    pio.build_hypergraph = e->FileExists(dir + "/hypergraph.dat");
    pio.env = e;
    // PathIndex::Open replays the shard's update journal into the
    // graph; sharded shards are read-only so the journal is empty and
    // the graph stays byte-identical across the N opens.
    Status st = index->Open(const_cast<DataGraph*>(graph), pio);
    if (!st.ok()) {
      SAMA_RETURN_IF_ERROR(degrade(st));
      continue;
    }
    std::vector<PathId> ids;
    auto map_or = ReadBlobFile(dir + "/" + kShardMapFile, e);
    st = map_or.ok() ? DecodeShardMap(map_or.value(), num_shards, s,
                                      fingerprint_, &ids)
                     : map_or.status();
    if (st.ok() && ids.size() != index->path_count()) {
      st = Status::Corruption("shard.map id count disagrees with the shard "
                              "index path count");
    }
    if (st.ok() && ids.size() != shard_paths[s]) {
      st = Status::Corruption("shard.map id count disagrees with sharding.meta");
    }
    if (!st.ok()) {
      SAMA_RETURN_IF_ERROR(degrade(st));
      continue;
    }
    for (PathId g : ids) {
      if (g >= total_paths_ ||
          owner_of_[g] != static_cast<uint32_t>(num_shards)) {
        return Status::Corruption("shard.map: global id " + std::to_string(g) +
                                  " out of range or doubly owned");
      }
      owner_of_[g] = static_cast<uint32_t>(s);
    }
    shards_[s].index = std::move(index);
    shards_[s].global_ids = std::move(ids);
  }
  if (degraded_count_ == num_shards) {
    return Status::Corruption("ShardedIndex::Open: every shard is damaged");
  }
  return Status::Ok();
}

}  // namespace sama

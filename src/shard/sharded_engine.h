#ifndef SAMA_SHARD_SHARDED_ENGINE_H_
#define SAMA_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "shard/sharded_index.h"

namespace sama {

struct ShardInstruments;

// In-process scatter-gather execution over a ShardedIndex (DESIGN.md
// §14, ROADMAP item 4). One coordinator owns the thread pool; each
// shard is an ordinary SamaEngine over its shard's PathIndex.
//
// A query runs in three phases:
//   scatter — every live shard clusters the query against its own
//     index (concurrently when the coordinator has a pool); local path
//     ids are rewritten to the global id space.
//   search  — the per-shard cluster lists merge into the exact
//     single-index candidate lists (same (λ, id) order, same per-
//     cluster cap), and each live shard runs a forest search over the
//     MERGED clusters restricted — via ForestSearchOptions::root_filter
//     — to subtrees rooted at the paths it owns. Searches run
//     sequentially shard 0..N-1 (each one parallelises its waves on
//     the coordinator pool) and exchange their k-th-best scores
//     through one fresh SharedScoreBound, so a later shard prunes with
//     the bound an earlier shard proved.
//   gather  — shard answers merge by (score, enumeration key) and the
//     engine's dedup/top-k rule replays over them.
//
// The root slices partition the single-engine enumeration, the shared
// bound only prunes strictly-worse-than-θ* work, and the gather key
// reproduces enumeration order — so answers (scores AND tie-break
// order) are byte-identical to a single-index SamaEngine run with the
// same options, for any shard count and thread count. The one carve-
// out is the anytime budget: each shard spends its own max_expansions/
// deadline, so a run the single engine would TRUNCATE may explore
// differently here (search_truncated reports it either way).
//
// Degraded shards (ShardedIndex::Open non-strict) are simply absent:
// their paths never enter the merged clusters, the remaining shards
// still answer deterministically, and the loss is visible in
// QueryStats::shards_degraded and the sama_shard_degraded gauge.
//
// Sharded indexes are read-only — there is no EnableUpdates here;
// rebuild to change the data (the replication transport of ROADMAP
// item 3 is the intended delivery path for shard refresh).
class ShardedEngine {
 public:
  // All pointers borrowed; must outlive the engine. `index` must be
  // ShardedIndex::Open()ed over `graph`.
  ShardedEngine(const DataGraph* graph, const ShardedIndex* index,
                const Thesaurus* thesaurus, EngineOptions options = {});
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Same contracts as SamaEngine::ExecuteSparql / Execute.
  Result<std::vector<Answer>> ExecuteSparql(const SparqlQuery& query,
                                            size_t k = 0,
                                            QueryStats* stats = nullptr) const;
  Result<std::vector<Answer>> Execute(const QueryGraph& query, size_t k,
                                      QueryStats* stats = nullptr) const;

  // Per-request execution context for servers. SamaEngine's per-request
  // idiom is "copy the engine, tweak the copy" — this engine is
  // non-copyable (it owns the per-shard engines), so request-scoped
  // settings ride in explicitly instead (DESIGN.md §15).
  struct RequestObs {
    // Append this query's spans into an existing trace, parented under
    // adopt_parent (the server's request span). The scatter/per-shard
    // search/merge spans then land in the propagated trace tree, each
    // shard span carrying a "shard" attribute.
    std::shared_ptr<QueryTrace> adopt_trace;
    uint64_t adopt_parent = 0;
    // When set, replaces options().search as the base search options —
    // the hook for per-request deadlines.
    const ForestSearchOptions* search_override = nullptr;
  };
  Result<std::vector<Answer>> ExecuteSparqlTraced(const SparqlQuery& query,
                                                  size_t k,
                                                  const RequestObs& robs,
                                                  QueryStats* stats) const;

  QueryGraph BuildQueryGraph(const std::vector<Triple>& patterns) const {
    return QueryGraph::FromPatterns(patterns, graph_->shared_dict());
  }

  const EngineOptions& options() const { return options_; }
  const ShardedIndex& index() const { return *index_; }
  size_t num_shards() const { return index_->num_shards(); }
  size_t threads_used() const {
    return pool_ == nullptr ? 1 : pool_->worker_count() + 1;
  }
  // The per-shard engine, for tests; null when the shard is degraded.
  const SamaEngine* shard_engine(size_t s) const {
    return engines_[s].get();
  }

  // The retained-profile ring (ObsOptions::profile); null otherwise.
  const ProfileLog* profile_log() const { return profile_log_.get(); }

 private:
  Result<std::vector<Answer>> ExecuteWith(const QueryGraph& query, size_t k,
                                          const ForestSearchOptions& search,
                                          const RequestObs& robs,
                                          QueryStats* stats) const;

  const DataGraph* graph_;
  const ShardedIndex* index_;
  const Thesaurus* thesaurus_;
  EngineOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<SamaEngine>> engines_;  // Null = degraded.
  std::shared_ptr<ShardInstruments> instruments_;
  std::shared_ptr<ProfileLog> profile_log_;
};

}  // namespace sama

#endif  // SAMA_SHARD_SHARDED_ENGINE_H_

#ifndef SAMA_SHARD_PARTITION_H_
#define SAMA_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/data_graph.h"

namespace sama {

// The edge-cut partition behind sharded index builds (DESIGN.md §14),
// generalizing the DOGMA baseline's partition step: DOGMA cuts the
// graph into balanced low-cut blocks for index locality; here the
// blocks additionally fix PATH ownership — a path belongs to the shard
// owning its start node — so the per-shard path sets are disjoint and
// their union is exactly the unfiltered enumeration.
//
// Two levels, both deterministic:
//  1. Weak connected components over the live edges. Whole components
//     pack onto shards LPT-style (heaviest component first to the
//     least-loaded shard; ties: smaller min node id, lower shard
//     ordinal), so a naturally disconnected graph partitions with an
//     edge cut of exactly zero.
//  2. A component too heavy for the balance target is split along its
//     BFS discovery order (from its smallest node id, neighbours in
//     edge-id order): contiguous BFS regions of ~target weight go to
//     the least-loaded shard in turn. BFS contiguity keeps the cut low
//     without a full min-cut solver.
//
// Correctness of sharded search does NOT depend on partition quality —
// any assignment of start nodes yields byte-identical answers (the
// gather replays the single-engine enumeration). Quality only moves
// locality, balance and the reported cut.
struct GraphPartition {
  size_t num_shards = 0;
  // Shard of every node (size graph.node_count()); nodes of a split
  // component follow their BFS region.
  std::vector<uint32_t> shard_of_node;
  // Per-shard total weight (nodes + live edges assigned).
  std::vector<uint64_t> shard_weights;
  size_t num_components = 0;  // Weak components over live edges.
  // Live edges whose endpoints landed on different shards; 0 whenever
  // no component had to be split.
  uint64_t cut_edges = 0;

  uint32_t ShardOfNode(NodeId n) const {
    return n < shard_of_node.size() ? shard_of_node[n] : 0;
  }
};

// Partitions `graph` into `num_shards` blocks (clamped to >= 1).
GraphPartition PartitionGraph(const DataGraph& graph, size_t num_shards);

}  // namespace sama

#endif  // SAMA_SHARD_PARTITION_H_

#ifndef SAMA_SHARD_SHARDED_INDEX_H_
#define SAMA_SHARD_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "shard/partition.h"

namespace sama {

// A sharded index is N ordinary PathIndex directories under one base
// dir (base/shard-0000, base/shard-0001, ...), each built over the
// FULL graph but enumerating only the paths whose start node the shard
// owns (PartitionGraph), plus two sidecars:
//
//   base/sharding.meta   — shard count, graph fingerprint, partition
//                          stats, per-shard path counts.
//   shard-NNNN/shard.map — the shard's local→global PathId map
//                          (delta-coded; strictly increasing).
//
// Global ids are the positions the shard's paths occupy in the
// UNFILTERED single-index enumeration: every start is owned by exactly
// one shard, per-start emission order is identical filtered or not, so
// prefix sums of the per-start path counts (gathered from the shard
// builds themselves) reproduce the single-index id space exactly. That
// identity is what lets the sharded engine merge per-shard clusters
// into byte-identical single-engine candidate lists (DESIGN.md §14).
//
// Shard dirs are read-only at query time; the live-update path
// (EnableUpdates) does not apply to sharded indexes — rebuild to
// change the data.
struct ShardedIndexOptions {
  size_t num_shards = 2;
  size_t buffer_pool_pages = 4096;  // Per shard.
  bool compress_paths = true;
  size_t num_threads = 1;
  // enumerate.max_paths must stay 0: a global truncation cap has no
  // coherent per-shard restriction (PathIndexOptions::start_mask).
  PathEnumeratorOptions enumerate;
  // Per-shard hypergraph stores are off by default: the query path
  // never reads them and N copies of the vertex set are pure build
  // cost. Flip on for Table-1 style offline stats.
  bool build_hypergraph = false;
  Env* env = nullptr;
};

struct ShardBuildReport {
  size_t num_shards = 0;
  size_t num_components = 0;
  uint64_t cut_edges = 0;
  uint64_t total_paths = 0;
  std::vector<uint64_t> shard_paths;
};

// Partitions `graph`, builds every shard index under `base_dir`, and
// commits the sidecars. The meta file is written last, so a build that
// dies partway is invisible to ShardedIndex::Open (kNotFound).
Status BuildShardedIndex(const DataGraph& graph, const std::string& base_dir,
                         const ShardedIndexOptions& options,
                         ShardBuildReport* report = nullptr);

// True when `base_dir` holds a committed sharded build — how the CLI
// decides between PathIndex::Open and ShardedIndex::Open.
bool IsShardedIndexDir(const std::string& base_dir, Env* env = nullptr);

class ShardedIndex {
 public:
  ShardedIndex() = default;
  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  // Opens every shard under `base_dir` over `graph` (which must be the
  // graph the shards were built from — fingerprint-checked). With
  // `strict` set any damaged shard fails the open; otherwise damaged
  // shards are marked degraded and queries run over the survivors —
  // deterministically, with the loss visible in degraded_shards() and
  // the sama_shard_degraded gauge, mirroring the engine's degraded
  // read policy (DESIGN.md §5).
  Status Open(const DataGraph* graph, const std::string& base_dir,
              bool strict, size_t buffer_pool_pages = 4096,
              Env* env = nullptr);

  size_t num_shards() const { return shards_.size(); }
  size_t degraded_shards() const { return degraded_count_; }
  bool shard_degraded(size_t s) const { return shards_[s].index == nullptr; }
  // Null when the shard is degraded.
  const PathIndex* shard(size_t s) const { return shards_[s].index.get(); }

  // Local→global id translation for shard `s` (ids from its PathIndex).
  PathId GlobalId(size_t s, PathId local) const {
    return shards_[s].global_ids[local];
  }
  // The shard owning a global path id; num_shards() when the id
  // belongs to a degraded (unopened) shard.
  uint32_t OwnerOf(PathId global) const {
    return global < owner_of_.size()
               ? owner_of_[global]
               : static_cast<uint32_t>(shards_.size());
  }

  uint64_t total_paths() const { return total_paths_; }
  size_t num_components() const { return num_components_; }
  uint64_t cut_edges() const { return cut_edges_; }
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct Shard {
    std::unique_ptr<PathIndex> index;  // Null = degraded.
    std::vector<PathId> global_ids;    // Indexed by local id.
  };
  std::vector<Shard> shards_;
  std::vector<uint32_t> owner_of_;  // Indexed by global id.
  uint64_t total_paths_ = 0;
  size_t num_components_ = 0;
  uint64_t cut_edges_ = 0;
  uint64_t fingerprint_ = 0;
  size_t degraded_count_ = 0;
};

}  // namespace sama

#endif  // SAMA_SHARD_SHARDED_INDEX_H_

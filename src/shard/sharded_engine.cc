#include "shard/sharded_engine.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/timer.h"

namespace sama {

// The sharded coordinator's registry instruments (sama_shard_*),
// resolved once per engine like EngineInstruments.
struct ShardInstruments {
  Counter* queries = nullptr;
  Counter* shard_searches = nullptr;
  Counter* bound_exchange_prunes = nullptr;
  Gauge* degraded = nullptr;
  Histogram* phase_scatter = nullptr;
  Histogram* phase_search = nullptr;
  Histogram* phase_merge = nullptr;

  static ShardInstruments Resolve(MetricsRegistry* reg) {
    ShardInstruments out;
    out.queries = reg->GetCounter("sama_shard_queries_total",
                                  "Sharded scatter-gather queries executed.");
    out.shard_searches =
        reg->GetCounter("sama_shard_searches_total",
                        "Per-shard forest searches run (live shards × "
                        "queries).");
    out.bound_exchange_prunes = reg->GetCounter(
        "sama_shard_bound_exchange_prunes_total",
        "Prunes owed solely to the cross-shard k-th-score exchange.");
    out.degraded =
        reg->GetGauge("sama_shard_degraded",
                      "Shards currently unusable (damaged index/sidecar).");
    auto bounds = Histogram::LatencyBucketsMillis();
    const char* help = "Per-phase sharded query latency.";
    out.phase_scatter = reg->GetHistogram("sama_shard_phase_millis", help,
                                          bounds, {{"phase", "scatter"}});
    out.phase_search = reg->GetHistogram("sama_shard_phase_millis", help,
                                         bounds, {{"phase", "search"}});
    out.phase_merge = reg->GetHistogram("sama_shard_phase_millis", help,
                                        bounds, {{"phase", "merge"}});
    return out;
  }
};

ShardedEngine::ShardedEngine(const DataGraph* graph, const ShardedIndex* index,
                             const Thesaurus* thesaurus, EngineOptions options)
    : graph_(graph),
      index_(index),
      thesaurus_(thesaurus),
      options_(options) {
  size_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                            : options.num_threads;
  // The coordinator owns ALL the parallelism: scatter fans the shards
  // over this pool, and each sequential shard search parallelises its
  // waves on it. The per-shard engines run single-threaded so the two
  // levels never oversubscribe.
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads - 1);

  EngineOptions shard_options = options_;
  shard_options.num_threads = 1;
  // Coordinator-level observability only: per-shard engines would
  // otherwise multiply every sama_* series by N and retain N profile
  // rings nobody reads.
  shard_options.obs.metrics = false;
  shard_options.obs.trace = false;
  shard_options.obs.profile = false;
  shard_options.obs.slow_query_millis = 0;
  engines_.resize(index_->num_shards());
  for (size_t s = 0; s < index_->num_shards(); ++s) {
    if (index_->shard_degraded(s)) continue;
    engines_[s] = std::make_unique<SamaEngine>(graph_, index_->shard(s),
                                               thesaurus_, shard_options);
  }

  if (options_.obs.metrics) {
    MetricsRegistry* reg = options_.obs.registry != nullptr
                               ? options_.obs.registry
                               : MetricsRegistry::Global();
    instruments_ =
        std::make_shared<ShardInstruments>(ShardInstruments::Resolve(reg));
    instruments_->degraded->Set(
        static_cast<double>(index_->degraded_shards()));
  }
  if (options_.obs.profile) {
    profile_log_ = std::make_shared<ProfileLog>(options_.obs.profile_capacity);
  }
}

ShardedEngine::~ShardedEngine() = default;

Result<std::vector<Answer>> ShardedEngine::ExecuteSparql(
    const SparqlQuery& query, size_t k, QueryStats* stats) const {
  return ExecuteSparqlTraced(query, k, RequestObs(), stats);
}

Result<std::vector<Answer>> ShardedEngine::ExecuteSparqlTraced(
    const SparqlQuery& query, size_t k, const RequestObs& robs,
    QueryStats* stats) const {
  if (k == 0) k = query.limit;
  QueryGraph qg = BuildQueryGraph(query.patterns);
  ForestSearchOptions search = robs.search_override != nullptr
                                   ? *robs.search_override
                                   : options_.search;
  if ((options_.dedup_select_bindings || query.distinct) &&
      !query.select_all) {
    search.dedup_vars = query.select_vars;
  }
  if (!query.filters.empty()) {
    std::vector<FilterConstraint> filters = query.filters;
    search.binding_filter =
        [filters = std::move(filters)](const Substitution& binding) {
          return PassesFilters(filters, binding);
        };
  }
  return ExecuteWith(qg, k, search, robs, stats);
}

Result<std::vector<Answer>> ShardedEngine::Execute(const QueryGraph& query,
                                                   size_t k,
                                                   QueryStats* stats) const {
  return ExecuteWith(query, k, options_.search, RequestObs(), stats);
}

Result<std::vector<Answer>> ShardedEngine::ExecuteWith(
    const QueryGraph& query, size_t k, const ForestSearchOptions& search,
    const RequestObs& robs, QueryStats* stats) const {
  WallTimer total;
  QueryStats local;
  local.threads_used = threads_used();
  local.shards_degraded = index_->degraded_shards();

  // When a server hands us a propagated trace, append into it under the
  // request span; retained profiles are skipped in that mode because
  // QueryProfile::Build assumes a single-query span tree.
  const bool adopting = robs.adopt_trace != nullptr;
  const bool profiling =
      options_.obs.profile && profile_log_ != nullptr && !adopting;
  std::shared_ptr<QueryTrace> trace;
  if (adopting) {
    trace = robs.adopt_trace;
  } else if (options_.obs.trace || profiling) {
    trace = std::make_shared<QueryTrace>();
    if (options_.obs.trace_context.valid()) {
      trace->SetContext(options_.obs.trace_context);
    }
  }
  ObsSpan query_span = adopting
                           ? ObsSpan(trace.get(), "query", robs.adopt_parent)
                           : ObsSpan(trace.get(), "query");

  WallTimer phase;
  ObsSpan preprocess_span(trace.get(), "preprocess");
  IntersectionQueryGraph ig(query);
  preprocess_span = ObsSpan();
  local.preprocess_millis = phase.ElapsedMillis();
  local.num_query_paths = query.paths().size();

  std::vector<size_t> live;
  for (size_t s = 0; s < index_->num_shards(); ++s) {
    if (engines_[s] != nullptr) live.push_back(s);
  }
  if (live.empty()) {
    return Status::Internal("ShardedEngine: no live shards");
  }

  // ---- Scatter: every live shard clusters the query locally. The
  // per-shard engines are independent (own caches, shared RCU
  // dictionary) and results land in per-shard slots, so the concurrent
  // and sequential paths produce identical state.
  phase.Restart();
  ObsSpan scatter_span(trace.get(), "scatter");
  // Scatter lambdas run on pool workers, where thread-local parenting
  // can't see the coordinator's scatter span — parent explicitly.
  const uint64_t scatter_id = scatter_span.id();
  std::vector<std::vector<Cluster>> shard_clusters(live.size());
  std::vector<QueryStats> shard_stats(live.size());
  auto scatter_one = [&](size_t i) -> Status {
    ObsSpan cluster_span(trace.get(),
                         "shard-" + std::to_string(live[i]) + ".cluster",
                         scatter_id);
    cluster_span.SetAttr("shard", std::to_string(live[i]));
    auto clusters_or =
        engines_[live[i]]->ClusterQuery(query, &shard_stats[i]);
    if (!clusters_or.ok()) return clusters_or.status();
    shard_clusters[i] = std::move(*clusters_or);
    return Status::Ok();
  };
  if (pool_ != nullptr && live.size() > 1) {
    SAMA_RETURN_IF_ERROR(ParallelFor(pool_.get(), live.size(), scatter_one));
  } else {
    for (size_t i = 0; i < live.size(); ++i) {
      SAMA_RETURN_IF_ERROR(scatter_one(i));
    }
  }
  // Local → global path ids. Monotone per shard, so each shard's
  // (λ, id)-sorted cluster stays sorted.
  for (size_t i = 0; i < live.size(); ++i) {
    for (Cluster& c : shard_clusters[i]) {
      for (ScoredPath& sp : c.paths) {
        sp.id = index_->GlobalId(live[i], sp.id);
      }
    }
  }

  // Merge the per-shard clusters into the single-index candidate
  // lists: concatenate, re-sort by (λ, global id) — the shard path
  // sets are disjoint, so this is exactly the unsharded order — and
  // re-apply the per-cluster cap (the global top-cap is a subset of
  // the union of the per-shard top-caps, so nothing it needs was
  // dropped locally).
  const size_t num_clusters = shard_clusters[0].size();
  std::vector<Cluster> clusters(num_clusters);
  for (size_t j = 0; j < num_clusters; ++j) {
    clusters[j].query_path_index = shard_clusters[0][j].query_path_index;
  }
  for (size_t i = 0; i < live.size(); ++i) {
    if (shard_clusters[i].size() != num_clusters) {
      return Status::Internal(
          "ShardedEngine: shards disagree on the cluster count");
    }
    for (size_t j = 0; j < num_clusters; ++j) {
      Cluster& into = clusters[j];
      for (ScoredPath& sp : shard_clusters[i][j].paths) {
        into.paths.push_back(std::move(sp));
      }
    }
  }
  const size_t cap = options_.clustering.max_candidates_per_cluster;
  for (Cluster& c : clusters) {
    std::sort(c.paths.begin(), c.paths.end(),
              [](const ScoredPath& a, const ScoredPath& b) {
                if (a.lambda() != b.lambda()) return a.lambda() < b.lambda();
                return a.id < b.id;
              });
    if (cap != 0 && c.paths.size() > cap) c.paths.resize(cap);
  }
  scatter_span = ObsSpan();
  local.clustering_millis = phase.ElapsedMillis();
  for (size_t i = 0; i < live.size(); ++i) {
    const QueryStats& ss = shard_stats[i];
    local.clustering_busy_millis += ss.clustering_busy_millis;
    local.corrupt_records_skipped += ss.corrupt_records_skipped;
    local.io_retries += ss.io_retries;
    local.posting_cache += ss.posting_cache;
    local.path_lookup_cache += ss.path_lookup_cache;
    local.path_record_cache += ss.path_record_cache;
    local.label_match_cache += ss.label_match_cache;
    local.alignment_memo += ss.alignment_memo;
    local.thesaurus_cache += ss.thesaurus_cache;
  }
  for (const Cluster& c : clusters) local.num_candidate_paths += c.size();

  // ---- Search: sequential per-shard forest searches over the MERGED
  // clusters, each restricted to roots the shard owns, exchanging k-th
  // scores through one fresh bound (fresh per query — a reused bound
  // would leak a stale threshold into an unrelated execution).
  phase.Restart();
  ObsSpan search_span(trace.get(), "search");
  ForestSearchOptions base = search;
  if (k != 0) base.k = k;
  const ForestJoinPlan plan = PlanForestJoin(ig, clusters);
  SharedScoreBound bound;
  std::atomic<uint64_t> search_busy{0};
  std::vector<Answer> collected;
  auto absorb = [&local](const ForestSearchStats& fs) {
    local.search_expansions += fs.expansions;
    local.search_bound_pruned += fs.bound_pruned;
    local.search_roots_pruned += fs.roots_pruned;
    local.search_shared_bound_pruned += fs.shared_bound_pruned;
    if (fs.truncated) local.search_truncated = true;
  };
  if (plan.active.empty()) {
    // No join positions (every cluster empty): there is nothing to
    // slice by root, and N filtered searches would each emit the same
    // all-deleted partial answer. One unfiltered search reproduces the
    // single-engine output exactly.
    ForestSearchStats fs;
    auto answers_or = ForestSearch(query, ig, clusters, options_.params, base,
                                   pool_.get(), &search_busy, &fs);
    if (!answers_or.ok()) return answers_or.status();
    absorb(fs);
    collected = std::move(*answers_or);
  } else {
    for (size_t s : live) {
      ForestSearchOptions shard_search = base;
      shard_search.shared_bound = &bound;
      shard_search.root_filter = [this, s](const ScoredPath& sp) {
        return index_->OwnerOf(sp.id) == static_cast<uint32_t>(s);
      };
      ObsSpan shard_span(trace.get(),
                         "shard-" + std::to_string(s) + ".search");
      shard_span.SetAttr("shard", std::to_string(s));
      ForestSearchStats fs;
      auto answers_or =
          ForestSearch(query, ig, clusters, options_.params, shard_search,
                       pool_.get(), &search_busy, &fs);
      if (!answers_or.ok()) return answers_or.status();
      shard_span.SetAttr("expansions", std::to_string(fs.expansions));
      absorb(fs);
      for (Answer& a : *answers_or) collected.push_back(std::move(a));
    }
  }
  search_span = ObsSpan();
  local.search_millis = phase.ElapsedMillis();
  local.search_busy_millis = static_cast<double>(search_busy.load()) / 1e6;

  // ---- Gather: merge the shard answer slices on the canonical
  // (score, enumeration key) order. Every search — single-engine or
  // per-shard — keeps "the k best by (score, enum_key)" over what it
  // enumerated, and the root slices partition the enumeration, so
  // sorting the union the same way and re-applying dedup and the k cut
  // reproduces the single-engine list exactly. Since per-shard searches
  // run over the MERGED clusters, their enum_keys index the same
  // candidate lists a single engine would use and are directly
  // comparable across shards.
  phase.Restart();
  ObsSpan merge_span(trace.get(), "merge");
  std::vector<size_t> by_rank(collected.size());
  for (size_t i = 0; i < by_rank.size(); ++i) by_rank[i] = i;
  std::sort(by_rank.begin(), by_rank.end(), [&](size_t a, size_t b) {
    if (collected[a].score != collected[b].score) {
      return collected[a].score < collected[b].score;
    }
    return collected[a].enum_key < collected[b].enum_key;
  });
  std::vector<Answer> answers;
  std::unordered_set<std::string> seen_tuples;
  for (size_t idx : by_rank) {
    if (base.k != 0 && answers.size() >= base.k) break;
    Answer& a = collected[idx];
    if (!base.dedup_vars.empty()) {
      std::string key;
      for (const Term& t : a.BindingTuple(base.dedup_vars)) {
        key += t.ToString();
        key += '\x1f';
      }
      if (!seen_tuples.insert(std::move(key)).second) continue;
    }
    answers.push_back(std::move(a));
  }
  merge_span.SetAttr("answers", std::to_string(answers.size()));
  merge_span = ObsSpan();
  const double merge_millis = phase.ElapsedMillis();

  query_span = ObsSpan();
  local.total_millis = total.ElapsedMillis();
  local.num_answers = answers.size();
  if (options_.obs.trace || adopting) local.trace = trace;

  if (profiling) {
    ProfileSummary summary;
    summary.total_millis = local.total_millis;
    summary.num_query_paths = local.num_query_paths;
    summary.num_candidate_paths = local.num_candidate_paths;
    summary.num_answers = local.num_answers;
    summary.threads_used = local.threads_used;
    summary.search_expansions = local.search_expansions;
    summary.search_truncated = local.search_truncated;
    std::vector<QueryProfile::PhaseCounters> phases(2);
    phases[0].phase = "scatter";
    {
      ProfileCounters& c = phases[0].counters;
      CacheCounters cache;
      cache += local.posting_cache;
      cache += local.path_lookup_cache;
      cache += local.path_record_cache;
      cache += local.label_match_cache;
      cache += local.alignment_memo;
      cache += local.thesaurus_cache;
      c.cache_hits = cache.hits;
      c.cache_misses = cache.misses;
      c.io_retries = local.io_retries;
      c.corrupt_skipped = local.corrupt_records_skipped;
    }
    phases[1].phase = "search";
    phases[1].counters.search_expansions = local.search_expansions;
    auto profile = std::make_shared<QueryProfile>(
        QueryProfile::Build(trace->Snapshot(), std::move(summary), phases));
    profile_log_->Add(profile);
    local.profile = profile;
  }

  if (instruments_ != nullptr) {
    const ShardInstruments& ins = *instruments_;
    ins.queries->Increment();
    ins.shard_searches->Increment(live.size());
    if (local.search_shared_bound_pruned) {
      ins.bound_exchange_prunes->Increment(local.search_shared_bound_pruned);
    }
    ins.degraded->Set(static_cast<double>(local.shards_degraded));
    ins.phase_scatter->Observe(local.clustering_millis);
    ins.phase_search->Observe(local.search_millis);
    ins.phase_merge->Observe(merge_millis);
  }

  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace sama

#ifndef SAMA_GRAPH_DATA_GRAPH_H_
#define SAMA_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace sama {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNodeId = 0xffffffffu;
inline constexpr EdgeId kInvalidEdgeId = 0xffffffffu;

// A labelled directed graph G = <N, E, LN, LE> (paper Definition 1).
// Node and edge labels are TermIds into a TermDictionary owned by the
// graph. Data graphs hold constants only; QueryGraph (Definition 2)
// reuses this structure and additionally allows variable labels.
class DataGraph {
 public:
  struct Edge {
    NodeId from;
    NodeId to;
    TermId label;
  };

  // Creates a graph with its own fresh dictionary.
  DataGraph() : dict_(std::make_shared<TermDictionary>()) {}
  // Creates a graph sharing `dict` — query graphs share the data
  // graph's dictionary so that TermIds are directly comparable across
  // the two.
  explicit DataGraph(std::shared_ptr<TermDictionary> dict)
      : dict_(std::move(dict)) {}

  DataGraph(const DataGraph&) = delete;
  DataGraph& operator=(const DataGraph&) = delete;
  DataGraph(DataGraph&&) = default;
  DataGraph& operator=(DataGraph&&) = default;

  // Builds a graph from parsed RDF triples: one node per distinct
  // subject/object term, one edge per triple.
  static DataGraph FromTriples(const std::vector<Triple>& triples);

  // Returns the node labelled by `term`, creating it on first use.
  NodeId AddNode(const Term& term);

  // Adds a directed edge labelled by `label`. Parallel edges with
  // distinct labels are allowed; an exact duplicate (from, to, label) is
  // collapsed.
  EdgeId AddEdge(NodeId from, NodeId to, const Term& label);

  // The live edge (from, to, label), or kInvalidEdgeId when absent.
  EdgeId FindEdge(NodeId from, NodeId to, TermId label) const;

  // Removes the edge (from, to, label) if present, returning its id
  // (kInvalidEdgeId when absent — an idempotent no-op). EdgeIds are
  // stable: the Edge slot is retained and merely unlinked from the
  // adjacency lists, so existing EdgeIds held elsewhere (inverted-index
  // postings) keep resolving; edge_live() reports the slot dead. Nodes
  // left isolated stay in the graph (they are neither sources nor
  // sinks, so traversal never visits them).
  EdgeId RemoveEdge(NodeId from, NodeId to, TermId label);

  // False for a slot vacated by RemoveEdge.
  bool edge_live(EdgeId e) const {
    return e < edge_dead_.size() ? edge_dead_[e] == 0 : true;
  }

  size_t node_count() const { return node_labels_.size(); }
  // Edge SLOTS ever allocated (dead ones included); the bound for
  // iterating EdgeIds.
  size_t edge_count() const { return edges_.size(); }
  // Edges currently present — the logical triple count.
  size_t live_edge_count() const { return edges_.size() - dead_edges_; }

  TermId node_label(NodeId n) const { return node_labels_[n]; }
  const Term& node_term(NodeId n) const {
    return dict_->term(node_labels_[n]);
  }
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const Term& edge_term(EdgeId e) const {
    return dict_->term(edges_[e].label);
  }

  const std::vector<EdgeId>& out_edges(NodeId n) const { return out_[n]; }
  const std::vector<EdgeId>& in_edges(NodeId n) const { return in_[n]; }
  size_t out_degree(NodeId n) const { return out_[n].size(); }
  size_t in_degree(NodeId n) const { return in_[n].size(); }

  // Looks up a node by its (constant or variable) term. Returns
  // kInvalidNodeId when absent.
  NodeId FindNode(const Term& term) const;

  // Nodes with no incoming edges (paper §3.2).
  std::vector<NodeId> Sources() const;
  // Nodes with no outgoing edges.
  std::vector<NodeId> Sinks() const;
  // Nodes maximising out_degree - in_degree; used as traversal starting
  // points when the graph has no sources ("hub promotion", §3.2).
  std::vector<NodeId> Hubs() const;
  // Sources when present, otherwise hubs.
  std::vector<NodeId> StartNodes() const;

  TermDictionary& dict() { return *dict_; }
  const TermDictionary& dict() const { return *dict_; }
  const std::shared_ptr<TermDictionary>& shared_dict() const { return dict_; }

  // Estimated resident bytes of the structure (labels + adjacency).
  uint64_t MemoryBytes() const;

 private:
  std::shared_ptr<TermDictionary> dict_;
  std::vector<TermId> node_labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  // term id -> node id (one node per distinct term).
  std::unordered_map<TermId, NodeId> node_by_term_;
  // 1 for slots vacated by RemoveEdge; sized lazily (empty while no
  // edge was ever removed, the common read-only case).
  std::vector<uint8_t> edge_dead_;
  size_t dead_edges_ = 0;
};

}  // namespace sama

#endif  // SAMA_GRAPH_DATA_GRAPH_H_

#include "graph/data_graph.h"

#include <algorithm>

namespace sama {

DataGraph DataGraph::FromTriples(const std::vector<Triple>& triples) {
  DataGraph g;
  for (const Triple& t : triples) {
    NodeId s = g.AddNode(t.subject);
    NodeId o = g.AddNode(t.object);
    g.AddEdge(s, o, t.predicate);
  }
  return g;
}

NodeId DataGraph::AddNode(const Term& term) {
  TermId label = dict_->Intern(term);
  auto it = node_by_term_.find(label);
  if (it != node_by_term_.end()) return it->second;
  NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.push_back(label);
  out_.emplace_back();
  in_.emplace_back();
  node_by_term_.emplace(label, id);
  return id;
}

EdgeId DataGraph::AddEdge(NodeId from, NodeId to, const Term& label) {
  TermId lid = dict_->Intern(label);
  // Collapse exact duplicates; scan the smaller endpoint list.
  const std::vector<EdgeId>& candidates =
      out_[from].size() <= in_[to].size() ? out_[from] : in_[to];
  for (EdgeId e : candidates) {
    const Edge& edge = edges_[e];
    if (edge.from == from && edge.to == to && edge.label == lid) return e;
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, lid});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

EdgeId DataGraph::FindEdge(NodeId from, NodeId to, TermId label) const {
  if (from >= out_.size() || to >= in_.size()) return kInvalidEdgeId;
  const std::vector<EdgeId>& candidates =
      out_[from].size() <= in_[to].size() ? out_[from] : in_[to];
  for (EdgeId e : candidates) {
    const Edge& edge = edges_[e];
    if (edge.from == from && edge.to == to && edge.label == label) return e;
  }
  return kInvalidEdgeId;
}

EdgeId DataGraph::RemoveEdge(NodeId from, NodeId to, TermId label) {
  EdgeId e = FindEdge(from, to, label);
  if (e == kInvalidEdgeId) return kInvalidEdgeId;
  auto unlink = [e](std::vector<EdgeId>* adj) {
    adj->erase(std::remove(adj->begin(), adj->end(), e), adj->end());
  };
  unlink(&out_[from]);
  unlink(&in_[to]);
  if (edge_dead_.size() < edges_.size()) edge_dead_.resize(edges_.size(), 0);
  edge_dead_[e] = 1;
  ++dead_edges_;
  return e;
}

NodeId DataGraph::FindNode(const Term& term) const {
  TermId label = dict_->Find(term);
  if (label == kInvalidTermId) return kInvalidNodeId;
  auto it = node_by_term_.find(label);
  return it == node_by_term_.end() ? kInvalidNodeId : it->second;
}

std::vector<NodeId> DataGraph::Sources() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (in_[n].empty() && !out_[n].empty()) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> DataGraph::Sinks() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (out_[n].empty() && !in_[n].empty()) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> DataGraph::Hubs() const {
  std::vector<NodeId> hubs;
  int64_t best = INT64_MIN;
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (out_[n].empty()) continue;
    int64_t diff = static_cast<int64_t>(out_[n].size()) -
                   static_cast<int64_t>(in_[n].size());
    if (diff > best) {
      best = diff;
      hubs.clear();
      hubs.push_back(n);
    } else if (diff == best) {
      hubs.push_back(n);
    }
  }
  return hubs;
}

std::vector<NodeId> DataGraph::StartNodes() const {
  std::vector<NodeId> starts = Sources();
  if (!starts.empty()) return starts;
  return Hubs();
}

uint64_t DataGraph::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  bytes += node_labels_.capacity() * sizeof(TermId);
  bytes += edges_.capacity() * sizeof(Edge);
  for (const auto& v : out_) bytes += v.capacity() * sizeof(EdgeId);
  for (const auto& v : in_) bytes += v.capacity() * sizeof(EdgeId);
  bytes += (out_.capacity() + in_.capacity()) * sizeof(std::vector<EdgeId>);
  bytes += node_by_term_.size() * (sizeof(TermId) + sizeof(NodeId) +
                                   2 * sizeof(void*));
  bytes += dict_->MemoryBytes();
  return bytes;
}

}  // namespace sama

#ifndef SAMA_GRAPH_LOADER_H_
#define SAMA_GRAPH_LOADER_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "graph/data_graph.h"

namespace sama {

// Progress/outcome of a bulk load.
struct LoadStats {
  uint64_t triples = 0;
  uint64_t lines = 0;
  uint64_t bytes = 0;
  double millis = 0;
};

// Streams an RDF file into `graph`. N-Triples / N-Quads (.nt, .nq) are
// parsed line by line in constant memory — the paper's premise that
// data sets are much larger than memory applies to loading too. Turtle
// (.ttl/.turtle) requires whole-document parsing and is read in one
// piece. The optional `progress` callback fires every
// `progress_every_lines` statements.
Result<LoadStats> LoadGraphFromFile(
    const std::string& path, DataGraph* graph,
    const std::function<void(const LoadStats&)>& progress = nullptr,
    uint64_t progress_every_lines = 100000);

}  // namespace sama

#endif  // SAMA_GRAPH_LOADER_H_

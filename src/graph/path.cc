#include "graph/path.h"

#include "common/hash.h"

namespace sama {

std::string Path::ToString(const TermDictionary& dict) const {
  std::string out;
  for (size_t i = 0; i < node_labels.size(); ++i) {
    if (i > 0) {
      out += "-";
      out += dict.term(edge_labels[i - 1]).DisplayLabel();
      out += "-";
    }
    out += dict.term(node_labels[i]).DisplayLabel();
  }
  return out;
}

uint64_t PathLabelHash(const Path& p) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (size_t i = 0; i < p.node_labels.size(); ++i) {
    h = HashCombine(h, p.node_labels[i]);
    if (i < p.edge_labels.size()) h = HashCombine(h, ~uint64_t{p.edge_labels[i]});
  }
  return h;
}

}  // namespace sama

#include "graph/path_enumerator.h"

#include <vector>

namespace sama {
namespace {

// Iterative DFS over simple paths from one start node. DFS (rather than
// the paper's literal BFS wording) visits the same path set; iteration
// order does not matter to any consumer and DFS keeps memory linear in
// path length instead of frontier size.
class PathWalker {
 public:
  PathWalker(const DataGraph& graph, const PathEnumeratorOptions& options,
             const std::function<bool(const Path&)>& emit)
      : graph_(graph),
        options_(options),
        emit_(emit),
        on_path_(graph.node_count(), false) {}

  // Returns the number of paths emitted; sets `stopped` when the emit
  // callback or max_paths cap requested termination.
  size_t WalkFrom(NodeId start, bool* stopped) {
    emitted_ = 0;
    stopped_ = false;
    PushNode(start);
    // Each stack frame tracks which out-edge of the node at that depth
    // is explored next.
    std::vector<size_t> cursor{0};
    while (!current_nodes_.empty() && !stopped_) {
      NodeId node = current_nodes_.back();
      size_t& next = cursor.back();
      const std::vector<EdgeId>& outs = graph_.out_edges(node);

      bool advanced = false;
      bool too_long = options_.max_length != 0 &&
                      current_nodes_.size() >= options_.max_length;
      if (!too_long) {
        while (next < outs.size()) {
          const DataGraph::Edge& e = graph_.edge(outs[next]);
          ++next;
          if (on_path_[e.to]) continue;  // Simple paths only.
          current_edges_.push_back(e.label);
          PushNode(e.to);
          cursor.push_back(0);
          advanced = true;
          break;
        }
      }
      if (advanced) continue;

      // Dead end for this frame: emit if terminal, then backtrack.
      MaybeEmit(node, too_long);
      PopNode();
      cursor.pop_back();
      if (!current_edges_.empty()) current_edges_.pop_back();
    }
    // Unwind any residual state after an early stop.
    while (!current_nodes_.empty()) PopNode();
    current_edges_.clear();
    *stopped = stopped_;
    return emitted_;
  }

 private:
  void PushNode(NodeId n) {
    current_nodes_.push_back(n);
    on_path_[n] = true;
  }

  void PopNode() {
    on_path_[current_nodes_.back()] = false;
    current_nodes_.pop_back();
  }

  void MaybeEmit(NodeId terminal, bool truncated_by_length) {
    if (current_nodes_.size() < 2) return;  // Single node: not a path.
    bool is_sink = graph_.out_degree(terminal) == 0;
    if (!is_sink && options_.strict_sinks) return;
    if (!is_sink && truncated_by_length) return;
    if (!is_sink) {
      // Emit a non-sink terminal only when the walk is genuinely stuck —
      // every out-neighbour already lies on the current path (a cycle).
      // A node whose continuations were all explored is not a path end;
      // those continuations produced their own paths.
      for (EdgeId e : graph_.out_edges(terminal)) {
        if (!on_path_[graph_.edge(e).to]) return;
      }
    }
    Path p;
    p.nodes = current_nodes_;
    p.node_labels.reserve(current_nodes_.size());
    for (NodeId n : current_nodes_) p.node_labels.push_back(graph_.node_label(n));
    p.edge_labels = current_edges_;
    ++emitted_;
    if (!emit_(p)) stopped_ = true;
    if (options_.max_paths != 0 && emitted_ >= options_.max_paths) {
      stopped_ = true;
    }
  }

  const DataGraph& graph_;
  const PathEnumeratorOptions& options_;
  const std::function<bool(const Path&)>& emit_;
  std::vector<bool> on_path_;
  std::vector<NodeId> current_nodes_;
  std::vector<TermId> current_edges_;
  size_t emitted_ = 0;
  bool stopped_ = false;
};

}  // namespace

size_t EnumeratePathsFrom(const DataGraph& graph, NodeId start,
                          const PathEnumeratorOptions& options,
                          const std::function<bool(const Path&)>& emit) {
  PathWalker walker(graph, options, emit);
  bool stopped = false;
  return walker.WalkFrom(start, &stopped);
}

size_t EnumeratePaths(const DataGraph& graph,
                      const PathEnumeratorOptions& options,
                      const std::function<bool(const Path&)>& emit) {
  size_t total = 0;
  PathEnumeratorOptions local = options;
  for (NodeId start : graph.StartNodes()) {
    if (options.max_paths != 0) {
      if (total >= options.max_paths) break;
      local.max_paths = options.max_paths - total;
    }
    PathWalker walker(graph, local, emit);
    bool stopped = false;
    total += walker.WalkFrom(start, &stopped);
    if (stopped) break;
  }
  return total;
}

std::vector<Path> AllPaths(const DataGraph& graph,
                           const PathEnumeratorOptions& options) {
  std::vector<Path> out;
  EnumeratePaths(graph, options, [&out](const Path& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

}  // namespace sama

#ifndef SAMA_GRAPH_PATH_ENUMERATOR_H_
#define SAMA_GRAPH_PATH_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/data_graph.h"
#include "graph/path.h"

namespace sama {

// Options for path enumeration (paper §3.2/§6.1 step iii).
struct PathEnumeratorOptions {
  // Safety valves; 0 disables the cap. Experiments run uncapped.
  size_t max_paths = 0;
  size_t max_length = 0;  // Maximum node count per path.
  // When true, only paths ending at true sinks are emitted. When false
  // (default) a traversal that can no longer advance — every
  // out-neighbour already on the current path, i.e. a cycle — also
  // emits its maximal path, so cyclic graphs still produce usable
  // paths.
  bool strict_sinks = false;
};

// Enumerates the source→sink paths of `graph`, starting from its
// sources (or from hub nodes when no source exists). Simple paths only:
// a node is never revisited within one path. Invokes `emit` once per
// path; enumeration stops early when `emit` returns false or a cap
// fires. Returns the number of paths emitted.
size_t EnumeratePaths(const DataGraph& graph,
                      const PathEnumeratorOptions& options,
                      const std::function<bool(const Path&)>& emit);

// Enumerates only the paths starting at `start` (used by the concurrent
// index builder, which shards work by source node).
size_t EnumeratePathsFrom(const DataGraph& graph, NodeId start,
                          const PathEnumeratorOptions& options,
                          const std::function<bool(const Path&)>& emit);

// Convenience: collects all paths into a vector.
std::vector<Path> AllPaths(const DataGraph& graph,
                           const PathEnumeratorOptions& options = {});

}  // namespace sama

#endif  // SAMA_GRAPH_PATH_ENUMERATOR_H_

#ifndef SAMA_GRAPH_GRAPH_STATS_H_
#define SAMA_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>

#include "graph/data_graph.h"

namespace sama {

// Shape summary of a data graph — the quantities that drive indexing
// cost (sources × fan-out bound the path count) and that the dataset
// generators are tuned against.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t sources = 0;
  size_t sinks = 0;
  size_t isolated = 0;  // No edges at all.
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  double avg_out_degree = 0;
  size_t distinct_predicates = 0;
  size_t literal_nodes = 0;
  size_t iri_nodes = 0;
  size_t blank_nodes = 0;
  // Weakly connected components (edge direction ignored).
  size_t weakly_connected_components = 0;
};

GraphStats ComputeGraphStats(const DataGraph& graph);

// Multi-line human-readable rendering.
std::string FormatGraphStats(const GraphStats& stats);

}  // namespace sama

#endif  // SAMA_GRAPH_GRAPH_STATS_H_

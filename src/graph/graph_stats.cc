#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace sama {
namespace {

// Union-find over node ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

GraphStats ComputeGraphStats(const DataGraph& graph) {
  GraphStats stats;
  stats.nodes = graph.node_count();
  stats.edges = graph.edge_count();

  std::unordered_set<TermId> predicates;
  DisjointSets components(graph.node_count());
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const DataGraph::Edge& edge = graph.edge(e);
    predicates.insert(edge.label);
    components.Union(edge.from, edge.to);
  }
  stats.distinct_predicates = predicates.size();

  size_t total_out = 0;
  std::unordered_set<size_t> roots;
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    size_t out = graph.out_degree(n);
    size_t in = graph.in_degree(n);
    total_out += out;
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    if (out == 0 && in == 0) {
      ++stats.isolated;
    } else if (in == 0) {
      ++stats.sources;
    } else if (out == 0) {
      ++stats.sinks;
    }
    switch (graph.node_term(n).kind()) {
      case Term::Kind::kIri:
        ++stats.iri_nodes;
        break;
      case Term::Kind::kLiteral:
        ++stats.literal_nodes;
        break;
      case Term::Kind::kBlank:
        ++stats.blank_nodes;
        break;
      case Term::Kind::kVariable:
        break;
    }
    roots.insert(components.Find(n));
  }
  stats.avg_out_degree =
      stats.nodes == 0
          ? 0
          : static_cast<double>(total_out) / static_cast<double>(stats.nodes);
  stats.weakly_connected_components = roots.size();
  return stats;
}

std::string FormatGraphStats(const GraphStats& stats) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "nodes: %zu (%zu IRI, %zu literal, %zu blank, %zu isolated)\n"
      "edges: %zu over %zu distinct predicates\n"
      "sources: %zu, sinks: %zu\n"
      "degree: avg out %.2f, max out %zu, max in %zu\n"
      "weakly connected components: %zu\n",
      stats.nodes, stats.iri_nodes, stats.literal_nodes, stats.blank_nodes,
      stats.isolated, stats.edges, stats.distinct_predicates, stats.sources,
      stats.sinks, stats.avg_out_degree, stats.max_out_degree,
      stats.max_in_degree, stats.weakly_connected_components);
  return buf;
}

}  // namespace sama

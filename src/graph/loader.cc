#include "graph/loader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/timer.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace sama {

Result<LoadStats> LoadGraphFromFile(
    const std::string& path, DataGraph* graph,
    const std::function<void(const LoadStats&)>& progress,
    uint64_t progress_every_lines) {
  WallTimer timer;
  LoadStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  if (EndsWith(path, ".ttl") || EndsWith(path, ".turtle")) {
    // Turtle statements span lines; parse the whole document.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    stats.bytes = text.size();
    auto triples = ParseTurtle(text);
    if (!triples.ok()) return triples.status();
    for (const Triple& t : *triples) {
      NodeId s = graph->AddNode(t.subject);
      NodeId o = graph->AddNode(t.object);
      graph->AddEdge(s, o, t.predicate);
      ++stats.triples;
    }
    stats.millis = timer.ElapsedMillis();
    return stats;
  }

  // N-Triples / N-Quads: one statement per line, constant memory.
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines;
    stats.bytes += line.size() + 1;
    Result<Triple> t = NTriplesParser::ParseLine(line);
    if (!t.ok()) {
      if (t.status().code() == Status::Code::kNotFound) continue;  // Blank.
      return Status::ParseError(path + " line " +
                                std::to_string(stats.lines) + ": " +
                                t.status().message());
    }
    NodeId s = graph->AddNode(t->subject);
    NodeId o = graph->AddNode(t->object);
    graph->AddEdge(s, o, t->predicate);
    ++stats.triples;
    if (progress && progress_every_lines != 0 &&
        stats.triples % progress_every_lines == 0) {
      stats.millis = timer.ElapsedMillis();
      progress(stats);
    }
  }
  stats.millis = timer.ElapsedMillis();
  return stats;
}

}  // namespace sama

#ifndef SAMA_GRAPH_PATH_H_
#define SAMA_GRAPH_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/data_graph.h"

namespace sama {

// A path in the sense of Definition 5: an alternating sequence of node
// and edge labels ln1-le1-ln2-...-le(k-1)-lnk from a source to a sink.
// Stored as two parallel label-id vectors plus the originating node ids
// (node ids are kept so answers can be reassembled into subgraphs; the
// similarity measure itself only reads labels).
struct Path {
  std::vector<TermId> node_labels;  // k entries.
  std::vector<TermId> edge_labels;  // k-1 entries.
  std::vector<NodeId> nodes;        // k entries; graph-local ids.

  // Number of nodes, the paper's notion of path length (pz in §3.2 has
  // length 4).
  size_t length() const { return node_labels.size(); }
  bool empty() const { return node_labels.empty(); }

  // 1-based position of the first occurrence of `label`, 0 if absent.
  size_t PositionOf(TermId label) const {
    for (size_t i = 0; i < node_labels.size(); ++i) {
      if (node_labels[i] == label) return i + 1;
    }
    return 0;
  }

  TermId sink_label() const { return node_labels.back(); }
  TermId source_label() const { return node_labels.front(); }

  // Total label count |p| = #nodes + #edges (the I in the O(I) alignment
  // bound).
  size_t size() const { return node_labels.size() + edge_labels.size(); }

  // "CB-sponsor-A0056-aTo-B1432-subject-HC" style rendering.
  std::string ToString(const TermDictionary& dict) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.node_labels == b.node_labels && a.edge_labels == b.edge_labels;
  }
};

// Stable content hash over the label sequence (node ids excluded), used
// for dedup and for the on-disk path store.
uint64_t PathLabelHash(const Path& p);

}  // namespace sama

#endif  // SAMA_GRAPH_PATH_H_

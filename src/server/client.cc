#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sama {

BinaryClient::~BinaryClient() { Close(); }

BinaryClient::BinaryClient(BinaryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      trace_(other.trace_) {}

BinaryClient& BinaryClient::operator=(BinaryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    trace_ = other.trace_;
  }
  return *this;
}

Status BinaryClient::Connect(const std::string& host, uint16_t port) {
  Close();
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    close(fd);
    return Status::IoError("connect to " + host + ":" +
                           std::to_string(port) +
                           " failed: " + std::strerror(err));
  }
  fd_ = fd;
  decoder_ = FrameDecoder();
  return Status::Ok();
}

void BinaryClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Status BinaryClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::IoError("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("write failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status BinaryClient::SendFrame(const Frame& frame) {
  if (trace_.valid() && !frame.trace.valid()) {
    Frame stamped = frame;
    stamped.trace = trace_;
    return SendRaw(EncodeFrame(stamped));
  }
  return SendRaw(EncodeFrame(frame));
}

Result<Frame> BinaryClient::ReadFrame() {
  if (fd_ < 0) return Status::IoError("client is not connected");
  while (true) {
    Frame frame;
    WireStatus code = WireStatus::kOk;
    std::string message;
    FrameDecoder::Next next = decoder_.Pop(&frame, &code, &message);
    if (next == FrameDecoder::Next::kFrame) return frame;
    if (next == FrameDecoder::Next::kBad) {
      return Status::Corruption("undecodable response stream: " + message);
    }
    char buf[16384];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IoError(std::string("read failed: ") +
                           std::strerror(errno));
  }
}

Result<std::string> BinaryClient::Ping(std::string_view payload,
                                       uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = request_id;
  frame.payload.assign(payload);
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kPong) {
    return Status::Internal("expected PONG, got frame type " +
                            std::to_string(static_cast<unsigned>(reply->type)));
  }
  return std::move(reply->payload);
}

Result<std::string> BinaryClient::StatsText(uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kStats;
  frame.request_id = request_id;
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kStatsResult) {
    return Status::Internal("expected STATS_RESULT, got frame type " +
                            std::to_string(static_cast<unsigned>(reply->type)));
  }
  return std::move(reply->payload);
}

Status BinaryClient::SendQuery(const QueryRequest& request,
                               uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = request_id;
  frame.payload = EncodeQueryRequest(request);
  return SendFrame(frame);
}

Result<QueryResultWire> BinaryClient::Query(const QueryRequest& request,
                                            uint64_t request_id) {
  Status sent = SendQuery(request, request_id);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) {
    ErrorBody error;
    if (!DecodeErrorBody(reply->payload, &error)) {
      return Status::Corruption("undecodable error body");
    }
    QueryResultWire result;
    result.status = error.code;
    return result;
  }
  if (reply->type != FrameType::kResult) {
    return Status::Internal("expected RESULT, got frame type " +
                            std::to_string(static_cast<unsigned>(reply->type)));
  }
  QueryResultWire result;
  if (!DecodeQueryResult(reply->payload, &result)) {
    return Status::Corruption("undecodable query result");
  }
  return result;
}

Status BinaryClient::SendUpdate(const UpdateRequest& request,
                                uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kUpdate;
  frame.request_id = request_id;
  frame.payload = EncodeUpdateRequest(request);
  return SendFrame(frame);
}

Result<UpdateResultWire> BinaryClient::Update(const UpdateRequest& request,
                                              uint64_t request_id) {
  Status sent = SendUpdate(request, request_id);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) {
    ErrorBody error;
    if (!DecodeErrorBody(reply->payload, &error)) {
      return Status::Corruption("undecodable error body");
    }
    UpdateResultWire result;
    result.status = error.code;
    return result;
  }
  if (reply->type != FrameType::kUpdateResult) {
    return Status::Internal("expected UPDATE_RESULT, got frame type " +
                            std::to_string(static_cast<unsigned>(reply->type)));
  }
  UpdateResultWire result;
  if (!DecodeUpdateResult(reply->payload, &result)) {
    return Status::Corruption("undecodable update result");
  }
  return result;
}

Status BinaryClient::Shutdown(uint64_t request_id) {
  Frame frame;
  frame.type = FrameType::kShutdown;
  frame.request_id = request_id;
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) {
    ErrorBody error;
    DecodeErrorBody(reply->payload, &error);
    return Status::InvalidArgument("shutdown refused: " + error.message);
  }
  if (reply->type != FrameType::kShutdownAck) {
    return Status::Internal("expected SHUTDOWN_ACK, got frame type " +
                            std::to_string(static_cast<unsigned>(reply->type)));
  }
  return Status::Ok();
}

}  // namespace sama

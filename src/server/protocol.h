#ifndef SAMA_SERVER_PROTOCOL_H_
#define SAMA_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_context.h"

namespace sama {

// The compact framed binary protocol spoken by BinaryQueryServer
// (DESIGN.md "Serving"). Every message is one frame:
//
//   offset  size  field
//        0     4  magic "SAMA"
//        4     1  version (kProtocolVersion; v1 and v2 both accepted)
//        5     1  type (FrameType)
//        6     2  flags, little-endian (compatible extensions; the
//                 version byte gates breaking changes. v1 senders
//                 write 0 and v1 receivers ignore them. In v2, bit
//                 0x1 announces a header extension between the fixed
//                 header and the payload; other bits stay reserved)
//        8     8  request id, little-endian (echoed verbatim in the
//                 response; clients pick ids, pipelining matches them)
//       16     4  payload length, little-endian
//   [ext]  2+m  only when v2 and flags bit 0x1: u16 extension length
//                 m, then m bytes of TLV fields (u8 tag, u8 len, len
//                 value bytes). Unknown tags are skipped; a TLV that
//                 overruns the extension, or a known tag with the
//                 wrong length, is a framing error. Tag 1 is the
//                 trace context (kHeaderExtTraceContext): trace id hi
//                 u64, trace id lo u64, parent span id u64, 1 flag
//                 byte (bit 0x1 = sampled) — 25 bytes.
//   20+...    n  payload (frame-type specific, below)
//
// All integers are little-endian fixed width; doubles are IEEE-754
// bit patterns in little-endian byte order. The encoding is
// deliberately position-independent of the host: the conformance tier
// pins the exact bytes of a known frame.
//
// A connection carries any number of pipelined frames. The server
// responds to every request frame exactly once, in request order per
// connection. Malformed input (bad magic, unknown version, oversized
// payload, a torn header extension) is answered with one ERROR frame
// and the connection is closed — after a framing error the stream has
// no resynchronisation point.

inline constexpr char kFrameMagic[4] = {'S', 'A', 'M', 'A'};
inline constexpr uint8_t kProtocolVersion = 2;
// Oldest version still decoded. v1 frames are v2 frames with no
// extension and ignored flags.
inline constexpr uint8_t kMinProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
// Flags (v2).
inline constexpr uint16_t kFrameFlagHasExtension = 0x1;
// Header-extension TLV tags.
inline constexpr uint8_t kHeaderExtTraceContext = 1;
inline constexpr size_t kTraceContextWireBytes = 25;
// Cap on one frame's extension block; anything larger is a framing
// error, keeping the pre-payload prefix small and bounded.
inline constexpr size_t kMaxHeaderExtBytes = 1024;
// Default cap on a frame payload; BinaryServerOptions can lower it.
inline constexpr size_t kMaxPayloadBytes = 4 * 1024 * 1024;

enum class FrameType : uint8_t {
  // Requests.
  kQuery = 1,     // QueryRequest payload -> kResult or kError.
  kPing = 2,      // Arbitrary payload, echoed back in kPong.
  kStats = 3,     // Empty payload -> kStatsResult ("key value\n" text).
  kShutdown = 4,  // Empty payload -> kShutdownAck, then server drain.
  // Responses.
  kResult = 5,       // QueryResultWire payload.
  kPong = 6,         // The kPing payload, echoed.
  kStatsResult = 7,  // Text payload.
  kError = 8,        // ErrorBody payload.
  kShutdownAck = 9,  // Empty payload.
  // Live updates (DESIGN.md §12). Ordering contract: an UPDATE is
  // applied on the event-loop thread at the moment it is dequeued, so
  // it happens-after every QUERY the same connection pipelined before
  // it was POPPED, and before every QUERY popped after it. Queries
  // in flight on worker threads from OTHER connections (or popped
  // earlier) order through the engine's update lock: each sees all of
  // the update or none of it, never a torn half.
  kUpdate = 10,        // UpdateRequest payload -> kUpdateResult or kError.
  kUpdateResult = 11,  // UpdateResultWire payload.
};

// Response status codes. kShed is deliberately distinct from every
// other failure: load-shedding is the healthy-overload signal clients
// back off on, not an error in the request itself.
enum class WireStatus : uint16_t {
  kOk = 0,
  kBadFrame = 1,         // Magic/header damage; connection closes.
  kVersionMismatch = 2,  // Unknown protocol version; connection closes.
  kTooLarge = 3,         // Payload over the cap; connection closes.
  kBadRequest = 4,       // Frame fine, payload undecodable.
  kParseError = 5,       // SPARQL did not parse.
  kShed = 6,             // Admission queue full; retry with backoff.
  kShuttingDown = 7,     // Server is draining.
  kInternal = 8,         // Engine failure.
  kUnknownType = 9,      // Request frame type the server does not know.
  kReadOnly = 10,        // UPDATE sent to a server without a write path.
};

const char* WireStatusName(WireStatus status);

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  // Propagated trace context; EncodeFrame emits the header extension
  // only when it is valid(), and the decoder leaves it zeroed for v1
  // frames and extension-free v2 frames.
  TraceContext trace;
  std::string payload;
};

// ---- Fixed-width little-endian primitives (wire byte order
// regardless of host endianness). The Read* functions advance *pos and
// return false on truncation, leaving *pos unspecified.
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendF64(std::string* out, double v);
bool ReadU16(std::string_view in, size_t* pos, uint16_t* v);
bool ReadU32(std::string_view in, size_t* pos, uint32_t* v);
bool ReadU64(std::string_view in, size_t* pos, uint64_t* v);
bool ReadF64(std::string_view in, size_t* pos, double* v);

// Serialises a complete frame (header + payload).
std::string EncodeFrame(const Frame& frame);

// Incremental frame parser over a byte stream. Feed() appends bytes;
// Pop() yields complete frames. A framing error (bad magic, version
// mismatch, oversized payload) poisons the decoder: every later Pop
// reports the same error, mirroring the fact that the stream has no
// recovery point. Decoding never throws and never reads outside the
// buffered bytes, whatever the input — the fuzz tier feeds it garbage.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Feed(std::string_view bytes);

  enum class Next {
    kNeedMore,  // No complete frame buffered.
    kFrame,     // *frame holds the next frame.
    kBad,       // Framing error; *code/*message describe it.
  };
  Next Pop(Frame* frame, WireStatus* code, std::string* message);

  // Bytes buffered but not yet consumed (tests).
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t pos_ = 0;  // Consumed prefix; compacted opportunistically.
  bool poisoned_ = false;
  WireStatus poison_code_ = WireStatus::kOk;
  std::string poison_message_;
};

// ---- kQuery payload.
struct QueryRequest {
  std::string sparql;
  // Answers wanted; 0 = the server default.
  uint32_t k = 0;
  // Per-request deadline in milliseconds from server receipt; 0 = the
  // server default (which may be "none"). Wired into the anytime
  // search budget: a deadline-truncated answer is well-formed and
  // flagged, never an error.
  uint32_t deadline_ms = 0;
};
std::string EncodeQueryRequest(const QueryRequest& request);
bool DecodeQueryRequest(std::string_view payload, QueryRequest* request);

// ---- kResult payload. Scores are the engine's exact doubles, so a
// result is byte-identical to one computed by a direct
// SamaEngine::Execute call — the serving determinism contract
// (tests/server/binary_server_test.cc pins it).
struct WireBinding {
  std::string var;    // SELECT variable name, without '?'.
  std::string value;  // Term::ToString(), "" for unbound.
};
struct WireAnswer {
  double score = 0;
  double lambda = 0;
  double psi = 0;
  bool consistent = true;
  std::vector<WireBinding> bindings;
};
struct QueryResultWire {
  WireStatus status = WireStatus::kOk;
  // QueryStats::search_truncated: the anytime budget or the request
  // deadline cut the search short; the answers are best-so-far.
  bool truncated = false;
  std::vector<WireAnswer> answers;
};
std::string EncodeQueryResult(const QueryResultWire& result);
bool DecodeQueryResult(std::string_view payload, QueryResultWire* result);

// ---- kUpdate payload.
struct UpdateRequest {
  enum : uint8_t { kOpInsert = 0, kOpDelete = 1 };
  uint8_t op = kOpInsert;
  enum : uint16_t {
    // The record is journalled but its fsync is deferred to a later
    // durable update, FlushUpdates, or checkpoint. The ack then means
    // "applied and journalled", NOT crash-durable — but SHUTDOWN_ACK
    // still implies durability: the server flushes before acking it.
    kFlagNonDurable = 1,
  };
  uint16_t flags = 0;
  // One N-Triples statement line, e.g. `<s> <p> "o" .` — the server
  // parses it with NTriplesParser::ParseLine, so anything the loader
  // accepts is accepted here (a blank/comment line is kBadRequest).
  std::string statement;
};
std::string EncodeUpdateRequest(const UpdateRequest& request);
bool DecodeUpdateRequest(std::string_view payload, UpdateRequest* request);

// ---- kUpdateResult payload.
struct UpdateResultWire {
  WireStatus status = WireStatus::kOk;
  uint64_t lsn = 0;     // WAL position the update was journalled at.
  uint8_t durable = 0;  // 1 = fsynced before this ack.
};
std::string EncodeUpdateResult(const UpdateResultWire& result);
bool DecodeUpdateResult(std::string_view payload, UpdateResultWire* result);

// ---- kError payload.
struct ErrorBody {
  WireStatus code = WireStatus::kInternal;
  std::string message;
};
std::string EncodeErrorBody(const ErrorBody& error);
bool DecodeErrorBody(std::string_view payload, ErrorBody* error);

// One ERROR frame, ready to write.
std::string EncodeErrorFrame(uint64_t request_id, WireStatus code,
                             std::string_view message);

}  // namespace sama

#endif  // SAMA_SERVER_PROTOCOL_H_

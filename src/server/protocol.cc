#include "server/protocol.h"

#include <cstring>

namespace sama {

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadFrame: return "bad-frame";
    case WireStatus::kVersionMismatch: return "version-mismatch";
    case WireStatus::kTooLarge: return "too-large";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kParseError: return "parse-error";
    case WireStatus::kShed: return "shed";
    case WireStatus::kShuttingDown: return "shutting-down";
    case WireStatus::kInternal: return "internal";
    case WireStatus::kUnknownType: return "unknown-type";
    case WireStatus::kReadOnly: return "read-only";
  }
  return "unknown";
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

bool ReadU16(std::string_view in, size_t* pos, uint16_t* v) {
  if (*pos + 2 > in.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(in.data() + *pos);
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  *pos += 2;
  return true;
}

bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(in.data() + *pos);
  *v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
       static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(in.data() + *pos);
  uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | p[i];
  *v = out;
  *pos += 8;
  return true;
}

bool ReadF64(std::string_view in, size_t* pos, double* v) {
  uint64_t bits = 0;
  if (!ReadU64(in, pos, &bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

namespace {

// Length-prefixed string helpers; u32 prefix (values can be long
// literals), var names use u16.
void AppendString32(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadString32(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.substr(*pos, len));
  *pos += len;
  return true;
}

void AppendString16(std::string* out, std::string_view s) {
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

bool ReadString16(std::string_view in, size_t* pos, std::string* s) {
  uint16_t len = 0;
  if (!ReadU16(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.substr(*pos, len));
  *pos += len;
  return true;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  const bool extended = frame.trace.valid();
  AppendU16(&out, extended ? kFrameFlagHasExtension : 0);
  AppendU64(&out, frame.request_id);
  AppendU32(&out, static_cast<uint32_t>(frame.payload.size()));
  if (extended) {
    AppendU16(&out, static_cast<uint16_t>(2 + kTraceContextWireBytes));
    out.push_back(static_cast<char>(kHeaderExtTraceContext));
    out.push_back(static_cast<char>(kTraceContextWireBytes));
    AppendU64(&out, frame.trace.trace_id_hi);
    AppendU64(&out, frame.trace.trace_id_lo);
    AppendU64(&out, frame.trace.parent_span);
    out.push_back(frame.trace.sampled ? 1 : 0);
  }
  out.append(frame.payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;  // The stream is dead; don't buffer more.
  // Compact once the consumed prefix dominates, so a long-lived
  // pipelined connection doesn't grow the buffer without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

FrameDecoder::Next FrameDecoder::Pop(Frame* frame, WireStatus* code,
                                     std::string* message) {
  if (poisoned_) {
    *code = poison_code_;
    *message = poison_message_;
    return Next::kBad;
  }
  std::string_view view(buffer_.data() + pos_, buffer_.size() - pos_);
  if (view.size() < kFrameHeaderBytes) return Next::kNeedMore;

  auto poison = [&](WireStatus c, std::string m) {
    poisoned_ = true;
    poison_code_ = c;
    poison_message_ = std::move(m);
    *code = poison_code_;
    *message = poison_message_;
    return Next::kBad;
  };
  if (std::memcmp(view.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return poison(WireStatus::kBadFrame, "bad frame magic");
  }
  uint8_t version = static_cast<uint8_t>(view[4]);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return poison(WireStatus::kVersionMismatch,
                  "unsupported protocol version " + std::to_string(version));
  }
  uint8_t type = static_cast<uint8_t>(view[5]);
  size_t at = 6;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  ReadU16(view, &at, &flags);        // Cannot fail: header is complete.
  ReadU64(view, &at, &request_id);   // Ditto.
  ReadU32(view, &at, &payload_len);  // Ditto.
  if (payload_len > max_payload_) {
    return poison(WireStatus::kTooLarge,
                  "payload of " + std::to_string(payload_len) +
                      " bytes exceeds the cap of " +
                      std::to_string(max_payload_));
  }

  // v1 has no extension and its flags are reserved noise; only a v2
  // frame that announces the extension bit carries one.
  TraceContext trace;
  size_t ext_total = 0;
  if (version >= 2 && (flags & kFrameFlagHasExtension)) {
    if (view.size() < kFrameHeaderBytes + 2) return Next::kNeedMore;
    uint16_t ext_len = 0;
    ReadU16(view, &at, &ext_len);
    if (ext_len > kMaxHeaderExtBytes) {
      return poison(WireStatus::kBadFrame,
                    "header extension of " + std::to_string(ext_len) +
                        " bytes exceeds the cap of " +
                        std::to_string(kMaxHeaderExtBytes));
    }
    if (view.size() < kFrameHeaderBytes + 2 + ext_len) return Next::kNeedMore;
    const size_t ext_end = kFrameHeaderBytes + 2 + ext_len;
    while (at < ext_end) {
      if (at + 2 > ext_end) {
        return poison(WireStatus::kBadFrame, "malformed header extension");
      }
      uint8_t tag = static_cast<uint8_t>(view[at]);
      uint8_t len = static_cast<uint8_t>(view[at + 1]);
      at += 2;
      if (at + len > ext_end) {
        return poison(WireStatus::kBadFrame, "malformed header extension");
      }
      if (tag == kHeaderExtTraceContext) {
        if (len != kTraceContextWireBytes) {
          return poison(WireStatus::kBadFrame,
                        "malformed trace context in header extension");
        }
        size_t p = at;
        ReadU64(view, &p, &trace.trace_id_hi);
        ReadU64(view, &p, &trace.trace_id_lo);
        ReadU64(view, &p, &trace.parent_span);
        trace.sampled = view[p] != 0;
      }
      // Unknown tags: skip over len bytes, by construction in bounds.
      at += len;
    }
    ext_total = 2 + ext_len;
  }
  if (view.size() < kFrameHeaderBytes + ext_total + payload_len) {
    return Next::kNeedMore;
  }

  frame->type = static_cast<FrameType>(type);
  frame->request_id = request_id;
  frame->trace = trace;
  frame->payload.assign(
      view.substr(kFrameHeaderBytes + ext_total, payload_len));
  pos_ += kFrameHeaderBytes + ext_total + payload_len;
  return Next::kFrame;
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  AppendU32(&out, request.k);
  AppendU32(&out, request.deadline_ms);
  AppendU32(&out, 0);  // flags
  AppendString32(&out, request.sparql);
  return out;
}

bool DecodeQueryRequest(std::string_view payload, QueryRequest* request) {
  size_t pos = 0;
  uint32_t flags = 0;
  return ReadU32(payload, &pos, &request->k) &&
         ReadU32(payload, &pos, &request->deadline_ms) &&
         ReadU32(payload, &pos, &flags) &&
         ReadString32(payload, &pos, &request->sparql) &&
         pos == payload.size();
}

std::string EncodeQueryResult(const QueryResultWire& result) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(result.status));
  out.push_back(result.truncated ? 1 : 0);
  out.push_back(0);  // reserved
  AppendU32(&out, static_cast<uint32_t>(result.answers.size()));
  for (const WireAnswer& answer : result.answers) {
    AppendF64(&out, answer.score);
    AppendF64(&out, answer.lambda);
    AppendF64(&out, answer.psi);
    out.push_back(answer.consistent ? 1 : 0);
    AppendU16(&out, static_cast<uint16_t>(answer.bindings.size()));
    for (const WireBinding& binding : answer.bindings) {
      AppendString16(&out, binding.var);
      AppendString32(&out, binding.value);
    }
  }
  return out;
}

bool DecodeQueryResult(std::string_view payload, QueryResultWire* result) {
  size_t pos = 0;
  uint16_t status = 0;
  if (!ReadU16(payload, &pos, &status)) return false;
  if (pos + 2 > payload.size()) return false;
  result->status = static_cast<WireStatus>(status);
  result->truncated = payload[pos] != 0;
  pos += 2;
  uint32_t num_answers = 0;
  if (!ReadU32(payload, &pos, &num_answers)) return false;
  result->answers.clear();
  for (uint32_t i = 0; i < num_answers; ++i) {
    WireAnswer answer;
    if (!ReadF64(payload, &pos, &answer.score) ||
        !ReadF64(payload, &pos, &answer.lambda) ||
        !ReadF64(payload, &pos, &answer.psi)) {
      return false;
    }
    if (pos >= payload.size()) return false;
    answer.consistent = payload[pos] != 0;
    ++pos;
    uint16_t num_bindings = 0;
    if (!ReadU16(payload, &pos, &num_bindings)) return false;
    for (uint16_t b = 0; b < num_bindings; ++b) {
      WireBinding binding;
      if (!ReadString16(payload, &pos, &binding.var) ||
          !ReadString32(payload, &pos, &binding.value)) {
        return false;
      }
      answer.bindings.push_back(std::move(binding));
    }
    result->answers.push_back(std::move(answer));
  }
  return pos == payload.size();
}

std::string EncodeUpdateRequest(const UpdateRequest& request) {
  std::string out;
  out.push_back(static_cast<char>(request.op));
  out.push_back(0);  // reserved
  AppendU16(&out, request.flags);
  AppendString32(&out, request.statement);
  return out;
}

bool DecodeUpdateRequest(std::string_view payload, UpdateRequest* request) {
  if (payload.size() < 2) return false;
  uint8_t op = static_cast<uint8_t>(payload[0]);
  if (op > UpdateRequest::kOpDelete) return false;
  request->op = op;
  size_t pos = 2;
  return ReadU16(payload, &pos, &request->flags) &&
         ReadString32(payload, &pos, &request->statement) &&
         pos == payload.size();
}

std::string EncodeUpdateResult(const UpdateResultWire& result) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(result.status));
  out.push_back(static_cast<char>(result.durable));
  out.push_back(0);  // reserved
  AppendU64(&out, result.lsn);
  return out;
}

bool DecodeUpdateResult(std::string_view payload, UpdateResultWire* result) {
  size_t pos = 0;
  uint16_t status = 0;
  if (!ReadU16(payload, &pos, &status)) return false;
  result->status = static_cast<WireStatus>(status);
  if (pos + 2 > payload.size()) return false;
  result->durable = static_cast<uint8_t>(payload[pos]);
  pos += 2;
  return ReadU64(payload, &pos, &result->lsn) && pos == payload.size();
}

std::string EncodeErrorBody(const ErrorBody& error) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(error.code));
  AppendString32(&out, error.message);
  return out;
}

bool DecodeErrorBody(std::string_view payload, ErrorBody* error) {
  size_t pos = 0;
  uint16_t code = 0;
  if (!ReadU16(payload, &pos, &code)) return false;
  error->code = static_cast<WireStatus>(code);
  return ReadString32(payload, &pos, &error->message) &&
         pos == payload.size();
}

std::string EncodeErrorFrame(uint64_t request_id, WireStatus code,
                             std::string_view message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = request_id;
  frame.payload = EncodeErrorBody(ErrorBody{code, std::string(message)});
  return EncodeFrame(frame);
}

}  // namespace sama

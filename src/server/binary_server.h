#ifndef SAMA_SERVER_BINARY_SERVER_H_
#define SAMA_SERVER_BINARY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "server/protocol.h"

namespace sama {

class ShardedEngine;

// Serialises engine answers into the wire result. Centralised so the
// server, the load generator and the determinism tests all produce
// answers through the one encoder — "byte-identical vs direct engine
// execution" compares EncodeQueryResult(MakeQueryResultWire(...)) of
// both sides.
QueryResultWire MakeQueryResultWire(const std::vector<Answer>& answers,
                                    const std::vector<std::string>& vars,
                                    bool truncated);

// The traffic-bearing front end (DESIGN.md "Serving"): an epoll event
// loop on one acceptor thread multiplexing every connection, plus a
// worker pool (the existing work-stealing ThreadPool) executing
// queries. The event loop owns all sockets; workers only ever touch a
// connection's completion buffer under its mutex and wake the loop
// through an eventfd, which keeps teardown with in-flight requests
// race-free (the TSan tier runs exactly that scenario).
//
// Request flow per connection:
//   read -> FrameDecoder -> sequence number assigned in arrival order
//     PING/STATS/SHUTDOWN  answered inline on the event loop
//     UPDATE               applied inline on the event loop (the engine
//                          update lock orders it against queries running
//                          on workers; see FrameType::kUpdate)
//     QUERY                admission check, then ThreadPool::Submit
//   responses are staged per sequence number and flushed strictly in
//   arrival order, so pipelined clients read answers in the order they
//   asked, regardless of worker interleaving.
//
// Admission control:
//   - max_connections: accepts past the cap are closed immediately.
//   - max_queue: QUERY frames admitted while admitted-but-unfinished
//     queries >= max_queue are answered with an ERROR frame carrying
//     WireStatus::kShed (sama_server_shed_total) — backpressure the
//     client can see, instead of unbounded queueing.
//   - deadlines: request deadline_ms (or the server default) becomes a
//     ForestSearchOptions::deadline; a deadline-truncated query is a
//     well-formed kResult with the truncated flag, never an error.
class BinaryQueryServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    // 0 picks an ephemeral port; port() reports the bound one.
    uint16_t port = 0;
    // Query-executing workers (>= 1). The event loop never executes
    // queries itself, so worker count bounds query concurrency.
    size_t num_workers = 1;
    // Accepted-connection cap; accepts beyond it are closed.
    size_t max_connections = 64;
    // Admitted-but-unfinished query cap; beyond it QUERYs are shed.
    size_t max_queue = 128;
    // Per-frame payload cap (protocol kTooLarge above it).
    size_t max_payload = kMaxPayloadBytes;
    // k when the request leaves it 0.
    size_t default_k = 10;
    // Deadline applied when a request carries deadline_ms == 0;
    // 0 = none.
    uint32_t default_deadline_ms = 0;
    // Honour SHUTDOWN frames (acked, then shutdown_requested() flips;
    // the owner decides when to Stop). Off = kBadRequest.
    bool allow_remote_shutdown = true;
    // Record a per-request span trace (request > queue/execute/encode)
    // for QUERY frames and retain the most recent few for debugging
    // (request_traces()). Span count is exported as
    // sama_server_request_spans_total either way the spans are only
    // recorded when this is on.
    bool trace_requests = false;
    size_t trace_capacity = 8;
    // Distinct propagated trace ids kept alive in trace_store()
    // (DESIGN.md §15). A frame carrying a trace context is always
    // collected there — even with trace_requests off — because the
    // client explicitly asked to be traced.
    size_t trace_store_capacity = 256;
    // Registry for the sama_server_* instruments;
    // MetricsRegistry::Global() when null. Tests pass their own.
    MetricsRegistry* registry = nullptr;
  };

  // `engine` is borrowed and must outlive the server.
  BinaryQueryServer(const SamaEngine* engine, Options options);
  // Scatter-gather serving over a sharded index. Read-only: UPDATE
  // frames are answered kReadOnly (sharded indexes have no write path;
  // see ShardedEngine). Everything else — admission control, tracing,
  // deadlines — behaves identically.
  BinaryQueryServer(const ShardedEngine* engine, Options options);
  ~BinaryQueryServer();

  BinaryQueryServer(const BinaryQueryServer&) = delete;
  BinaryQueryServer& operator=(const BinaryQueryServer&) = delete;

  // Binds (common/net.h listener utility), starts the worker pool and
  // the event-loop thread.
  Status Start();

  // Stops accepting, joins the event loop, drains the worker pool and
  // closes every connection. Safe to call twice; the destructor calls
  // it. In-flight queries finish executing (their responses are
  // dropped — the sockets are gone), so no worker ever touches a
  // dangling connection.
  void Stop();

  // The bound port (resolves port 0); valid after Start succeeds.
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  // Flipped by a SHUTDOWN frame. The owner (sama_cli serve, tests)
  // watches this and calls Stop.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  // Blocks until shutdown_requested() or the timeout (0 = forever).
  bool WaitForShutdown(std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(0)) const;

  // Point-in-time counters, also exported as sama_server_* metrics and
  // over the STATS command.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;
    uint64_t connections_active = 0;
    uint64_t requests = 0;   // Every request frame, errors included.
    uint64_t queries_ok = 0;
    uint64_t queries_truncated = 0;
    uint64_t updates_ok = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;     // ERROR frames sent, sheds excluded.
    uint64_t queue_depth = 0;
  };
  Stats stats() const;

  // The most recent per-request traces (trace_requests only), newest
  // last. Each has spans request > queue / execute / encode.
  std::vector<std::shared_ptr<const QueryTrace>> request_traces() const;

  // Propagated traces keyed by trace id, for /debug/trace?id=. Lives
  // as long as the server; safe to read concurrently with serving.
  const TraceStore& trace_store() const { return trace_store_; }

 private:
  // Per-connection state. The event loop owns fd/decoder/in-flight
  // bookkeeping; `mu` guards the fields workers touch (staged
  // responses and the closed flag).
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    uint64_t next_seq = 0;        // Next sequence to assign (loop only).
    bool want_close = false;      // Close once output drains (loop only).
    bool epollout = false;        // EPOLLOUT currently armed (loop only).
    std::string out;              // Wire bytes awaiting write (loop only).

    std::mutex mu;
    bool closed = false;                     // Loop sets on close.
    uint64_t flushed_seq = 0;                // Responses already staged.
    std::map<uint64_t, std::string> ready;   // seq -> encoded response.
    std::condition_variable cv;              // Signalled by Complete().

    explicit Conn(size_t max_payload) : decoder(max_payload) {}
  };

  void EventLoop();
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame,
                   uint64_t seq);
  void ExecuteQuery(const std::shared_ptr<Conn>& conn, uint64_t seq,
                    uint64_t request_id, std::string payload,
                    TraceContext wire_ctx,
                    std::chrono::steady_clock::time_point admitted);
  // Stages `wire` as the response for `seq` and (worker context) wakes
  // the loop. Returns false when the connection is already closed.
  bool Complete(const std::shared_ptr<Conn>& conn, uint64_t seq,
                std::string wire);
  // Moves consecutive staged responses into the write buffer and
  // writes as much as the socket takes (event loop only).
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void WakeLoop();
  std::string RenderStats() const;

  const SamaEngine* engine_;
  // Exactly one of engine_ / sharded_engine_ is non-null.
  const ShardedEngine* sharded_engine_ = nullptr;
  Options options_;
  TraceStore trace_store_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  mutable std::mutex shutdown_mu_;
  mutable std::condition_variable shutdown_cv_;

  // Event-loop-owned connection table.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Connections with freshly staged responses (workers push, loop
  // drains after an eventfd wake).
  std::mutex dirty_mu_;
  std::deque<std::shared_ptr<Conn>> dirty_;

  // Admitted-but-unfinished queries (admission control).
  std::atomic<uint64_t> queue_depth_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_truncated_{0};
  std::atomic<uint64_t> updates_ok_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> errors_{0};

  mutable std::mutex traces_mu_;
  std::deque<std::shared_ptr<const QueryTrace>> traces_;

  // sama_server_* instruments, resolved once in Start.
  struct Instruments;
  std::unique_ptr<Instruments> instruments_;
};

}  // namespace sama

#endif  // SAMA_SERVER_BINARY_SERVER_H_

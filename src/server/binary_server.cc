#include "server/binary_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/net.h"
#include "query/sparql.h"
#include "rdf/ntriples.h"
#include "shard/sharded_engine.h"

namespace sama {

QueryResultWire MakeQueryResultWire(const std::vector<Answer>& answers,
                                    const std::vector<std::string>& vars,
                                    bool truncated) {
  QueryResultWire wire;
  wire.status = WireStatus::kOk;
  wire.truncated = truncated;
  wire.answers.reserve(answers.size());
  for (const Answer& answer : answers) {
    WireAnswer wa;
    wa.score = answer.score;
    wa.lambda = answer.lambda_total;
    wa.psi = answer.psi_total;
    wa.consistent = answer.consistent;
    std::vector<Term> values = answer.BindingTuple(vars);
    wa.bindings.reserve(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      WireBinding binding;
      binding.var = vars[i];
      // Unbound variables come back as empty-string literals; encode
      // those as "" so clients can tell unbound from a bound empty
      // literal is not needed here (the engine never binds one).
      binding.value = values[i].value().empty() && values[i].is_literal()
                          ? std::string()
                          : values[i].ToString();
      wa.bindings.push_back(std::move(binding));
    }
    wire.answers.push_back(std::move(wa));
  }
  return wire;
}

namespace {

// The SELECT variables a result is projected onto: the query's own
// list, or (SELECT *) every distinct variable in pattern-appearance
// order — the same order for every execution of the same query text,
// which the byte-identical pipelining test relies on.
std::vector<std::string> SelectVars(const SparqlQuery& query) {
  if (!query.select_all) return query.select_vars;
  std::vector<std::string> vars;
  auto add = [&vars](const Term& term) {
    if (!term.is_variable()) return;
    for (const std::string& v : vars) {
      if (v == term.value()) return;
    }
    vars.push_back(term.value());
  };
  for (const Triple& pattern : query.patterns) {
    add(pattern.subject);
    add(pattern.predicate);
    add(pattern.object);
  }
  return vars;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

struct BinaryQueryServer::Instruments {
  Counter* requests_query;
  Counter* requests_update;
  Counter* requests_ping;
  Counter* requests_stats;
  Counter* requests_shutdown;
  Counter* requests_other;
  Counter* shed;
  Counter* errors;
  Counter* accepted;
  Counter* rejected;
  Counter* bytes_read;
  Counter* bytes_written;
  Counter* request_spans;
  Gauge* active;
  Gauge* queue_depth;
  Histogram* request_millis;
  Histogram* queue_wait_millis;

  static Instruments Resolve(MetricsRegistry* reg) {
    Instruments in;
    auto req = [reg](const char* type) {
      return reg->GetCounter("sama_server_requests_total",
                             "Request frames received by the binary server",
                             {{"type", type}});
    };
    in.requests_query = req("query");
    in.requests_update = req("update");
    in.requests_ping = req("ping");
    in.requests_stats = req("stats");
    in.requests_shutdown = req("shutdown");
    in.requests_other = req("other");
    in.shed = reg->GetCounter(
        "sama_server_shed_total",
        "Queries refused with SHED because the admission queue was full");
    in.errors = reg->GetCounter(
        "sama_server_errors_total",
        "Error frames sent for reasons other than load shedding");
    in.accepted = reg->GetCounter("sama_server_connections_accepted_total",
                                  "Connections accepted");
    in.rejected = reg->GetCounter(
        "sama_server_connections_rejected_total",
        "Connections closed at accept because the connection cap was hit");
    in.bytes_read = reg->GetCounter("sama_server_bytes_read_total",
                                    "Bytes read from client sockets");
    in.bytes_written = reg->GetCounter("sama_server_bytes_written_total",
                                       "Bytes written to client sockets");
    in.request_spans = reg->GetCounter(
        "sama_server_request_spans_total",
        "Per-request trace spans recorded (trace_requests only)");
    in.active = reg->GetGauge("sama_server_connections_active",
                              "Currently open client connections");
    in.queue_depth = reg->GetGauge(
        "sama_server_queue_depth", "Admitted-but-unfinished queries");
    in.request_millis = reg->GetHistogram(
        "sama_server_request_millis",
        "QUERY latency from admission to response staged, milliseconds",
        Histogram::LatencyBucketsMillis());
    in.queue_wait_millis = reg->GetHistogram(
        "sama_server_queue_wait_millis",
        "QUERY wait between admission and worker pickup, milliseconds",
        Histogram::LatencyBucketsMillis());
    return in;
  }
};

BinaryQueryServer::BinaryQueryServer(const SamaEngine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      trace_store_(options_.trace_store_capacity) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_payload == 0 || options_.max_payload > kMaxPayloadBytes) {
    options_.max_payload = kMaxPayloadBytes;
  }
}

BinaryQueryServer::BinaryQueryServer(const ShardedEngine* engine,
                                     Options options)
    : BinaryQueryServer(static_cast<const SamaEngine*>(nullptr),
                        std::move(options)) {
  sharded_engine_ = engine;
}

BinaryQueryServer::~BinaryQueryServer() { Stop(); }

Status BinaryQueryServer::Start() {
  if (running_.load()) return Status::Ok();

  MetricsRegistry* reg = options_.registry != nullptr
                             ? options_.registry
                             : MetricsRegistry::Global();
  instruments_ =
      std::make_unique<Instruments>(Instruments::Resolve(reg));

  ListenerOptions listener;
  listener.host = options_.host;
  listener.port = options_.port;
  listener.backlog = 128;
  listener.nonblocking = true;
  Status bound = BindListener(listener, &listen_fd_, &port_);
  if (!bound.ok()) return bound;

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("epoll_create1 failed");
  }
  event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    close(epoll_fd_);
    close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    return Status::IoError("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    close(event_fd_);
    close(epoll_fd_);
    close(listen_fd_);
    event_fd_ = epoll_fd_ = listen_fd_ = -1;
    return Status::IoError("epoll_ctl(listen) failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    close(event_fd_);
    close(epoll_fd_);
    close(listen_fd_);
    event_fd_ = epoll_fd_ = listen_fd_ = -1;
    return Status::IoError("epoll_ctl(eventfd) failed");
  }

  stopping_.store(false);
  shutdown_requested_.store(false);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void BinaryQueryServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop closed every connection on its way out, so in-flight
  // worker tasks drained here find conn->closed and drop their
  // responses without touching any fd.
  pool_.reset();
  // The loop thread is gone, so no more updates can arrive; flush any
  // deferred-durability records it journalled. Best-effort — a failure
  // here has nobody left to report to (the engine seals itself and the
  // next open replays the WAL).
  if (engine_ != nullptr && engine_->updates_enabled()) {
    (void)engine_->FlushUpdates();
  }
  if (event_fd_ >= 0) close(event_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  event_fd_ = epoll_fd_ = listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.clear();
  }
  shutdown_cv_.notify_all();
}

bool BinaryQueryServer::WaitForShutdown(
    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  auto done = [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  };
  if (timeout.count() <= 0) {
    shutdown_cv_.wait(lock, done);
  } else if (!shutdown_cv_.wait_for(lock, timeout, done)) {
    return false;
  }
  return shutdown_requested_.load(std::memory_order_acquire);
}

BinaryQueryServer::Stats BinaryQueryServer::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.connections_active = connections_active_.load();
  s.requests = requests_.load();
  s.queries_ok = queries_ok_.load();
  s.queries_truncated = queries_truncated_.load();
  s.updates_ok = updates_ok_.load();
  s.shed = shed_.load();
  s.errors = errors_.load();
  s.queue_depth = queue_depth_.load();
  return s;
}

std::vector<std::shared_ptr<const QueryTrace>>
BinaryQueryServer::request_traces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  return {traces_.begin(), traces_.end()};
}

void BinaryQueryServer::WakeLoop() {
  uint64_t one = 1;
  ssize_t n = write(event_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN just means a wake is already pending.
}

void BinaryQueryServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == event_fd_) {
        uint64_t drained = 0;
        while (read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadReady(conn);
      if (conns_.count(fd) && (events[i].events & EPOLLOUT)) {
        FlushConn(conn);
      }
    }
    // Worker completions staged since the last wait.
    std::deque<std::shared_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const auto& conn : dirty) {
      if (conn->fd >= 0 && conns_.count(conn->fd)) FlushConn(conn);
    }
  }
  for (auto& [fd, conn] : conns_) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
      conn->ready.clear();
    }
    close(fd);
    conn->fd = -1;
    connections_active_.fetch_sub(1);
  }
  conns_.clear();
  if (instruments_) instruments_->active->Set(0);
}

void BinaryQueryServer::AcceptReady() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: the kindest honest signal is an immediate close
      // (a frame could block on a socket the peer never reads).
      // Count before close: a peer can observe the EOF the instant
      // close() returns, and the stats it then reads must already
      // include the rejection.
      connections_rejected_.fetch_add(1);
      instruments_->rejected->Increment();
      close(fd);
      continue;
    }
    auto conn = std::make_shared<Conn>(options_.max_payload);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conns_[fd] = conn;
    connections_accepted_.fetch_add(1);
    connections_active_.fetch_add(1);
    instruments_->accepted->Increment();
    instruments_->active->Set(
        static_cast<double>(connections_active_.load()));
  }
}

void BinaryQueryServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      instruments_->bytes_read->Increment(static_cast<uint64_t>(n));
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {  // Peer finished; everything it pipelined is moot.
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  while (!conn->want_close) {
    Frame frame;
    WireStatus code = WireStatus::kOk;
    std::string message;
    FrameDecoder::Next next = conn->decoder.Pop(&frame, &code, &message);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kBad) {
      // One error frame, then close: a framing error has no
      // resynchronisation point (see FrameDecoder).
      errors_.fetch_add(1);
      instruments_->errors->Increment();
      Complete(conn, conn->next_seq++, EncodeErrorFrame(0, code, message));
      conn->want_close = true;
      break;
    }
    HandleFrame(conn, std::move(frame), conn->next_seq++);
  }
  FlushConn(conn);
}

void BinaryQueryServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                                    Frame frame, uint64_t seq) {
  requests_.fetch_add(1);
  auto error = [&](WireStatus code, std::string_view message) {
    if (code != WireStatus::kShed) {
      errors_.fetch_add(1);
      instruments_->errors->Increment();
    }
    Complete(conn, seq, EncodeErrorFrame(frame.request_id, code, message));
  };
  switch (frame.type) {
    case FrameType::kPing: {
      instruments_->requests_ping->Increment();
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      pong.payload = std::move(frame.payload);
      Complete(conn, seq, EncodeFrame(pong));
      return;
    }
    case FrameType::kStats: {
      instruments_->requests_stats->Increment();
      Frame reply;
      reply.type = FrameType::kStatsResult;
      reply.request_id = frame.request_id;
      reply.payload = RenderStats();
      Complete(conn, seq, EncodeFrame(reply));
      return;
    }
    case FrameType::kUpdate: {
      instruments_->requests_update->Increment();
      if (stopping_.load(std::memory_order_acquire)) {
        error(WireStatus::kShuttingDown, "server is draining");
        return;
      }
      if (engine_ == nullptr) {
        error(WireStatus::kReadOnly,
              "sharded serving is read-only (rebuild shards to change data)");
        return;
      }
      if (!engine_->updates_enabled()) {
        error(WireStatus::kReadOnly,
              "server has no write path (serve without --updates)");
        return;
      }
      UpdateRequest request;
      if (!DecodeUpdateRequest(frame.payload, &request)) {
        error(WireStatus::kBadRequest, "undecodable update payload");
        return;
      }
      Result<Triple> triple = NTriplesParser::ParseLine(request.statement);
      if (!triple.ok()) {
        // ParseLine's NotFound (blank/comment line) is a bad request
        // too: an update must carry exactly one statement.
        error(WireStatus::kBadRequest, triple.status().ToString());
        return;
      }
      TripleUpdate update;
      update.op = request.op == UpdateRequest::kOpDelete
                      ? TripleUpdate::Op::kDelete
                      : TripleUpdate::Op::kInsert;
      update.triple = std::move(triple).value();
      update.durable =
          (request.flags & UpdateRequest::kFlagNonDurable) == 0;
      // The ordering contract (FrameType::kUpdate): every frame this
      // connection pipelined earlier was already popped, and none after
      // this one has been — but queries among the earlier frames may
      // still be in flight on workers, racing this update to the engine
      // lock. Wait until each of them has staged its reply (all seqs
      // below ours are flushed or ready) so the update provably
      // happens-after them. flushed_seq can't advance meanwhile
      // (FlushConn runs on this thread), so the predicate is stable.
      {
        std::unique_lock<std::mutex> lock(conn->mu);
        while (!conn->closed &&
               conn->flushed_seq + conn->ready.size() < seq &&
               !stopping_.load(std::memory_order_acquire)) {
          conn->cv.wait_for(lock, std::chrono::milliseconds(50));
        }
        if (conn->closed) return;
      }
      // A propagated trace context (or trace_requests) records this
      // update as request > wal.append / wal.fsync / wal.apply under
      // the SAME trace a sibling QUERY with that id lands in — the
      // whole point of the shared TraceStore.
      std::shared_ptr<QueryTrace> utrace;
      uint64_t uroot = 0;
      size_t spans_before = 0;
      TraceContext ctx = frame.trace;
      if (ctx.valid() || options_.trace_requests) {
        if (!ctx.valid()) ctx = TraceContext::Generate();
        utrace = trace_store_.GetOrCreate(ctx);
        spans_before = utrace->size();
        uroot = utrace->BeginSpan("request", ctx.parent_span);
        utrace->SetSpanAttr(uroot, "type", "update");
        utrace->SetSpanAttr(uroot, "request_id",
                            std::to_string(frame.request_id));
      }
      // Applied inline on the event-loop thread, which also gives
      // updates a cross-connection total order.
      Result<uint64_t> lsn =
          utrace != nullptr ? engine_->ApplyUpdate(update, utrace.get(), uroot)
                            : engine_->ApplyUpdate(update);
      if (utrace != nullptr) {
        utrace->EndSpan(uroot);
        instruments_->request_spans->Increment(utrace->size() - spans_before);
      }
      if (!lsn.ok()) {
        error(WireStatus::kInternal, lsn.status().ToString());
        return;
      }
      updates_ok_.fetch_add(1);
      UpdateResultWire result;
      result.status = WireStatus::kOk;
      result.lsn = *lsn;
      result.durable =
          update.durable && engine_->updates_durable() ? 1 : 0;
      Frame reply;
      reply.type = FrameType::kUpdateResult;
      reply.request_id = frame.request_id;
      reply.payload = EncodeUpdateResult(result);
      Complete(conn, seq, EncodeFrame(reply));
      return;
    }
    case FrameType::kShutdown: {
      instruments_->requests_shutdown->Increment();
      if (!options_.allow_remote_shutdown) {
        error(WireStatus::kBadRequest, "remote shutdown is disabled");
        return;
      }
      // Durability barrier: an acked update must survive the shutdown
      // this ack triggers, so deferred-durability records are fsynced
      // BEFORE the ack is staged. A failed flush is reported instead of
      // acked — durability is indeterminate and the client must know —
      // but the server still drains.
      if (engine_ != nullptr && engine_->updates_enabled()) {
        Status flushed = engine_->FlushUpdates();
        if (!flushed.ok()) {
          error(WireStatus::kInternal, flushed.ToString());
          {
            std::lock_guard<std::mutex> lock(shutdown_mu_);
            shutdown_requested_.store(true, std::memory_order_release);
          }
          shutdown_cv_.notify_all();
          return;
        }
      }
      Frame ack;
      ack.type = FrameType::kShutdownAck;
      ack.request_id = frame.request_id;
      Complete(conn, seq, EncodeFrame(ack));
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_.store(true, std::memory_order_release);
      }
      shutdown_cv_.notify_all();
      return;
    }
    case FrameType::kQuery: {
      instruments_->requests_query->Increment();
      if (stopping_.load(std::memory_order_acquire)) {
        error(WireStatus::kShuttingDown, "server is draining");
        return;
      }
      // Admission control: reserve a slot or shed. fetch_add keeps the
      // check race-free against concurrent completions.
      uint64_t depth = queue_depth_.fetch_add(1);
      if (depth >= options_.max_queue) {
        queue_depth_.fetch_sub(1);
        shed_.fetch_add(1);
        instruments_->shed->Increment();
        error(WireStatus::kShed, "admission queue full; retry with backoff");
        return;
      }
      instruments_->queue_depth->Set(static_cast<double>(depth + 1));
      auto admitted = std::chrono::steady_clock::now();
      uint64_t request_id = frame.request_id;
      TraceContext wire_ctx = frame.trace;
      std::string payload = std::move(frame.payload);
      pool_->Submit([this, conn, seq, request_id, wire_ctx,
                     payload = std::move(payload), admitted]() mutable {
        ExecuteQuery(conn, seq, request_id, std::move(payload), wire_ctx,
                     admitted);
      });
      return;
    }
    default:
      instruments_->requests_other->Increment();
      error(WireStatus::kUnknownType,
            "frame type " +
                std::to_string(static_cast<unsigned>(frame.type)) +
                " is not a request");
      return;
  }
}

void BinaryQueryServer::ExecuteQuery(
    const std::shared_ptr<Conn>& conn, uint64_t seq, uint64_t request_id,
    std::string payload, TraceContext wire_ctx,
    std::chrono::steady_clock::time_point admitted) {
  double queue_wait = MillisSince(admitted);
  instruments_->queue_wait_millis->Observe(queue_wait);

  // A wire context always traces (the client asked); otherwise
  // trace_requests decides and the server mints the id. Either way the
  // trace registers in trace_store_ under its id for /debug/trace.
  std::shared_ptr<QueryTrace> trace;
  uint64_t root = 0;
  size_t spans_before = 0;
  TraceContext ctx = wire_ctx;
  if (ctx.valid() || options_.trace_requests) {
    if (!ctx.valid()) ctx = TraceContext::Generate();
    trace = trace_store_.GetOrCreate(ctx);
    spans_before = trace->size();
    root = trace->BeginSpan("request", ctx.parent_span);
    trace->SetSpanAttr(root, "type", "query");
    trace->SetSpanAttr(root, "request_id", std::to_string(request_id));
    uint64_t queued = trace->BeginSpan("queue", root);
    trace->EndSpan(queued);
  }

  std::string wire;
  auto finish_error = [&](WireStatus code, const std::string& message) {
    errors_.fetch_add(1);
    instruments_->errors->Increment();
    wire = EncodeErrorFrame(request_id, code, message);
  };

  QueryRequest request;
  if (!DecodeQueryRequest(payload, &request)) {
    finish_error(WireStatus::kBadRequest, "undecodable query payload");
  } else {
    Result<SparqlQuery> parsed = ParseSparql(request.sparql);
    if (!parsed.ok()) {
      finish_error(WireStatus::kParseError, parsed.status().message());
    } else {
      uint32_t deadline_ms = request.deadline_ms != 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
      size_t k = request.k != 0 ? request.k : options_.default_k;

      uint64_t exec_span = 0;
      if (trace) exec_span = trace->BeginSpan("execute", root);
      QueryStats stats;
      Result<std::vector<Answer>> answers = std::vector<Answer>();
      if (sharded_engine_ != nullptr) {
        // The sharded coordinator is non-copyable, so per-request
        // settings travel in a RequestObs instead of on an engine copy.
        ShardedEngine::RequestObs robs;
        robs.adopt_trace = trace;
        robs.adopt_parent = exec_span;
        ForestSearchOptions search = sharded_engine_->options().search;
        if (deadline_ms != 0) {
          search.deadline = admitted + std::chrono::milliseconds(deadline_ms);
          robs.search_override = &search;
        }
        answers = sharded_engine_->ExecuteSparqlTraced(*parsed, k, robs,
                                                       &stats);
      } else {
        // Per-request configuration rides on an engine copy, the same
        // idiom ExecuteSparql itself uses; the shared caches/pool are
        // shared_ptr members, so the copy is cheap.
        SamaEngine configured = *engine_;
        if (deadline_ms != 0) {
          configured.mutable_options().search.deadline =
              admitted + std::chrono::milliseconds(deadline_ms);
        }
        ObsOptions& obs = configured.mutable_options().obs;
        obs.request_id = request_id;
        if (trace != nullptr) {
          obs.adopt_trace = trace;
          obs.adopt_parent = exec_span;
          obs.trace_context = ctx;
        }
        answers = configured.ExecuteSparql(*parsed, k, &stats);
      }
      if (trace) trace->EndSpan(exec_span);

      if (!answers.ok()) {
        finish_error(WireStatus::kInternal, answers.status().ToString());
      } else {
        uint64_t encode_span = 0;
        if (trace) encode_span = trace->BeginSpan("encode", root);
        Frame reply;
        reply.type = FrameType::kResult;
        reply.request_id = request_id;
        reply.payload = EncodeQueryResult(MakeQueryResultWire(
            answers.value(), SelectVars(*parsed), stats.search_truncated));
        wire = EncodeFrame(reply);
        if (trace) trace->EndSpan(encode_span);
        if (stats.search_truncated) {
          queries_truncated_.fetch_add(1);
        } else {
          queries_ok_.fetch_add(1);
        }
      }
    }
  }

  if (trace) {
    trace->EndSpan(root);
    instruments_->request_spans->Increment(trace->size() - spans_before);
    if (options_.trace_requests) {
      std::lock_guard<std::mutex> lock(traces_mu_);
      traces_.push_back(trace);
      while (traces_.size() > options_.trace_capacity) traces_.pop_front();
    }
  }
  instruments_->request_millis->Observe(MillisSince(admitted));
  uint64_t depth = queue_depth_.fetch_sub(1);
  instruments_->queue_depth->Set(static_cast<double>(depth - 1));
  Complete(conn, seq, std::move(wire));
}

bool BinaryQueryServer::Complete(const std::shared_ptr<Conn>& conn,
                                 uint64_t seq, std::string wire) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return false;
    conn->ready.emplace(seq, std::move(wire));
    conn->cv.notify_all();  // An UPDATE may be waiting on this seq.
  }
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  WakeLoop();
  return true;
}

void BinaryQueryServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    // Responses leave strictly in request order: only the next
    // consecutive sequence may move to the write buffer.
    auto it = conn->ready.begin();
    while (it != conn->ready.end() && it->first == conn->flushed_seq) {
      conn->out.append(it->second);
      it = conn->ready.erase(it);
      ++conn->flushed_seq;
    }
  }
  size_t written = 0;
  while (written < conn->out.size()) {
    ssize_t n = write(conn->fd, conn->out.data() + written,
                      conn->out.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      instruments_->bytes_written->Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  conn->out.erase(0, written);
  bool drained;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    drained = conn->out.empty() && conn->ready.empty() &&
              conn->flushed_seq == conn->next_seq;
  }
  if (!conn->out.empty() && !conn->epollout) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->epollout = true;
  } else if (conn->out.empty() && conn->epollout) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->epollout = false;
  }
  if (conn->want_close && drained) CloseConn(conn);
}

void BinaryQueryServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->ready.clear();
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns_.erase(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  connections_active_.fetch_sub(1);
  instruments_->active->Set(
      static_cast<double>(connections_active_.load()));
}

std::string BinaryQueryServer::RenderStats() const {
  Stats s = stats();
  std::ostringstream out;
  out << "connections_accepted " << s.connections_accepted << "\n"
      << "connections_rejected " << s.connections_rejected << "\n"
      << "connections_active " << s.connections_active << "\n"
      << "requests " << s.requests << "\n"
      << "queries_ok " << s.queries_ok << "\n"
      << "queries_truncated " << s.queries_truncated << "\n"
      << "updates_ok " << s.updates_ok << "\n"
      << "shed " << s.shed << "\n"
      << "errors " << s.errors << "\n"
      << "queue_depth " << s.queue_depth << "\n";
  return out.str();
}

}  // namespace sama

#ifndef SAMA_SERVER_CLIENT_H_
#define SAMA_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/result.h"
#include "server/protocol.h"

namespace sama {

// Minimal blocking client for the binary protocol, shared by the test
// tier, the load generator and the sama_client tool. One socket, no
// internal threads; pipelining is explicit — issue several Send*
// calls, then ReadFrame repeatedly (responses arrive in request
// order).
class BinaryClient {
 public:
  BinaryClient() = default;
  ~BinaryClient();

  BinaryClient(const BinaryClient&) = delete;
  BinaryClient& operator=(const BinaryClient&) = delete;
  BinaryClient(BinaryClient&& other) noexcept;
  BinaryClient& operator=(BinaryClient&& other) noexcept;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Trace context stamped into every subsequently sent frame's header
  // extension (DESIGN.md §15). An invalid (all-zero) context — the
  // default — sends plain extension-free frames. The server adopts a
  // propagated context verbatim, so one context reused across several
  // requests lands them all in one server-side trace tree.
  void set_trace(const TraceContext& trace) { trace_ = trace; }
  const TraceContext& trace() const { return trace_; }

  // Writes one frame (or arbitrary raw bytes — malformed-input tests).
  // SendFrame stamps the configured trace context unless the frame
  // already carries a valid one.
  Status SendFrame(const Frame& frame);
  Status SendRaw(std::string_view bytes);

  // Blocks for the next complete frame. Fails with kIoError on EOF and
  // kCorruption on an undecodable stream.
  Result<Frame> ReadFrame();

  // ---- One-round-trip conveniences (send + matching read).
  // The ping payload is echoed; returns the echo.
  Result<std::string> Ping(std::string_view payload,
                           uint64_t request_id = 0);
  // The server's stats text ("key value\n" lines).
  Result<std::string> StatsText(uint64_t request_id = 0);
  // A query round trip. An ERROR response (shed included) comes back
  // as a QueryResultWire carrying that status and no answers.
  Result<QueryResultWire> Query(const QueryRequest& request,
                                uint64_t request_id = 0);
  // An update round trip. An ERROR response (read-only servers, bad
  // statements, sealed write path) comes back as an UpdateResultWire
  // carrying that status and lsn 0.
  Result<UpdateResultWire> Update(const UpdateRequest& request,
                                  uint64_t request_id = 0);
  // Requests shutdown; OK once the ack arrives.
  Status Shutdown(uint64_t request_id = 0);

  // ---- Pipelining.
  Status SendQuery(const QueryRequest& request, uint64_t request_id = 0);
  Status SendUpdate(const UpdateRequest& request, uint64_t request_id = 0);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  TraceContext trace_;
};

}  // namespace sama

#endif  // SAMA_SERVER_CLIENT_H_

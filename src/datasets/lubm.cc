#include "datasets/lubm.h"

#include <string>

#include "common/random.h"

namespace sama {
namespace {

constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

Term Ub(const std::string& local) {
  return Term::Iri(std::string(kLubmNamespace) + local);
}

Term EntityIri(const std::string& local) {
  return Term::Iri("http://lubm.example.org/data/" + local);
}

// Per-department entity ids, reused by both generators.
struct Department {
  Term dept;
  std::vector<Term> professors;
  std::vector<Term> courses;
  std::vector<Term> students;
};

std::vector<Triple> GenerateCore(const LubmConfig& config,
                                 std::vector<Department>* departments_out,
                                 std::vector<Term>* universities_out) {
  Random rng(config.seed);
  std::vector<Triple> triples;
  const Term rdf_type = Term::Iri(kRdfType);
  const Term works_for = Ub("worksFor");
  const Term sub_org = Ub("subOrganizationOf");
  const Term teaches = Ub("teacherOf");
  const Term takes = Ub("takesCourse");
  const Term member_of = Ub("memberOf");
  const Term advisor = Ub("advisor");
  const Term author = Ub("publicationAuthor");
  const Term degree_from = Ub("doctoralDegreeFrom");
  const Term ranks[3] = {Ub("FullProfessor"), Ub("AssociateProfessor"),
                         Ub("AssistantProfessor")};

  std::vector<Term> universities;
  for (size_t u = 0; u < config.universities; ++u) {
    universities.push_back(EntityIri("University" + std::to_string(u)));
  }

  for (size_t u = 0; u < config.universities; ++u) {
    for (size_t d = 0; d < config.departments_per_university; ++d) {
      Department dept_rec;
      std::string dept_id =
          "Department" + std::to_string(d) + "_Univ" + std::to_string(u);
      dept_rec.dept = EntityIri(dept_id);
      triples.push_back({dept_rec.dept, sub_org, universities[u]});

      for (size_t c = 0; c < config.courses_per_department; ++c) {
        dept_rec.courses.push_back(
            EntityIri("Course" + std::to_string(c) + "_" + dept_id));
      }

      for (size_t p = 0; p < config.professors_per_department; ++p) {
        Term prof =
            EntityIri("Professor" + std::to_string(p) + "_" + dept_id);
        dept_rec.professors.push_back(prof);
        triples.push_back({prof, works_for, dept_rec.dept});
        triples.push_back({prof, rdf_type, ranks[p % 3]});
        triples.push_back(
            {prof, degree_from,
             universities[rng.Uniform(universities.size())]});
        // Each professor teaches one or two department courses.
        size_t course_count = 1 + rng.Uniform(2);
        for (size_t k = 0; k < course_count; ++k) {
          triples.push_back(
              {prof, teaches,
               dept_rec.courses[rng.Uniform(dept_rec.courses.size())]});
        }
        for (size_t b = 0; b < config.publications_per_professor; ++b) {
          Term pub = EntityIri("Publication" + std::to_string(b) + "_P" +
                               std::to_string(p) + "_" + dept_id);
          triples.push_back({pub, author, prof});
        }
      }

      for (size_t s = 0; s < config.students_per_department; ++s) {
        Term student =
            EntityIri("Student" + std::to_string(s) + "_" + dept_id);
        dept_rec.students.push_back(student);
        triples.push_back({student, member_of, dept_rec.dept});
        for (size_t k = 0; k < config.courses_per_student; ++k) {
          triples.push_back(
              {student, takes,
               dept_rec.courses[rng.Uniform(dept_rec.courses.size())]});
        }
        if (rng.Bernoulli(config.advisor_fraction)) {
          triples.push_back(
              {student, advisor,
               dept_rec.professors[rng.Uniform(
                   dept_rec.professors.size())]});
        }
      }
      departments_out->push_back(std::move(dept_rec));
    }
  }
  *universities_out = std::move(universities);
  return triples;
}

}  // namespace

std::vector<Triple> GenerateLubm(const LubmConfig& config) {
  std::vector<Department> departments;
  std::vector<Term> universities;
  return GenerateCore(config, &departments, &universities);
}

std::vector<Triple> GenerateUobm(const LubmConfig& config) {
  std::vector<Department> departments;
  std::vector<Term> universities;
  std::vector<Triple> triples =
      GenerateCore(config, &departments, &universities);
  // UOBM flavour: friendships between students of different departments
  // and cross-department course enrolment.
  Random rng(config.seed * 31 + 7);
  const Term is_friend_of = Ub("isFriendOf");
  const Term takes = Ub("takesCourse");
  if (departments.size() >= 2) {
    for (size_t d = 0; d < departments.size(); ++d) {
      const Department& here = departments[d];
      const Department& there =
          departments[rng.Uniform(departments.size())];
      for (size_t s = 0; s < here.students.size(); s += 3) {
        if (there.students.empty()) continue;
        triples.push_back(
            {here.students[s], is_friend_of,
             there.students[rng.Uniform(there.students.size())]});
      }
      for (size_t s = 1; s < here.students.size(); s += 4) {
        if (there.courses.empty()) continue;
        triples.push_back(
            {here.students[s], takes,
             there.courses[rng.Uniform(there.courses.size())]});
      }
    }
  }
  return triples;
}

}  // namespace sama

#include "datasets/govtrack.h"

#include <string>

namespace sama {
namespace {

constexpr char kNs[] = "http://gov.example.org/";

Term Entity(const std::string& local) { return Term::Iri(kNs + local); }
Term Rel(const std::string& local) { return Term::Iri(kNs + local); }

}  // namespace

std::vector<Triple> GovTrackFigure1Triples() {
  const Term sponsor = Rel("sponsor");
  const Term a_to = Rel("aTo");
  const Term subject = Rel("subject");
  const Term gender = Rel("gender");
  const Term has_role = Rel("hasRole");
  const Term for_office = Rel("forOffice");

  const Term cb = Entity("CarlaBunes");
  const Term jr = Entity("JeffRyser");
  const Term kf = Entity("KeithFarmer");
  const Term jm = Entity("JohnMcRie");
  const Term pd = Entity("PierceDickes");
  const Term pt = Entity("PeterTraves");
  const Term an = Entity("AliceNimber");

  const Term a0056 = Entity("A0056");
  const Term a1589 = Entity("A1589");
  const Term a1232 = Entity("A1232");
  const Term a0772 = Entity("A0772");
  const Term a0467 = Entity("A0467");

  const Term b1432 = Entity("B1432");
  const Term b0532 = Entity("B0532");
  const Term b0045 = Entity("B0045");

  const Term health_care = Term::Literal("Health Care");
  const Term male = Term::Literal("Male");
  const Term female = Term::Literal("Female");
  const Term term1 = Entity("Term_1994_JR");
  const Term term2 = Entity("Term_1994_PT");
  const Term senate_ny = Entity("SenateNY");

  return {
      // Amendment sponsorships (cluster cl1's length-4 paths,
      // Figure 3).
      {cb, sponsor, a0056},
      {jr, sponsor, a1589},
      {kf, sponsor, a1232},
      {jm, sponsor, a0772},
      {jm, sponsor, a1232},
      {pd, sponsor, a0467},
      // Amendment -> bill.
      {a0056, a_to, b1432},
      {a1589, a_to, b0532},
      {a1232, a_to, b0045},
      {a0772, a_to, b0045},
      {a0467, a_to, b0532},
      // Direct bill sponsorships (cluster cl2's length-3 paths).
      {jr, sponsor, b0045},
      {pt, sponsor, b0532},
      {an, sponsor, b1432},
      {pd, sponsor, b1432},
      // Bill subjects.
      {b1432, subject, health_care},
      {b0532, subject, health_care},
      {b0045, subject, health_care},
      // Genders (cluster cl3 = the four Male sponsors).
      {jr, gender, male},
      {kf, gender, male},
      {jm, gender, male},
      {pd, gender, male},
      {cb, gender, female},
      {an, gender, female},
      {pt, gender, female},
      // Roles.
      {jr, has_role, term1},
      {pt, has_role, term2},
      {term1, for_office, senate_ny},
      {term2, for_office, senate_ny},
  };
}

std::vector<Triple> GovTrackQuery1Patterns() {
  const Term sponsor = Rel("sponsor");
  const Term a_to = Rel("aTo");
  const Term subject = Rel("subject");
  const Term gender = Rel("gender");
  const Term cb = Entity("CarlaBunes");
  const Term v1 = Term::Variable("v1");
  const Term v2 = Term::Variable("v2");
  const Term v3 = Term::Variable("v3");
  return {
      {cb, sponsor, v1},
      {v1, a_to, v2},
      {v2, subject, Term::Literal("Health Care")},
      {v3, sponsor, v2},
      {v3, gender, Term::Literal("Male")},
  };
}

std::vector<Triple> GovTrackQuery2Patterns() {
  const Term sponsor = Rel("sponsor");
  const Term subject = Rel("subject");
  const Term gender = Rel("gender");
  const Term cb = Entity("CarlaBunes");
  const Term e1 = Term::Variable("e1");
  const Term v2 = Term::Variable("v2");
  const Term v3 = Term::Variable("v3");
  return {
      {cb, e1, v2},
      {v2, subject, Term::Literal("Health Care")},
      {v3, sponsor, v2},
      {v3, gender, Term::Literal("Male")},
  };
}

}  // namespace sama

#include "datasets/scale_free.h"

#include <algorithm>

#include "common/random.h"

namespace sama {
namespace {

constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

Term EntityIri(const std::string& dataset, const std::string& prefix,
               size_t i) {
  return Term::Iri("http://" + dataset + ".example.org/" + prefix +
                   std::to_string(i));
}

Term RelIri(const std::string& dataset, const std::string& local) {
  return Term::Iri("http://" + dataset + ".example.org/rel#" + local);
}

// Entities needed to hit a triple target given the per-entity triple
// rate of the profile.
size_t EntitiesForTriples(double triples, size_t attach_edges,
                          bool has_classes, double attribute_fraction) {
  double per_entity = static_cast<double>(attach_edges) +
                      (has_classes ? 1.0 : 0.0) + attribute_fraction;
  double n = triples / per_entity;
  return n < 8 ? 8 : static_cast<size_t>(n);
}

}  // namespace

std::vector<Triple> GenerateScaleFree(const ScaleFreeProfile& profile) {
  Random rng(profile.seed);
  std::vector<Triple> triples;
  const Term rdf_type = Term::Iri(kRdfType);

  std::vector<Term> link_rels;
  for (const std::string& label : profile.link_labels) {
    link_rels.push_back(RelIri(profile.name, label));
  }
  const Term attr_rel = RelIri(profile.name, profile.attribute_label);
  std::vector<Term> classes;
  for (const std::string& c : profile.classes) {
    classes.push_back(EntityIri(profile.name, c, 0));
  }

  // Preferential attachment: `pool` holds one entry per edge endpoint,
  // so sampling uniformly from it is degree-biased.
  std::vector<uint32_t> pool;
  pool.reserve(profile.num_entities * (profile.attach_edges + 1));
  pool.push_back(0);

  for (size_t i = 0; i < profile.num_entities; ++i) {
    Term entity = EntityIri(profile.name, profile.entity_prefix, i);
    if (!classes.empty()) {
      triples.push_back({entity, rdf_type, classes[i % classes.size()]});
    }
    if (profile.attribute_fraction > 0 &&
        rng.Bernoulli(profile.attribute_fraction) &&
        !profile.attribute_values.empty()) {
      triples.push_back(
          {entity, attr_rel,
           Term::Literal(profile.attribute_values[rng.Uniform(
               profile.attribute_values.size())])});
    }
    if (i == 0) continue;
    size_t added = 0;
    size_t attempts = 0;
    while (added < profile.attach_edges &&
           attempts < profile.attach_edges * 8) {
      ++attempts;
      uint32_t target = pool[rng.Uniform(pool.size())];
      if (target >= i) continue;  // Keep the DAG orientation new→old.
      Term target_entity =
          EntityIri(profile.name, profile.entity_prefix, target);
      const Term& rel = link_rels.empty()
                            ? attr_rel
                            : link_rels[rng.Uniform(link_rels.size())];
      triples.push_back({entity, rel, target_entity});
      pool.push_back(target);
      ++added;
    }
    pool.push_back(static_cast<uint32_t>(i));
  }
  return triples;
}

namespace {

ScaleFreeProfile MakeProfile(const std::string& name,
                             const std::string& prefix,
                             double paper_triples, double scale,
                             size_t attach_edges,
                             std::vector<std::string> link_labels,
                             std::vector<std::string> classes,
                             double attribute_fraction,
                             std::vector<std::string> attribute_values,
                             const std::string& attribute_label,
                             uint64_t seed) {
  ScaleFreeProfile p;
  p.name = name;
  p.entity_prefix = prefix;
  p.attach_edges = attach_edges;
  p.link_labels = std::move(link_labels);
  p.classes = std::move(classes);
  p.attribute_fraction = attribute_fraction;
  p.attribute_values = std::move(attribute_values);
  p.attribute_label = attribute_label;
  p.seed = seed;
  p.num_entities = EntitiesForTriples(paper_triples * scale, attach_edges,
                                      !p.classes.empty(),
                                      attribute_fraction);
  return p;
}

}  // namespace

ScaleFreeProfile PBlogProfile(double scale) {
  return MakeProfile("pblog", "Blog", 50e3, scale, 2, {"linksTo"},
                     {"Weblog"}, 0.1, {"politics", "tech", "life"},
                     "topic", 101);
}

ScaleFreeProfile GovTrackProfile(double scale) {
  return MakeProfile("gov", "Entity", 1e6, scale, 2,
                     {"sponsor", "aTo", "vote"},
                     {"Bill", "Amendment", "Person"}, 0.5,
                     {"Health Care", "Defense", "Education", "Taxes"},
                     "subject", 102);
}

ScaleFreeProfile KeggProfile(double scale) {
  return MakeProfile("kegg", "Node", 1e6, scale, 3,
                     {"reactsWith", "catalyzes", "partOf"},
                     {"Gene", "Enzyme", "Pathway", "Compound"}, 0.2,
                     {"human", "mouse", "yeast"}, "organism", 103);
}

ScaleFreeProfile ImdbProfile(double scale) {
  return MakeProfile("imdb", "Title", 6e6, scale, 3,
                     {"actedIn", "directed", "relatedTo"},
                     {"Movie", "Actor", "Director"}, 0.4,
                     {"drama", "comedy", "action", "thriller"}, "genre",
                     104);
}

ScaleFreeProfile DblpProfile(double scale) {
  return MakeProfile("dblp", "Pub", 26e6, scale, 3,
                     {"cites", "authoredBy"}, {"Article", "Author"}, 0.3,
                     {"db", "ai", "systems", "theory"}, "area", 105);
}

}  // namespace sama

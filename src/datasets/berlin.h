#ifndef SAMA_DATASETS_BERLIN_H_
#define SAMA_DATASETS_BERLIN_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace sama {

// Berlin-SPARQL-Benchmark-like e-commerce data (Bizer & Schultz):
// products, producers, vendors, offers, reviews, reviewers. Offers and
// reviews are the graph sources; product types and country literals
// are the sinks.
struct BerlinConfig {
  size_t products = 100;
  size_t product_types = 10;
  size_t producers = 10;
  size_t vendors = 5;
  size_t offers_per_product = 2;
  size_t reviews_per_product = 2;
  size_t reviewers = 30;
  uint64_t seed = 7;
};

inline constexpr char kBerlinNamespace[] = "http://berlin.example.org/bsbm#";

std::vector<Triple> GenerateBerlin(const BerlinConfig& config);

}  // namespace sama

#endif  // SAMA_DATASETS_BERLIN_H_

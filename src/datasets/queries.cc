#include "datasets/queries.h"

namespace sama {
namespace {

constexpr char kPrologue[] =
    "PREFIX ub: <http://lubm.example.org/univ-bench#>\n"
    "PREFIX d: <http://lubm.example.org/data/>\n";

constexpr char kBerlinPrologue[] =
    "PREFIX b: <http://berlin.example.org/bsbm#>\n"
    "PREFIX d: <http://berlin.example.org/data/>\n";

BenchmarkQuery Make(const std::string& prologue, const std::string& name,
                    const std::string& body, int lo, int hi, bool relaxed,
                    const std::string& strict_body = "") {
  BenchmarkQuery q;
  q.name = name;
  q.sparql = prologue + body;
  q.group_low = lo;
  q.group_high = hi;
  q.relaxed = relaxed;
  q.strict_sparql =
      strict_body.empty() ? q.sparql : prologue + strict_body;
  return q;
}

BenchmarkQuery Make(const std::string& name, const std::string& body,
                    int lo, int hi, bool relaxed,
                    const std::string& strict_body = "") {
  return Make(kPrologue, name, body, lo, hi, relaxed, strict_body);
}

}  // namespace

std::vector<BenchmarkQuery> MakeLubmQueries() {
  std::vector<BenchmarkQuery> queries;

  // --- |Q| in [1,4] ---------------------------------------------------
  queries.push_back(Make("Q1",
                         "SELECT ?x WHERE { ?x a ub:FullProfessor }", 1, 4,
                         false));
  queries.push_back(
      Make("Q2",
           "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . "
           "?d ub:subOrganizationOf d:University0 }",
           1, 4, false));
  queries.push_back(Make("Q3",
                         "SELECT ?x ?c WHERE { ?x ub:teacherOf ?c . "
                         "?x a ub:AssociateProfessor }",
                         1, 4, false));
  queries.push_back(Make("Q4",
                         "SELECT ?s WHERE { ?s ub:takesCourse ?c . "
                         "?s ub:memberOf ?d . ?s ub:advisor ?p }",
                         1, 4, false));
  queries.push_back(
      Make("Q5",
           "SELECT ?s ?p WHERE { ?s ub:takesCourse ?c . ?s ub:memberOf ?d . "
           "?s ub:advisor ?p . ?p ub:worksFor ?d . ?p a ub:FullProfessor }",
           1, 4, false));

  // --- |Q| in [5,10] ---------------------------------------------------
  // Q6: synonym-relaxed (instructs/employedBy are thesaurus synonyms of
  // teacherOf/worksFor).
  queries.push_back(
      Make("Q6",
           "SELECT ?p ?c WHERE { ?s ub:advisor ?p . ?s ub:takesCourse ?c2 . "
           "?p ub:instructs ?c . ?p ub:employedBy ?d . "
           "?d ub:subOrganizationOf ?u . ?p a ub:FullProfessor . "
           "?pub ub:publicationAuthor ?p }",
           5, 10, true,
           "SELECT ?p ?c WHERE { ?s ub:advisor ?p . ?s ub:takesCourse ?c2 . "
           "?p ub:teacherOf ?c . ?p ub:worksFor ?d . "
           "?d ub:subOrganizationOf ?u . ?p a ub:FullProfessor . "
           "?pub ub:publicationAuthor ?p }"));
  // Q7: structure-relaxed (?p subOrganizationOf ?u skips the worksFor
  // hop through the department, like the paper's Q2 example).
  queries.push_back(
      Make("Q7",
           "SELECT ?p ?u WHERE { ?pub ub:publicationAuthor ?p . "
           "?p ub:subOrganizationOf ?u . ?p ub:teacherOf ?c . "
           "?p a ub:AssociateProfessor . ?s ub:advisor ?p . "
           "?s ub:memberOf ?d2 }",
           5, 10, true,
           "SELECT ?p ?u WHERE { ?pub ub:publicationAuthor ?p . "
           "?p ub:worksFor ?d0 . ?d0 ub:subOrganizationOf ?u . "
           "?p ub:teacherOf ?c . "
           "?p a ub:AssociateProfessor . ?s ub:advisor ?p . "
           "?s ub:memberOf ?d2 }"));
  queries.push_back(
      Make("Q8",
           "SELECT ?s1 ?p WHERE { ?s1 ub:advisor ?p . "
           "?s1 ub:takesCourse ?c . ?p ub:teacherOf ?c . "
           "?p ub:worksFor ?d . ?d ub:subOrganizationOf ?u . "
           "?s1 ub:memberOf ?d . ?pub ub:publicationAuthor ?p }",
           5, 10, false));
  queries.push_back(
      Make("Q9",
           "SELECT ?s1 ?s2 WHERE { ?s1 ub:advisor ?p1 . ?s2 ub:advisor ?p1 . "
           "?s1 ub:takesCourse ?c1 . ?s2 ub:takesCourse ?c1 . "
           "?p1 ub:teacherOf ?c1 . ?p1 ub:worksFor ?d . "
           "?d ub:subOrganizationOf ?u . ?s1 ub:memberOf ?d . "
           "?s2 ub:memberOf ?d }",
           5, 10, false));

  // --- |Q| in [11,17] --------------------------------------------------
  queries.push_back(
      Make("Q10",
           "SELECT ?s1 ?s2 ?p1 WHERE { ?s1 ub:advisor ?p1 . "
           "?s2 ub:advisor ?p1 . ?s1 ub:takesCourse ?c1 . "
           "?s2 ub:takesCourse ?c1 . ?p1 ub:teacherOf ?c1 . "
           "?p1 ub:worksFor ?d . ?d ub:subOrganizationOf ?u . "
           "?s1 ub:memberOf ?d . ?s2 ub:memberOf ?d . "
           "?pub1 ub:publicationAuthor ?p1 . ?p1 a ub:FullProfessor }",
           11, 17, false));
  // Q11: Q10 with every predicate replaced by a thesaurus synonym.
  queries.push_back(
      Make("Q11",
           "SELECT ?s1 ?s2 ?p1 WHERE { ?s1 ub:mentor ?p1 . "
           "?s2 ub:mentor ?p1 . ?s1 ub:attends ?c1 . "
           "?s2 ub:attends ?c1 . ?p1 ub:instructs ?c1 . "
           "?p1 ub:employedBy ?d . ?d ub:subOrganizationOf ?u . "
           "?s1 ub:belongsTo ?d . ?s2 ub:belongsTo ?d . "
           "?pub1 ub:authoredBy ?p1 . ?p1 a ub:FullProfessor }",
           11, 17, true,
           "SELECT ?s1 ?s2 ?p1 WHERE { ?s1 ub:advisor ?p1 . "
           "?s2 ub:advisor ?p1 . ?s1 ub:takesCourse ?c1 . "
           "?s2 ub:takesCourse ?c1 . ?p1 ub:teacherOf ?c1 . "
           "?p1 ub:worksFor ?d . ?d ub:subOrganizationOf ?u . "
           "?s1 ub:memberOf ?d . ?s2 ub:memberOf ?d . "
           "?pub1 ub:publicationAuthor ?p1 . ?p1 a ub:FullProfessor }"));
  queries.push_back(
      Make("Q12",
           "SELECT ?s1 ?s2 ?p1 ?p2 WHERE { ?s1 ub:advisor ?p1 . "
           "?s2 ub:advisor ?p1 . ?s1 ub:takesCourse ?c1 . "
           "?s2 ub:takesCourse ?c1 . ?p1 ub:teacherOf ?c1 . "
           "?p1 ub:worksFor ?d . ?d ub:subOrganizationOf ?u . "
           "?s1 ub:memberOf ?d . ?s2 ub:memberOf ?d . "
           "?pub1 ub:publicationAuthor ?p1 . ?p1 a ub:FullProfessor . "
           "?s2 ub:advisor ?p2 . ?p2 ub:teacherOf ?c2 . "
           "?s1 ub:takesCourse ?c2 . ?p2 ub:worksFor ?d }",
           11, 17, false));
  return queries;
}

std::vector<BenchmarkQuery> MakeBerlinQueries() {
  std::vector<BenchmarkQuery> queries;
  auto make = [](const std::string& name, const std::string& body, int lo,
                 int hi, bool relaxed, const std::string& strict = "") {
    return Make(kBerlinPrologue, name, body, lo, hi, relaxed, strict);
  };
  // B1: products of one type (exact, 1 path).
  queries.push_back(make(
      "B1", "SELECT ?p WHERE { ?p b:productType d:ProductType0 }", 1, 4,
      false));
  // B2: offers for a product of a given type (exact, 2 paths).
  queries.push_back(make(
      "B2",
      "SELECT ?o ?p WHERE { ?o b:product ?p . "
      "?p b:productType d:ProductType1 . ?o b:vendor ?v }",
      1, 4, false));
  // B3: reviews + reviewer country star (exact, 3 paths).
  queries.push_back(make(
      "B3",
      "SELECT ?r ?person WHERE { ?r b:reviewFor ?p . "
      "?r b:reviewer ?person . ?person b:country \"DE\" . "
      "?r b:rating ?score }",
      1, 4, false));
  // B4: offer + review join on the product (exact, 5-ish paths).
  queries.push_back(make(
      "B4",
      "SELECT ?o ?r WHERE { ?o b:product ?p . ?r b:reviewFor ?p . "
      "?p b:producer ?maker . ?maker b:country \"US\" . "
      "?o b:vendor ?v . ?v b:country ?vc . ?r b:rating ?score . "
      "?r b:reviewer ?person . ?person b:country ?pc }",
      5, 10, false));
  // B5: synonym-relaxed (seller is a thesaurus synonym of vendor). The
  // relaxed variable ?v sits mid-path with its country continuation, so
  // the alignment binds it to the vendor rather than a trailing sink.
  queries.push_back(make(
      "B5",
      "SELECT ?o ?v WHERE { ?o b:product ?p . ?o b:seller ?v . "
      "?v b:country ?c . ?p b:productType d:ProductType2 }",
      1, 4, true,
      "SELECT ?o ?v WHERE { ?o b:product ?p . ?o b:vendor ?v . "
      "?v b:country ?c . ?p b:productType d:ProductType2 }"));
  // B6: structure-relaxed — the offer "skips" the product hop to the
  // type (a middle-hop relaxation, like the paper's Q2 example); the
  // exact vendor path anchors ?o to the offer.
  queries.push_back(make(
      "B6",
      "SELECT ?o ?t WHERE { ?o b:vendor ?v . ?v b:country \"DE\" . "
      "?o b:productType ?t }",
      1, 4, true,
      "SELECT ?o ?t WHERE { ?o b:vendor ?v . ?v b:country \"DE\" . "
      "?o b:product ?p0 . ?p0 b:productType ?t }"));
  return queries;
}

}  // namespace sama

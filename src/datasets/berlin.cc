#include "datasets/berlin.h"

#include <string>

#include "common/random.h"

namespace sama {
namespace {

Term Bsbm(const std::string& local) {
  return Term::Iri(std::string(kBerlinNamespace) + local);
}

Term EntityIri(const std::string& local) {
  return Term::Iri("http://berlin.example.org/data/" + local);
}

}  // namespace

std::vector<Triple> GenerateBerlin(const BerlinConfig& config) {
  Random rng(config.seed);
  std::vector<Triple> triples;
  const Term type = Bsbm("productType");
  const Term producer = Bsbm("producer");
  const Term country = Bsbm("country");
  const Term product_rel = Bsbm("product");
  const Term vendor_rel = Bsbm("vendor");
  const Term price = Bsbm("price");
  const Term review_for = Bsbm("reviewFor");
  const Term reviewer_rel = Bsbm("reviewer");
  const Term rating = Bsbm("rating");

  static const char* kCountries[] = {"DE", "US", "GB", "JP", "FR"};

  std::vector<Term> types;
  for (size_t t = 0; t < config.product_types; ++t) {
    types.push_back(EntityIri("ProductType" + std::to_string(t)));
  }
  std::vector<Term> producers;
  for (size_t p = 0; p < config.producers; ++p) {
    Term pr = EntityIri("Producer" + std::to_string(p));
    producers.push_back(pr);
    triples.push_back({pr, country, Term::Literal(kCountries[p % 5])});
  }
  std::vector<Term> vendors;
  for (size_t v = 0; v < config.vendors; ++v) {
    Term vd = EntityIri("Vendor" + std::to_string(v));
    vendors.push_back(vd);
    triples.push_back({vd, country, Term::Literal(kCountries[(v + 2) % 5])});
  }
  std::vector<Term> reviewers;
  for (size_t r = 0; r < config.reviewers; ++r) {
    Term person = EntityIri("Reviewer" + std::to_string(r));
    reviewers.push_back(person);
    triples.push_back(
        {person, country, Term::Literal(kCountries[rng.Uniform(5)])});
  }

  for (size_t i = 0; i < config.products; ++i) {
    Term product = EntityIri("Product" + std::to_string(i));
    triples.push_back({product, type, types[rng.Uniform(types.size())]});
    triples.push_back(
        {product, producer, producers[rng.Uniform(producers.size())]});
    for (size_t o = 0; o < config.offers_per_product; ++o) {
      Term offer = EntityIri("Offer" + std::to_string(o) + "_Product" +
                             std::to_string(i));
      triples.push_back({offer, product_rel, product});
      triples.push_back(
          {offer, vendor_rel, vendors[rng.Uniform(vendors.size())]});
      triples.push_back(
          {offer, price,
           Term::Literal(std::to_string(10 + rng.Uniform(990)))});
    }
    for (size_t r = 0; r < config.reviews_per_product; ++r) {
      Term review = EntityIri("Review" + std::to_string(r) + "_Product" +
                              std::to_string(i));
      triples.push_back({review, review_for, product});
      triples.push_back(
          {review, reviewer_rel, reviewers[rng.Uniform(reviewers.size())]});
      triples.push_back(
          {review, rating, Term::Literal(std::to_string(1 + rng.Uniform(5)))});
    }
  }
  return triples;
}

}  // namespace sama

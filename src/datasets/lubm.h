#ifndef SAMA_DATASETS_LUBM_H_
#define SAMA_DATASETS_LUBM_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace sama {

// LUBM-like synthetic university data (Guo et al., "LUBM: A benchmark
// for OWL knowledge base systems"), regenerated since the original
// UBA-generated dumps are not shipped. The schema follows univ-bench:
// universities, departments, faculty, courses, students, publications.
// Edge directions are chosen as in the RDF dumps (publications and
// students have no incoming edges and act as graph sources;
// universities, course entities and class IRIs are sinks), which keeps
// the source→sink path decomposition well defined.
struct LubmConfig {
  size_t universities = 1;
  size_t departments_per_university = 3;
  size_t professors_per_department = 5;
  size_t courses_per_department = 8;
  size_t students_per_department = 20;
  size_t publications_per_professor = 3;
  size_t courses_per_student = 3;
  double advisor_fraction = 0.5;
  uint64_t seed = 42;
};

// Namespace used by the generated IRIs and by MakeLubmQueries().
inline constexpr char kLubmNamespace[] =
    "http://lubm.example.org/univ-bench#";

std::vector<Triple> GenerateLubm(const LubmConfig& config);

// UOBM-like variant (Ma et al.): LUBM plus cross-university links
// (friendships between students, cross-department degrees) that make
// the graph denser and less tree-like.
std::vector<Triple> GenerateUobm(const LubmConfig& config);

}  // namespace sama

#endif  // SAMA_DATASETS_LUBM_H_

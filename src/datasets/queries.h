#ifndef SAMA_DATASETS_QUERIES_H_
#define SAMA_DATASETS_QUERIES_H_

#include <string>
#include <vector>

namespace sama {

// The benchmark workload of §6.2: "for each indexed dataset we
// formulated 12 queries in SPARQL of different complexities (number of
// nodes, edges and variables)". The original query list was only
// distributed via a dead link, so the workload is recreated over the
// LUBM-like vocabulary with the same structure: queries spanning the
// three |Q| (path-count) groups of Figure 9 — [1,4], [5,10], [11,17] —
// mixing exact queries, synonym-relaxed queries (predicates replaced by
// thesaurus synonyms) and structure-relaxed queries (a missing
// intermediate hop, as in the paper's Q2 example).
struct BenchmarkQuery {
  std::string name;         // "Q1".."Q12".
  std::string sparql;
  int group_low = 1;        // |Q| group bounds used in Figure 9.
  int group_high = 4;
  bool relaxed = false;     // Uses synonyms or structural relaxation.
  // The strict twin of a relaxed query: synonyms mapped back to the
  // dataset vocabulary and relaxed structure restored. Its exact
  // answers serve as the effectiveness ground truth (the stand-in for
  // the paper's domain experts, see DESIGN.md). Equals `sparql` for
  // non-relaxed queries.
  std::string strict_sparql;
};

// The 12 queries over the LUBM vocabulary (kLubmNamespace).
std::vector<BenchmarkQuery> MakeLubmQueries();

// A secondary workload over the Berlin vocabulary (kBerlinNamespace),
// used to confirm the paper's remark that "the effectiveness on the
// other datasets follows a similar trend" (§6.3). Six queries: four
// exact, one synonym-relaxed, one structure-relaxed.
std::vector<BenchmarkQuery> MakeBerlinQueries();

}  // namespace sama

#endif  // SAMA_DATASETS_QUERIES_H_

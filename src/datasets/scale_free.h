#ifndef SAMA_DATASETS_SCALE_FREE_H_
#define SAMA_DATASETS_SCALE_FREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace sama {

// Barabási–Albert-style scale-free RDF generator standing in for the
// real-world dumps the paper indexes but which are no longer
// distributed (PBlog, GovTrack full, KEGG, IMDB, DBLP). What the
// experiments depend on is graph *shape* — triple count, degree skew,
// attribute density — which the profile parameters control. Edges run
// from newer to older entities (preferential attachment), so the graph
// is a DAG whose early high-in-degree entities act like the datasets'
// celebrity/hub resources.
struct ScaleFreeProfile {
  std::string name = "scale-free";
  // Entity label prefix, e.g. "Blog" or "Movie".
  std::string entity_prefix = "Entity";
  size_t num_entities = 1000;
  // Outgoing entity→entity links per new entity (m of the BA model).
  size_t attach_edges = 2;
  // Distinct entity→entity predicates.
  std::vector<std::string> link_labels = {"linksTo"};
  // Class IRIs; every entity gets one rdf:type edge when non-empty.
  std::vector<std::string> classes;
  // Fraction of entities carrying a literal attribute (a sink label
  // drawn from a small vocabulary).
  double attribute_fraction = 0.3;
  std::vector<std::string> attribute_values = {"red", "green", "blue"};
  std::string attribute_label = "tag";
  uint64_t seed = 1234;
};

std::vector<Triple> GenerateScaleFree(const ScaleFreeProfile& profile);

// Profiles shaped after the paper's Table-1 datasets, scaled by
// `scale` (1.0 ≈ the paper's triple counts; the benchmarks default to
// a much smaller scale so the suite runs on one machine).
ScaleFreeProfile PBlogProfile(double scale);
ScaleFreeProfile GovTrackProfile(double scale);
ScaleFreeProfile KeggProfile(double scale);
ScaleFreeProfile ImdbProfile(double scale);
ScaleFreeProfile DblpProfile(double scale);

}  // namespace sama

#endif  // SAMA_DATASETS_SCALE_FREE_H_

#ifndef SAMA_DATASETS_GOVTRACK_H_
#define SAMA_DATASETS_GOVTRACK_H_

#include <vector>

#include "rdf/triple.h"

namespace sama {

// The paper's running example (Figure 1): the GovTrack excerpt Gd with
// seven sources and two sinks (Health Care, Male), plus the two example
// queries. Node labels use the paper's display names ("Carla Bunes",
// "A0056", "Health Care", ...).

// The data graph Gd of Figure 1(a).
std::vector<Triple> GovTrackFigure1Triples();

// Q1 (Figure 1b): amendments ?v1 sponsored by Carla Bunes to a bill ?v2
// on Health Care originally sponsored by a male person ?v3.
std::vector<Triple> GovTrackQuery1Patterns();

// Q2 (Figure 1c): the relaxed query with the variable edge ?e1, which
// has no exact answer in Gd.
std::vector<Triple> GovTrackQuery2Patterns();

}  // namespace sama

#endif  // SAMA_DATASETS_GOVTRACK_H_
